"""Ablation: background worker load (the PlanetLab motivation).

Section 1 of the paper motivates worker-centric scheduling with
PlanetLab's chronically overloaded resource suppliers.  This bench
flips two-state CPU load churn on and compares how the two scheduling
philosophies absorb it (in a compute-heavy regime, where CPU churn can
matter at all):

* worker-centric self-balances — loaded workers just request fewer
  tasks — with zero extra machinery;
* storage affinity needs its replica churn (cancelled duplicate
  executions, i.e. wasted transfers and compute) to stay competitive.
"""

from repro.exp.figures import ablation_background_load
from repro.exp.report import format_sweep_table


def test_ablation_background_load(benchmark, scale, artifact):
    sweep = benchmark.pedantic(lambda: ablation_background_load(scale),
                               rounds=1, iterations=1)
    artifact("ablation_background_load", "\n\n".join([
        format_sweep_table(
            sweep, metric="makespan_minutes",
            title=f"Ablation: background CPU load off/on, makespan "
                  f"(minutes, compute-heavy regime) [scale={scale.name}]"),
        format_sweep_table(
            sweep, metric="tasks_cancelled", value_format="{:>12.1f}",
            title="Same sweep: replicas cancelled (wasted executions)"),
    ]))

    def cell(name, loaded):
        return sweep.cell(name, loaded)

    rest_penalty = cell("rest.2", True).makespan \
        / cell("rest.2", False).makespan
    sa_penalty = cell("storage-affinity", True).makespan \
        / cell("storage-affinity", False).makespan
    # Worker-centric absorbs the churn at least as well...
    assert rest_penalty <= sa_penalty * 1.15
    # ...without any replica churn, while storage affinity burns
    # duplicate executions to cope.
    assert cell("rest.2", True).tasks_cancelled == 0
    assert cell("storage-affinity", True).tasks_cancelled > 0
