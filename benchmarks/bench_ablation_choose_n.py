"""Ablation: ChooseTask(n) beyond the paper's n in {1, 2}.

The paper reports "we have tried different values of n ..., but only 1
and 2 give good results".  This bench sweeps n in {1, 2, 4, 8} and
asserts the paper's observation: large n degrades makespan (too much
randomization dilutes the locality signal).
"""

from repro.exp.figures import ablation_choose_n
from repro.exp.report import format_sweep_table


def test_ablation_choose_n(benchmark, scale, artifact):
    sweep = benchmark.pedantic(
        lambda: ablation_choose_n(scale, n_values=(1, 2, 4, 8)),
        rounds=1, iterations=1)
    artifact("ablation_choose_n", format_sweep_table(
        sweep, metric="makespan_minutes",
        title=f"Ablation: ChooseTask(n), rest metric "
              f"[scale={scale.name}]"))
    capacity = sweep.values[0]

    def makespan(n):
        return sweep.cell(f"wc:rest:{n}", capacity).makespan_minutes

    best_small = min(makespan(1), makespan(2))
    assert best_small <= makespan(8) * 1.02, \
        "n=8 should not beat small-n variants (the paper's finding)"
