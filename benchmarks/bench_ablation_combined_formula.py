"""Ablation: the printed `combined` formula vs the intent-consistent one.

DESIGN.md §5.6: the paper's printed formula
``ref_t/totalRef + totalRest/rest_t`` *rewards* missing files; we ship
the intent-consistent ``ref_t/totalRef + rest_t/totalRest`` as
`combined`.  This bench quantifies the difference and asserts the
intent variant transfers no more files than the literal one.
"""

from repro.exp.figures import ablation_combined_formula
from repro.exp.report import format_sweep_table


def test_ablation_combined_formula(benchmark, scale, artifact):
    sweep = benchmark.pedantic(lambda: ablation_combined_formula(scale),
                               rounds=1, iterations=1)
    artifact("ablation_combined_formula", "\n\n".join([
        format_sweep_table(
            sweep, metric="makespan_minutes",
            title=f"Ablation: combined formula variants, makespan "
                  f"(minutes) [scale={scale.name}]"),
        format_sweep_table(
            sweep,
            transform=lambda cell: cell.file_transfers
            / sweep.base.num_sites,
            title="Same sweep: # file transfers per data server"),
    ]))

    def mean_transfers(name):
        cells = [sweep.cell(name, v) for v in sweep.values]
        return sum(c.file_transfers for c in cells) / len(cells)

    assert mean_transfers("combined") <= mean_transfers(
        "combined-literal"), \
        "the intent-consistent formula must reduce transfers"
