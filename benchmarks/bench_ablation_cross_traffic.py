"""Ablation: network weather (background cross-traffic between sites).

Grids are shared infrastructure; this bench injects sub-capacity
Poisson background flows and asserts the paper's conclusions are
weather-proof:

* every scheduler slows down (the traffic is real),
* the data-aware vs data-blind gap survives — fewer transfers means
  less exposure to a congested network, so locality-aware scheduling
  should degrade *less* in absolute terms than FIFO.
"""

from repro.exp.figures import ablation_cross_traffic
from repro.exp.report import format_sweep_table


def test_ablation_cross_traffic(benchmark, scale, artifact):
    sweep = benchmark.pedantic(lambda: ablation_cross_traffic(scale),
                               rounds=1, iterations=1)
    artifact("ablation_cross_traffic", format_sweep_table(
        sweep, metric="makespan_minutes",
        title=f"Ablation: background cross-traffic off/on, makespan "
              f"(minutes) [scale={scale.name}]"))

    def makespan(name, noisy):
        return sweep.cell(name, noisy).makespan_minutes

    for name in sweep.schedulers:
        assert makespan(name, True) > makespan(name, False), \
            f"{name}: cross-traffic must cost something"

    # ordering preserved: data-aware still beats data-blind under noise
    assert makespan("rest.2", True) < makespan("workqueue", True)
    # and the absolute weather penalty is smaller for the scheduler
    # that moves fewer bytes
    rest_penalty = makespan("rest.2", True) - makespan("rest.2", False)
    fifo_penalty = makespan("workqueue", True) \
        - makespan("workqueue", False)
    assert rest_penalty < fifo_penalty
