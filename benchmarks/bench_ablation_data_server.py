"""Ablation: serial vs parallel data-server service (assumption 3).

The paper's system model serves batch requests "one by one", arguing
this is more efficient than simultaneous requests given bandwidth
limits.  With in-flight transfer deduplication, mild parallelism
overlaps one batch's tail with another's head without refetching, so
the honest expectation is: no transfer inflation, and a modest (not
dramatic) makespan effect either way.  Asserted accordingly.
"""

from repro.exp.figures import ablation_data_server_parallelism
from repro.exp.report import format_sweep_table


def test_ablation_data_server_parallelism(benchmark, scale, artifact):
    sweep = benchmark.pedantic(
        lambda: ablation_data_server_parallelism(scale),
        rounds=1, iterations=1)
    artifact("ablation_data_server_parallelism", "\n\n".join([
        format_sweep_table(
            sweep, metric="makespan_minutes",
            title=f"Ablation: data-server parallelism (rest.2, 4 "
                  f"workers/site), makespan (minutes) "
                  f"[scale={scale.name}]"),
        format_sweep_table(
            sweep, metric="file_transfers", value_format="{:>12.0f}",
            title="Same sweep: total # file transfers"),
    ]))

    scheduler = sweep.schedulers[0]
    serial = sweep.cell(scheduler, 1)
    for k in sweep.values[1:]:
        parallel = sweep.cell(scheduler, k)
        # dedup means parallel service must not inflate transfers
        assert parallel.file_transfers <= serial.file_transfers * 1.05, \
            f"parallelism={k} must not refetch files"
        # and the makespan effect is bounded either way (assumption 3
        # is a reasonable simplification, not a cliff)
        ratio = parallel.makespan / serial.makespan
        assert 0.6 <= ratio <= 1.4, \
            f"parallelism={k}: makespan ratio {ratio:.2f} out of band"
