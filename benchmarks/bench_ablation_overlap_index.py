"""Ablation: incremental overlap index vs the paper's O(T*I) rescan.

The paper's basic algorithm recomputes every task's weight per request
(complexity O(T*I), Section 4.4).  Our scheduler maintains the same
quantities incrementally.  This bench measures one scheduling decision
both ways on a warmed-up grid state, demonstrating why the incremental
index matters at trace scale — while tests guarantee both agree.
"""


import pytest

from repro.core.metrics import rest_weight
from repro.core.overlap_index import OverlapIndex
from repro.grid.storage import SiteStorage
from repro.workload import CoaddParams, generate_coadd

TASKS = 2000


@pytest.fixture(scope="module")
def warmed():
    """A job, an index, and a storage warmed with one region's files."""
    job = generate_coadd(CoaddParams(num_tasks=TASKS), seed=0)
    index = OverlapIndex(job)
    storage = SiteStorage(3000)
    index.watch_site(0, storage)
    # Warm the cache with the files of 40 consecutive tasks.
    for task in job.tasks[200:240]:
        for fid in task.files:
            storage.insert(fid)
            storage.touch(fid)
    return job, index, storage


def naive_decision(job, storage):
    """One full O(T*I) rescan: weight every task via direct overlap."""
    best_task, best_weight = None, -1.0
    for task in job:
        overlap = storage.overlap(task.files)
        weight = rest_weight(task.num_files - overlap)
        if weight > best_weight:
            best_task, best_weight = task, weight
    return best_task


def indexed_decision(job, index):
    """The same argmax via the incremental index structures."""
    overlaps = index.nonzero_overlaps(0)
    best_task, best_weight = None, -1.0
    for task_id, overlap in overlaps.items():
        weight = rest_weight(job[task_id].num_files - overlap)
        if weight > best_weight:
            best_task, best_weight = job[task_id], weight
    # zero-overlap fallback: smallest task (index keeps them implicit)
    return best_task


def test_naive_rescan_decision(benchmark, warmed):
    job, _index, storage = warmed
    result = benchmark(naive_decision, job, storage)
    assert result is not None


def test_indexed_decision(benchmark, warmed):
    job, index, _storage = warmed
    result = benchmark(indexed_decision, job, index)
    assert result is not None


def test_both_agree(warmed):
    job, index, storage = warmed
    assert naive_decision(job, storage).task_id \
        == indexed_decision(job, index).task_id


def test_index_update_cost(benchmark, warmed):
    """Cost of one storage insert+evict churn (the index's hot path)."""
    job, _index, storage = warmed
    fresh = iter(range(10**6, 10**7))

    def churn():
        storage.insert(next(fresh))  # unknown file: listener no-ops
        for fid in job.tasks[500].files:
            storage.insert(fid)
        for fid in job.tasks[500].files:
            storage.touch(fid)

    benchmark(churn)
