"""Ablations: orthogonal data replication, and task presentation order.

* Data replication (Ranganathan & Foster) is *required* machinery for
  task-centric scheduling but merely orthogonal for worker-centric
  (Section 3.2): worker-centric makespan must not depend on it much.
* Task order: with a position-sorted queue all sites sweep the stripe
  frontier in lockstep (DESIGN.md substitution 8); data-aware metrics
  must beat the data-blind baseline by more under shuffled order.
"""

from repro.exp.figures import ablation_data_replication, ablation_task_order
from repro.exp.report import format_sweep_table


def test_ablation_data_replication(benchmark, scale, artifact):
    sweep = benchmark.pedantic(
        lambda: ablation_data_replication(
            scale, schedulers=("rest.2", "storage-affinity")),
        rounds=1, iterations=1)
    artifact("ablation_data_replication", format_sweep_table(
        sweep, metric="makespan_minutes",
        title=f"Ablation: proactive data replication off/on "
              f"[scale={scale.name}]"))

    off = sweep.cell("rest.2", False).makespan_minutes
    on = sweep.cell("rest.2", True).makespan_minutes
    sa_off = sweep.cell("storage-affinity", False).makespan_minutes
    # "Not necessary" (Section 3.2): worker-centric without any extra
    # mechanism already matches task-centric, and replication brings it
    # no significant win on Coadd (whose popularity is near-uniform —
    # Ranganathan & Foster's own caveat about non-skewed datasets).
    assert off <= sa_off * 1.05, \
        "worker-centric must not need data replication to compete"
    assert on >= off * 0.85, \
        "replication should yield no major win for worker-centric"


def test_ablation_task_order(benchmark, scale, artifact):
    sweep = benchmark.pedantic(
        lambda: ablation_task_order(
            scale, schedulers=("rest", "overlap", "workqueue")),
        rounds=1, iterations=1)
    artifact("ablation_task_order", "\n\n".join([
        format_sweep_table(
            sweep, metric="makespan_minutes",
            title=f"Ablation: task presentation order, makespan "
                  f"(minutes) [scale={scale.name}]"),
        format_sweep_table(
            sweep, metric="file_transfers",
            value_format="{:>12.0f}",
            title="Same sweep: total # file transfers"),
    ]))

    def transfers(name, order):
        return sweep.cell(name, order).file_transfers

    # Under shuffled order the data-aware metric separates clearly from
    # FIFO.
    shuffled_gap = transfers("workqueue", "shuffled") \
        / transfers("rest", "shuffled")
    assert shuffled_gap > 1.2, "rest must clearly beat FIFO when shuffled"
    # The lockstep-sweep pathology (DESIGN.md substitution 8) hits the
    # overlap metric hardest: under position-sorted order every site's
    # max-overlap pick tracks the common frontier.  rest is robust (its
    # zero-overlap seeding scatters sites by task size).
    lockstep = transfers("overlap", "natural") \
        / transfers("overlap", "shuffled")
    assert lockstep > 1.3, \
        "sorted order must inflate overlap's transfers (lockstep sweep)"
    rest_sensitivity = transfers("rest", "natural") \
        / transfers("rest", "shuffled")
    assert rest_sensitivity < lockstep, \
        "rest must be less order-sensitive than overlap"
