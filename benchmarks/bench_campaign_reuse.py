"""Extension bench: inter-job data reuse across a multi-pass campaign.

Not a paper artifact — it reproduces the *setting* of the
storage-affinity paper [14] (sequences of overlapping jobs) under
worker-centric scheduling, asserting that warm site caches cut later
passes' transfers and runtimes.
"""

from repro.exp import ExperimentConfig, run_campaign
from repro.workload import coadd_campaign
from repro.workload.coadd import CoaddParams


def test_campaign_interjob_reuse(benchmark, scale, artifact):
    tasks_per_pass = max(60, scale.num_tasks // 3)
    campaign = coadd_campaign(CoaddParams(num_tasks=tasks_per_pass),
                              num_jobs=3, seed=4)
    config = ExperimentConfig(scheduler="rest.2", num_tasks=1,
                              capacity_files=scale.capacity_default * 2)

    result = benchmark.pedantic(
        lambda: run_campaign(config, campaign), rounds=1, iterations=1)

    lines = [f"Campaign reuse (3 passes x {tasks_per_pass} tasks, "
             f"rest.2, scale={scale.name})"]
    for pass_result in result.passes:
        lines.append(f"  {pass_result.name}: "
                     f"{pass_result.duration_minutes:8.1f} min  "
                     f"{pass_result.transfers_in_period:6d} transfers")
    artifact("campaign_interjob_reuse", "\n".join(lines))

    first, *rest = result.passes
    for later in rest:
        assert later.transfers_in_period < 0.6 * first.transfers_in_period
        assert later.duration < first.duration
