"""Cluster bench: shard-count scaling and the price of durability.

Not a paper artifact — it characterizes the ``repro.cluster`` tier.
Everything runs in-process over real localhost TCP with zero simulated
work, so the measurement isolates the cluster path (router redirect,
shard-local scheduling, WAL flushes):

* **shard sweep** — the same light multi-job workload over 1, 2 and 4
  shards (jobs spread round-robin, workers pull straight from the
  shard owning their job after one REDIRECT).  Shards only pay the
  router on the control plane, so assignment rate should hold or
  improve as shards are added;
* **durability overhead** — one shard serving the same job as a plain
  in-memory scheduler vs. a WAL-ing, snapshotting ``open_shard``.
  The WAL flushes on every emitted record by design; this row keeps
  that cost visible (and bounded) instead of anecdotal.
* **skew sweep** — the work-stealing payoff: one giant job (simulated
  per-task work) lands on shard 0 of 4 while the other shards each
  get a single token job, workers pinned round-robin to shards.
  Without stealing, shard 0's two workers grind the giant job alone;
  with ``--steal-watermark`` the drained shards pull the queue over
  and the whole fleet finishes it.  ``--check`` enforces the ≥1.5x
  speedup floor and compares both sweeps against the checked-in
  ``results/cluster_throughput_baseline.json``.

Standalone CLI (no pytest) for CI smoke use::

    python benchmarks/bench_cluster_throughput.py --quick
    python benchmarks/bench_cluster_throughput.py --quick --check
    python benchmarks/bench_cluster_throughput.py --quick --write-baseline
"""

import argparse
import asyncio
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.cluster import ClusterRouter, ShardAddress, open_shard
from repro.cluster.loadgen import run_cluster_load
from repro.cluster.steal import StealManager
from repro.grid.job import Task
from repro.serve.server import SchedulerServer
from repro.serve.service import SchedulerService

SHARD_COUNTS = (1, 2, 4)
RESULTS_DIR = Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "cluster_throughput_baseline.json"
#: Sanity floor, not a target (CI machines are noisy and shared).
MIN_RATE = 50.0
#: The WAL may cost a lot relative to pure in-memory dispatch, but an
#: order of magnitude means something is broken (sync writes on the
#: hot path, a lost flush batch, ...).
MAX_DURABILITY_SLOWDOWN = 10.0
#: Work stealing must buy at least this on the skewed workload; the
#: fleet-wide parallelism headroom is ~4x, so 1.5x leaves plenty of
#: slack for noisy CI machines.
MIN_STEAL_SPEEDUP = 1.5
#: Baseline regression tolerance: cluster rates on shared runners are
#: noisy, so only flag a collapse, not a wobble.
MAX_BASELINE_DROP = 0.5
#: Skew-sweep shape: 4 shards, 2 pinned workers each, thieves refill
#: to a 4-task watermark (small watermark = small protected tail on
#: the victim).
SKEW_SHARDS = 4
SKEW_WORKERS = 8
SKEW_WATERMARK = 4
#: Simulated work for the skewed giant job: 1 flop per task at this
#: rate = 5 ms per task, so compute (not dispatch) is the bottleneck
#: stealing can attack.
SKEW_FLOPS_PER_SEC = 200.0


def light_tasks(num_tasks, files_per_task=3, num_files=300, start=0,
                flops=0.0):
    return [
        Task(task_id=0,  # ids are reassigned by the service
             files=frozenset({(start + index * files_per_task + offset)
                              % num_files
                              for offset in range(files_per_task)}),
             flops=flops)
        for index in range(num_tasks)
    ]


async def _timed_cluster(num_tasks, shards, workers, state_root=None,
                         snapshot_interval=0.5, jobs=None,
                         steal_watermark=None, pin_workers=False,
                         flops_per_sec=0.0):
    """One cluster run; returns (assignments/sec, report)."""
    servers = []
    durabilities = []
    snapshot_tasks = []
    for index in range(shards):
        if state_root is not None:
            durability = open_shard(
                str(Path(state_root) / f"shard-{index}"),
                metric="combined", n=2, seed=0, shard_index=index,
                shard_count=shards,
                snapshot_interval=snapshot_interval)
            durabilities.append(durability)
            service = durability.service
        else:
            service = SchedulerService(metric="combined", n=2, seed=0,
                                       id_start=index,
                                       id_stride=shards,
                                       wal_events=True,
                                       steal_watermark=steal_watermark)
        server = SchedulerServer(service)
        await server.start()
        servers.append(server)
    router = ClusterRouter([ShardAddress(i, s.host, s.port)
                            for i, s in enumerate(servers)])
    await router.start()
    managers = []
    if steal_watermark is not None:
        for index, server in enumerate(servers):
            peers = {peer: (other.host, other.port)
                     for peer, other in enumerate(servers)
                     if peer != index}
            manager = StealManager(server.service, index, peers=peers,
                                   interval=0.002)
            await manager.start()
            managers.append(manager)
    loop = asyncio.get_running_loop()
    snapshot_tasks = [loop.create_task(d.snapshot_loop())
                      for d in durabilities]
    try:
        if jobs is None:
            per_job = num_tasks // shards
            jobs = [light_tasks(per_job, start=index * per_job * 3)
                    for index in range(shards)]
        start = time.perf_counter()
        report = await run_cluster_load(router.host, router.port, jobs,
                                        workers=workers,
                                        sites=min(workers, 4),
                                        capacity_files=600,
                                        flops_per_sec=flops_per_sec,
                                        pin_workers_to_shards=
                                        pin_workers)
        wall = time.perf_counter() - start
    finally:
        for manager in managers:
            await manager.stop()
        for task in snapshot_tasks:
            task.cancel()
        for task in snapshot_tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        await router.stop()
        for server in servers:
            await server.stop()
        for durability in durabilities:
            durability.close()
    done = sum(job["status"]["completed"] for job in report["jobs"])
    expected = sum(len(job) for job in jobs)
    assert done == expected, f"lost tasks: {done}/{expected}"
    return done / wall, report


def run_cluster(num_tasks, shards, workers, state_root=None,
                **kwargs):
    return asyncio.run(asyncio.wait_for(
        _timed_cluster(num_tasks, shards, workers,
                       state_root=state_root, **kwargs), timeout=300))


def sweep_shards(num_tasks, workers=8):
    """(shards, rate, router p99 merged) per shard count."""
    rows = []
    for shards in SHARD_COUNTS:
        rate, report = run_cluster(num_tasks, shards, workers)
        latency = report["stats"]["decision_latency"]
        rows.append((shards, rate, latency["p99_us"]))
    return rows


def durability_overhead(num_tasks, workers=4, repeats=3):
    """Best-of-N (plain_rate, durable_rate) on a one-shard cluster."""
    plain = 0.0
    durable = 0.0
    for _ in range(repeats):
        rate, _report = run_cluster(num_tasks, 1, workers)
        plain = max(plain, rate)
        with tempfile.TemporaryDirectory() as state_root:
            rate, _report = run_cluster(num_tasks, 1, workers,
                                        state_root=state_root)
            durable = max(durable, rate)
    return plain, durable


def skewed_jobs(giant_tasks, shards=SKEW_SHARDS):
    """One giant job (lands on shard 0) + a token job per other shard."""
    jobs = [light_tasks(giant_tasks, flops=1.0)]
    for index in range(1, shards):
        jobs.append(light_tasks(1, start=index * 37, flops=1.0))
    return jobs


def sweep_skew(giant_tasks, repeats=2):
    """Best-of-N stealing-off vs stealing-on rates on the skewed
    workload; returns ``{stealing_off, stealing_on, speedup,
    tasks_stolen}`` (rates in tasks/s)."""
    off = 0.0
    on = 0.0
    stolen = 0
    for _ in range(repeats):
        rate, _report = run_cluster(
            0, SKEW_SHARDS, SKEW_WORKERS,
            jobs=skewed_jobs(giant_tasks), pin_workers=True,
            flops_per_sec=SKEW_FLOPS_PER_SEC)
        off = max(off, rate)
        rate, report = run_cluster(
            0, SKEW_SHARDS, SKEW_WORKERS,
            jobs=skewed_jobs(giant_tasks), pin_workers=True,
            flops_per_sec=SKEW_FLOPS_PER_SEC,
            steal_watermark=SKEW_WATERMARK)
        if rate > on:
            on = rate
            stolen = report["stats"].get("steal",
                                         {}).get("tasks_stolen", 0)
    return {"stealing_off": off, "stealing_on": on,
            "speedup": on / off if off else 0.0,
            "tasks_stolen": stolen}


def format_tables(num_tasks, shard_rows, plain, durable):
    lines = [
        f"cluster throughput ({num_tasks} light tasks, localhost "
        f"TCP, router + shard processes in-process, zero simulated "
        f"work)",
        f"{'shards':>8} {'assign/s':>10} {'p99 us':>8}",
    ]
    for shards, rate, p99 in shard_rows:
        lines.append(f"{shards:>8} {rate:>10.0f} {p99:>8.0f}")
    lines.append("")
    lines.append("durability overhead (1 shard, WAL flush per record "
                 "+ periodic snapshots)")
    lines.append(f"{'mode':>10} {'assign/s':>10} {'vs plain':>9}")
    lines.append(f"{'in-memory':>10} {plain:>10.0f} {'1.00x':>9}")
    lines.append(f"{'durable':>10} {durable:>10.0f} "
                 f"{durable / plain:>8.2f}x")
    return "\n".join(lines)


def format_skew(giant_tasks, skew):
    lines = [
        f"skew sweep ({giant_tasks}-task giant job on shard 0 of "
        f"{SKEW_SHARDS}, {SKEW_WORKERS} shard-pinned workers, "
        f"{1000.0 / SKEW_FLOPS_PER_SEC:.0f} ms simulated work/task)",
        f"{'stealing':>10} {'tasks/s':>9}",
        f"{'off':>10} {skew['stealing_off']:>9.0f}",
        f"{'on':>10} {skew['stealing_on']:>9.0f}   "
        f"({skew['speedup']:.2f}x, {skew['tasks_stolen']} task(s) "
        f"stolen)",
    ]
    return "\n".join(lines)


def sanity_failures(shard_rows, plain, durable, skew=None):
    failures = []
    for shards, rate, _p99 in shard_rows:
        if rate < MIN_RATE:
            failures.append(f"{shards} shard(s): {rate:.0f} assign/s "
                            f"is below the {MIN_RATE:.0f}/s floor")
    if durable * MAX_DURABILITY_SLOWDOWN < plain:
        failures.append(
            f"durable shard at {durable:.0f}/s is more than "
            f"{MAX_DURABILITY_SLOWDOWN:.0f}x slower than in-memory "
            f"({plain:.0f}/s)")
    if skew is not None:
        if skew["speedup"] < MIN_STEAL_SPEEDUP:
            failures.append(
                f"work stealing bought only {skew['speedup']:.2f}x on "
                f"the skewed workload (floor "
                f"{MIN_STEAL_SPEEDUP:.1f}x): off "
                f"{skew['stealing_off']:.0f}/s, on "
                f"{skew['stealing_on']:.0f}/s")
        if not skew["tasks_stolen"]:
            failures.append("stealing-on run stole zero tasks")
    return failures


def write_baseline(mode, num_tasks, giant_tasks, shard_rows, plain,
                   durable, skew):
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "schema": 1,
        "mode": mode,
        "config": {
            "num_tasks": num_tasks,
            "giant_tasks": giant_tasks,
            "skew_shards": SKEW_SHARDS,
            "skew_workers": SKEW_WORKERS,
            "steal_watermark": SKEW_WATERMARK,
        },
        "shard_rates": {str(shards): round(rate, 1)
                        for shards, rate, _p99 in shard_rows},
        "durability": {"plain": round(plain, 1),
                       "durable": round(durable, 1)},
        "skew": {"stealing_off": round(skew["stealing_off"], 1),
                 "stealing_on": round(skew["stealing_on"], 1),
                 "speedup": round(skew["speedup"], 2),
                 "tasks_stolen": skew["tasks_stolen"]},
    }
    BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def check_against_baseline(shard_rows, skew):
    """Collapse detection vs the checked-in baseline (generous
    tolerance: shared CI runners wobble, a regression craters)."""
    if not BASELINE_PATH.exists():
        return [f"no baseline at {BASELINE_PATH}; "
                f"run --write-baseline"]
    baseline = json.loads(BASELINE_PATH.read_text())
    if baseline.get("schema") != 1:
        return [f"baseline schema {baseline.get('schema')!r} is not "
                f"supported; rerun --write-baseline"]
    failures = []
    for shards, rate, _p99 in shard_rows:
        reference = baseline["shard_rates"].get(str(shards))
        if reference and rate < reference * MAX_BASELINE_DROP:
            failures.append(
                f"{shards} shard(s): {rate:.0f}/s is under "
                f"{MAX_BASELINE_DROP:.0%} of the baseline "
                f"{reference:.0f}/s")
    reference = baseline.get("skew", {}).get("stealing_on")
    if reference and skew["stealing_on"] < reference * \
            MAX_BASELINE_DROP:
        failures.append(
            f"skew stealing-on rate {skew['stealing_on']:.0f}/s is "
            f"under {MAX_BASELINE_DROP:.0%} of the baseline "
            f"{reference:.0f}/s")
    return failures


def test_cluster_throughput(benchmark, scale, artifact):
    num_tasks = max(120, scale.num_tasks // 8)

    def sweep():
        return (sweep_shards(num_tasks),
                durability_overhead(num_tasks))

    shard_rows, (plain, durable) = benchmark.pedantic(
        sweep, rounds=1, iterations=1)
    artifact("cluster_throughput",
             format_tables(num_tasks, shard_rows, plain, durable))
    assert sanity_failures(shard_rows, plain, durable) == []


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="cluster throughput bench (standalone)")
    parser.add_argument("--quick", action="store_true",
                        help="small workload (CI smoke)")
    parser.add_argument("--tasks", type=int, default=None,
                        help="total tasks per run (overrides --quick)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 when sanity floors (incl. the "
                             "work-stealing speedup) are violated or "
                             "the baseline regressed")
    parser.add_argument("--write-baseline", action="store_true",
                        help=f"refresh {BASELINE_PATH.name} from "
                             f"this run")
    args = parser.parse_args(argv)
    num_tasks = args.tasks or (120 if args.quick else 400)
    giant_tasks = 96 if args.quick else 192
    shard_rows = sweep_shards(num_tasks)
    plain, durable = durability_overhead(num_tasks)
    skew = sweep_skew(giant_tasks)
    print(format_tables(num_tasks, shard_rows, plain, durable))
    print()
    print(format_skew(giant_tasks, skew))
    if args.write_baseline:
        write_baseline("quick" if args.quick else "full", num_tasks,
                       giant_tasks, shard_rows, plain, durable, skew)
        print(f"baseline written to {BASELINE_PATH}")
    if args.check:
        failures = sanity_failures(shard_rows, plain, durable, skew)
        failures += check_against_baseline(shard_rows, skew)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        if not failures:
            print("bench-regression check passed")
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
