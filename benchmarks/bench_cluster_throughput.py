"""Cluster bench: shard-count scaling and the price of durability.

Not a paper artifact — it characterizes the ``repro.cluster`` tier.
Everything runs in-process over real localhost TCP with zero simulated
work, so the measurement isolates the cluster path (router redirect,
shard-local scheduling, WAL flushes):

* **shard sweep** — the same light multi-job workload over 1, 2 and 4
  shards (jobs spread round-robin, workers pull straight from the
  shard owning their job after one REDIRECT).  Shards only pay the
  router on the control plane, so assignment rate should hold or
  improve as shards are added;
* **durability overhead** — one shard serving the same job as a plain
  in-memory scheduler vs. a WAL-ing, snapshotting ``open_shard``.
  The WAL flushes on every emitted record by design; this row keeps
  that cost visible (and bounded) instead of anecdotal.

Standalone CLI (no pytest) for CI smoke use::

    python benchmarks/bench_cluster_throughput.py --quick
    python benchmarks/bench_cluster_throughput.py --quick --check
"""

import argparse
import asyncio
import sys
import tempfile
import time
from pathlib import Path

from repro.cluster import ClusterRouter, ShardAddress, open_shard
from repro.cluster.loadgen import run_cluster_load
from repro.grid.job import Task
from repro.serve.server import SchedulerServer
from repro.serve.service import SchedulerService

SHARD_COUNTS = (1, 2, 4)
RESULTS_DIR = Path(__file__).parent / "results"
#: Sanity floor, not a target (CI machines are noisy and shared).
MIN_RATE = 50.0
#: The WAL may cost a lot relative to pure in-memory dispatch, but an
#: order of magnitude means something is broken (sync writes on the
#: hot path, a lost flush batch, ...).
MAX_DURABILITY_SLOWDOWN = 10.0


def light_tasks(num_tasks, files_per_task=3, num_files=300, start=0):
    return [
        Task(task_id=0,  # ids are reassigned by the service
             files=frozenset({(start + index * files_per_task + offset)
                              % num_files
                              for offset in range(files_per_task)}),
             flops=0.0)
        for index in range(num_tasks)
    ]


async def _timed_cluster(num_tasks, shards, workers, state_root=None,
                         snapshot_interval=0.5):
    """One cluster run; returns (assignments/sec, report)."""
    servers = []
    durabilities = []
    snapshot_tasks = []
    for index in range(shards):
        if state_root is not None:
            durability = open_shard(
                str(Path(state_root) / f"shard-{index}"),
                metric="combined", n=2, seed=0, shard_index=index,
                shard_count=shards,
                snapshot_interval=snapshot_interval)
            durabilities.append(durability)
            service = durability.service
        else:
            service = SchedulerService(metric="combined", n=2, seed=0,
                                       id_start=index,
                                       id_stride=shards,
                                       wal_events=True)
        server = SchedulerServer(service)
        await server.start()
        servers.append(server)
    router = ClusterRouter([ShardAddress(i, s.host, s.port)
                            for i, s in enumerate(servers)])
    await router.start()
    loop = asyncio.get_running_loop()
    snapshot_tasks = [loop.create_task(d.snapshot_loop())
                      for d in durabilities]
    try:
        per_job = num_tasks // shards
        jobs = [light_tasks(per_job, start=index * per_job * 3)
                for index in range(shards)]
        start = time.perf_counter()
        report = await run_cluster_load(router.host, router.port, jobs,
                                        workers=workers,
                                        sites=min(workers, 4),
                                        capacity_files=600)
        wall = time.perf_counter() - start
    finally:
        for task in snapshot_tasks:
            task.cancel()
        for task in snapshot_tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        await router.stop()
        for server in servers:
            await server.stop()
        for durability in durabilities:
            durability.close()
    done = sum(job["status"]["completed"] for job in report["jobs"])
    expected = sum(len(job) for job in jobs)
    assert done == expected, f"lost tasks: {done}/{expected}"
    return done / wall, report


def run_cluster(num_tasks, shards, workers, state_root=None):
    return asyncio.run(asyncio.wait_for(
        _timed_cluster(num_tasks, shards, workers,
                       state_root=state_root), timeout=300))


def sweep_shards(num_tasks, workers=8):
    """(shards, rate, router p99 merged) per shard count."""
    rows = []
    for shards in SHARD_COUNTS:
        rate, report = run_cluster(num_tasks, shards, workers)
        latency = report["stats"]["decision_latency"]
        rows.append((shards, rate, latency["p99_us"]))
    return rows


def durability_overhead(num_tasks, workers=4, repeats=3):
    """Best-of-N (plain_rate, durable_rate) on a one-shard cluster."""
    plain = 0.0
    durable = 0.0
    for _ in range(repeats):
        rate, _report = run_cluster(num_tasks, 1, workers)
        plain = max(plain, rate)
        with tempfile.TemporaryDirectory() as state_root:
            rate, _report = run_cluster(num_tasks, 1, workers,
                                        state_root=state_root)
            durable = max(durable, rate)
    return plain, durable


def format_tables(num_tasks, shard_rows, plain, durable):
    lines = [
        f"cluster throughput ({num_tasks} light tasks, localhost "
        f"TCP, router + shard processes in-process, zero simulated "
        f"work)",
        f"{'shards':>8} {'assign/s':>10} {'p99 us':>8}",
    ]
    for shards, rate, p99 in shard_rows:
        lines.append(f"{shards:>8} {rate:>10.0f} {p99:>8.0f}")
    lines.append("")
    lines.append("durability overhead (1 shard, WAL flush per record "
                 "+ periodic snapshots)")
    lines.append(f"{'mode':>10} {'assign/s':>10} {'vs plain':>9}")
    lines.append(f"{'in-memory':>10} {plain:>10.0f} {'1.00x':>9}")
    lines.append(f"{'durable':>10} {durable:>10.0f} "
                 f"{durable / plain:>8.2f}x")
    return "\n".join(lines)


def sanity_failures(shard_rows, plain, durable):
    failures = []
    for shards, rate, _p99 in shard_rows:
        if rate < MIN_RATE:
            failures.append(f"{shards} shard(s): {rate:.0f} assign/s "
                            f"is below the {MIN_RATE:.0f}/s floor")
    if durable * MAX_DURABILITY_SLOWDOWN < plain:
        failures.append(
            f"durable shard at {durable:.0f}/s is more than "
            f"{MAX_DURABILITY_SLOWDOWN:.0f}x slower than in-memory "
            f"({plain:.0f}/s)")
    return failures


def test_cluster_throughput(benchmark, scale, artifact):
    num_tasks = max(120, scale.num_tasks // 8)

    def sweep():
        return (sweep_shards(num_tasks),
                durability_overhead(num_tasks))

    shard_rows, (plain, durable) = benchmark.pedantic(
        sweep, rounds=1, iterations=1)
    artifact("cluster_throughput",
             format_tables(num_tasks, shard_rows, plain, durable))
    assert sanity_failures(shard_rows, plain, durable) == []


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="cluster throughput bench (standalone)")
    parser.add_argument("--quick", action="store_true",
                        help="small workload (CI smoke)")
    parser.add_argument("--tasks", type=int, default=None,
                        help="total tasks per run (overrides --quick)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 when sanity floors are violated")
    args = parser.parse_args(argv)
    num_tasks = args.tasks or (120 if args.quick else 400)
    shard_rows = sweep_shards(num_tasks)
    plain, durable = durability_overhead(num_tasks)
    print(format_tables(num_tasks, shard_rows, plain, durable))
    if args.check:
        failures = sanity_failures(shard_rows, plain, durable)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
