"""Figure 4: makespan vs data-server capacity, all six algorithms.

Paper shapes asserted:
* randomized worker-centric variants are the best overall;
* storage affinity is hurt most at the smallest capacity (premature
  scheduling decisions) and becomes comparable as capacity grows;
* worker-centric curves are comparatively flat in capacity.
"""

from repro.exp.report import format_sweep_table


def test_fig4_capacity_makespan(benchmark, scale, artifact,
                                fig4_fig5_sweep):
    sweep = benchmark.pedantic(lambda: fig4_fig5_sweep, rounds=1,
                               iterations=1)
    artifact("fig4_capacity_makespan", format_sweep_table(
        sweep, metric="makespan_minutes",
        title=f"Figure 4: makespan (minutes) vs capacity "
              f"[scale={scale.name}]"))

    smallest, largest = sweep.values[0], sweep.values[-1]

    def makespan(name, value):
        return sweep.cell(name, value).makespan_minutes

    # Storage affinity suffers at small capacity relative to itself.
    sa_degradation = makespan("storage-affinity", smallest) \
        / makespan("storage-affinity", largest)
    rest2_degradation = makespan("rest.2", smallest) \
        / makespan("rest.2", largest)
    assert sa_degradation > rest2_degradation, \
        "premature scheduling decisions must hurt storage affinity most"

    # Worker-centric randomized variants win at the smallest capacity.
    best_random = min(makespan("rest.2", smallest),
                      makespan("combined.2", smallest))
    assert best_random <= makespan("storage-affinity", smallest)
    assert best_random <= makespan("overlap", smallest)
