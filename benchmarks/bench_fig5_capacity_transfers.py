"""Figure 5: number of file transfers (per data server) vs capacity.

Shares the Figure 4 sweep.  Paper shapes asserted:
* `overlap` needs more transfers than `rest`/`combined` (it never
  minimizes the missing-file count);
* transfer counts do not increase with capacity.
"""

from repro.exp.report import format_sweep_table


def test_fig5_capacity_transfers(benchmark, scale, artifact,
                                 fig4_fig5_sweep):
    sweep = benchmark.pedantic(lambda: fig4_fig5_sweep, rounds=1,
                               iterations=1)
    num_sites = sweep.base.num_sites

    artifact("fig5_capacity_transfers", format_sweep_table(
        sweep,
        transform=lambda cell: cell.file_transfers / num_sites,
        title=f"Figure 5: # file transfers per data server vs capacity "
              f"[scale={scale.name}]"))

    def transfers(name, value):
        return sweep.cell(name, value).file_transfers

    for capacity in sweep.values:
        assert transfers("overlap", capacity) \
            >= transfers("rest", capacity), \
            f"overlap must not beat rest on transfers at {capacity}"

    for name in sweep.schedulers:
        assert transfers(name, sweep.values[-1]) \
            <= transfers(name, sweep.values[0]) * 1.05, \
            f"{name}: transfers should not grow with capacity"
