"""Figure 6: makespan vs number of workers per site.

Paper shapes asserted:
* adding workers per site never buys proportional speedup — the serial
  data server is the bottleneck, and "in some cases, the performance is
  worse with more workers!" (Section 5.5); curves flatten or rise;
* storage affinity does *relatively* better at high worker counts
  (replication soaks up idle workers), worker-centric metrics at low
  counts — exactly the paper's crossover.
"""

from repro.exp.figures import fig6
from repro.exp.report import format_sweep_table


def test_fig6_workers_makespan(benchmark, scale, artifact):
    sweep = benchmark.pedantic(lambda: fig6(scale), rounds=1,
                               iterations=1)
    artifact("fig6_workers_makespan", format_sweep_table(
        sweep, metric="makespan_minutes",
        title=f"Figure 6: makespan (minutes) vs workers per site "
              f"[scale={scale.name}]"))

    low, high = sweep.values[0], sweep.values[-1]

    for name in sweep.schedulers:
        makespans = dict(sweep.series(name))
        # Worker scaling is far from proportional: the serial data
        # server bottlenecks, so going low -> high workers must gain
        # much less than the worker ratio (flat and *rising* curves,
        # which the paper also observes, trivially satisfy this).
        assert makespans[low] / makespans[high] < 0.7 * high / low, \
            f"{name}: speedup must stay well below the worker ratio"

    def cell(name, value):
        return sweep.cell(name, value).makespan_minutes

    # Storage affinity is relatively better at many workers than at few
    # (paper: 'storage affinity performs well with larger numbers of
    # workers').
    relative_low = cell("storage-affinity", low) / cell("rest.2", low)
    relative_high = cell("storage-affinity", high) / cell("rest.2", high)
    assert relative_high <= relative_low * 1.25
