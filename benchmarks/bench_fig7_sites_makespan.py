"""Figure 7: makespan vs number of sites.

Paper shapes asserted:
* makespan falls as sites are added (more parallel data servers);
* randomized variants (rest.2 / combined.2) beat their deterministic
  counterparts on average across the sweep.
"""

from repro.exp.figures import fig7
from repro.exp.report import format_sweep_table


def test_fig7_sites_makespan(benchmark, scale, artifact):
    sweep = benchmark.pedantic(lambda: fig7(scale), rounds=1,
                               iterations=1)
    artifact("fig7_sites_makespan", format_sweep_table(
        sweep, metric="makespan_minutes",
        title=f"Figure 7: makespan (minutes) vs number of sites "
              f"[scale={scale.name}]"))

    few, many = sweep.values[0], sweep.values[-1]
    for name in sweep.schedulers:
        makespans = dict(sweep.series(name))
        assert makespans[many] < makespans[few], \
            f"{name}: more sites must reduce makespan"

    def mean_makespan(name):
        points = sweep.series(name)
        return sum(y for _x, y in points) / len(points)

    # Randomized selection avoids sub-optimal deterministic picks: the
    # best randomized variant at least matches the best deterministic
    # one (per-family comparisons need the full multi-seed protocol).
    best_randomized = min(mean_makespan("rest.2"),
                          mean_makespan("combined.2"))
    best_deterministic = min(mean_makespan("rest"),
                             mean_makespan("combined"))
    assert best_randomized <= best_deterministic * 1.05
