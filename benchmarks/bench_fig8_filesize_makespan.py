"""Figure 8: makespan vs file size (5 / 25 / 50 MB).

Paper shapes asserted:
* makespan grows roughly linearly with file size (the application is
  network-bound, so bytes dominate);
* the algorithm ordering is preserved across sizes (no crossovers of
  the headline comparison: randomized worker-centric vs the rest).
"""

from repro.exp.figures import fig8
from repro.exp.report import format_sweep_table


def test_fig8_filesize_makespan(benchmark, scale, artifact):
    sweep = benchmark.pedantic(lambda: fig8(scale), rounds=1,
                               iterations=1)
    artifact("fig8_filesize_makespan", format_sweep_table(
        sweep, metric="makespan_minutes",
        title=f"Figure 8: makespan (minutes) vs file size (MB) "
              f"[scale={scale.name}]"))

    small, large = sweep.values[0], sweep.values[-1]
    ratio_sizes = large / small
    for name in sweep.schedulers:
        makespans = dict(sweep.series(name))
        growth = makespans[large] / makespans[small]
        # near-linear growth: within a factor-2 band of proportionality
        assert 0.4 * ratio_sizes <= growth <= 1.6 * ratio_sizes, \
            f"{name}: makespan growth {growth:.2f} not ~linear in size"

    # best randomized worker-centric stays ahead of overlap at every size
    for size in sweep.values:
        best = min(sweep.cell("rest.2", size).makespan_minutes,
                   sweep.cell("combined.2", size).makespan_minutes)
        assert best <= sweep.cell("overlap", size).makespan_minutes * 1.02
