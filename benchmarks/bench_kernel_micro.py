"""Microbenchmarks: DES event throughput and flow-network updates.

Not a paper artifact — capacity planning for the harness itself (how
big a campaign fits in a coffee break).
"""

import random

from repro.net import FlowNetwork, Topology
from repro.obs.metrics import LatencyHistogram, reference_bucket_index
from repro.sim import Environment, Store


def test_timeout_throughput(benchmark):
    """Raw event scheduling + dispatch rate."""

    def run_events():
        env = Environment()
        count = [0]

        def bump(_event):
            count[0] += 1

        for i in range(5000):
            env.timeout(float(i % 97)).add_callback(bump)
        env.run()
        return count[0]

    assert benchmark(run_events) == 5000


def test_process_switch_throughput(benchmark):
    """Generator-process ping-pong via a Store."""

    def run_pingpong():
        env = Environment()
        store = Store(env)
        received = [0]

        def producer(env):
            for i in range(1000):
                store.put(i)
                yield env.timeout(0.001)

        def consumer(env):
            for _ in range(1000):
                yield store.get()
                received[0] += 1

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        return received[0]

    assert benchmark(run_pingpong) == 1000


def test_flow_network_churn(benchmark):
    """Sequential transfers over a shared 3-hop path (rate recompute)."""
    topo = Topology()
    names = ["a", "r1", "r2", "b"]
    for name in names:
        topo.add_node(name)
    for left, right in zip(names, names[1:]):
        topo.add_link(left, right, bandwidth=100.0, latency=0.001)

    def run_transfers():
        env = Environment()
        net = FlowNetwork(env, topo)

        def sender(env):
            for _ in range(300):
                yield net.transfer("a", "b", 50.0)

        env.process(sender(env))
        env.run()
        return net.completed_transfers

    assert benchmark(run_transfers) == 300


def test_concurrent_flow_recompute(benchmark):
    """Many concurrent flows forcing repeated max-min recomputation."""
    topo = Topology()
    topo.add_node("hub")
    leaves = []
    for i in range(10):
        leaf = topo.add_node(f"leaf{i}")
        topo.add_link("hub", leaf, bandwidth=10.0, latency=0.001)
        leaves.append(leaf)

    def run_star():
        env = Environment()
        net = FlowNetwork(env, topo)
        for round_index in range(5):
            for leaf in leaves:
                net.transfer("hub", leaf, 25.0 * (round_index + 1))
        env.run()
        return net.completed_transfers

    assert benchmark(run_star) == 50


def test_histogram_record_throughput(benchmark):
    """O(1) bit_length bucket lookup on the hot stats path.

    Before timing, every sample is cross-checked against the old
    linear doubling loop (kept as ``reference_bucket_index``) so the
    fast path can never drift from the bucket edges it claims.
    """
    rng = random.Random(7)
    samples = [rng.random() ** 6 for _ in range(20000)]
    samples += [0.0, 5e-7, 1e-6, 2e-6, 4e-6 + 1e-18, 1e3, 1e9]

    oracle = LatencyHistogram()
    for value in samples:
        assert (oracle.bucket_index(value)
                == reference_bucket_index(oracle, value)), value

    def run_records():
        histogram = LatencyHistogram()
        for value in samples:
            histogram.record(value)
        return histogram.count

    assert benchmark(run_records) == len(samples)
