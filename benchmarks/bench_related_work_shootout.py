"""Extension bench: the whole related-work lineage head to head.

One table with every scheduling family the paper discusses (Sections
3-6): the worker-centric strategies, storage affinity, the MCT
heuristics (XSufferage / MinMin / MaxMin), offline spatial clustering,
and the data-blind anchors.  Asserted shape: every data-aware strategy
beats the data-blind anchors; MaxMin (weak locality) trails the
locality-aware MCT members.
"""

from repro.exp.sweep import run_sweep
from repro.exp.report import format_sweep_table

LINEUP = (
    "rest.2", "combined.2", "storage-affinity", "xsufferage",
    "minmin", "maxmin", "spatial-clustering", "workqueue", "random",
)


def test_related_work_shootout(benchmark, scale, artifact):
    base = scale.base_config()
    sweep = benchmark.pedantic(
        lambda: run_sweep(base, "capacity_files",
                          (scale.capacity_default,), LINEUP,
                          topology_seeds=scale.topology_seeds),
        rounds=1, iterations=1)
    artifact("related_work_shootout", "\n\n".join([
        format_sweep_table(
            sweep, metric="makespan_minutes",
            title=f"Related-work shootout, makespan (minutes) "
                  f"[scale={scale.name}]"),
        format_sweep_table(
            sweep,
            transform=lambda cell: cell.file_transfers
            / sweep.base.num_sites,
            title="Same runs: # file transfers per data server"),
    ]))

    capacity = scale.capacity_default

    def makespan(name):
        return sweep.cell(name, capacity).makespan_minutes

    data_aware = ("rest.2", "combined.2", "storage-affinity",
                  "xsufferage", "minmin", "spatial-clustering")
    for name in data_aware:
        assert makespan(name) < makespan("workqueue"), \
            f"{name} must beat the FIFO anchor"
        assert makespan(name) < makespan("random"), \
            f"{name} must beat the random anchor"
    assert makespan("xsufferage") <= makespan("maxmin"), \
        "sufferage should not lose to locality-blind MaxMin"
