"""Microbenchmark: scheduling-decision latency per policy.

Two layers:

* **pytest-benchmark** (the original suite) — the cost of one
  ``next_task`` decision on a mid-run *simulated* grid per metric,
  plus storage affinity's one-off distribution — the practical side of
  the paper's O(T*I) vs O(T*I*S) comparison (Section 4.4).
* **standalone CLI** (no pytest) — the decision-kernel ablation the
  CI regression gate runs: ``PolicyEngine.choose`` latency at 10k
  pending tasks, sublinear fast path vs the decision-identical
  reference scan, for each metric::

      python benchmarks/bench_scheduler_decision.py --quick --check
      python benchmarks/bench_scheduler_decision.py --write-baseline

  ``--check`` compares against the checked-in machine-readable
  baseline (``results/decision_latency_baseline.json``) and fails
  when the fast path regressed more than 30%, stopped beating the
  reference path, or dropped under the tentpole speedup floors
  (>= 5x for ``rest``/``overlap``, >= 2x for ``combined``).
"""

import argparse
import json
import random
import sys
import time
from pathlib import Path

from repro.core.policy_engine import PolicyEngine
from repro.grid.job import Task

RESULTS_DIR = Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "decision_latency_baseline.json"

#: The decision-kernel workload: enough pending tasks that the
#: reference scan's linearity dominates, with most of them overlapping
#: the site (the worst case for the scan, the common case mid-run).
KERNEL_CONFIG = {
    "pending_tasks": 10_000,
    "files_per_task": 5,
    "file_pool": 4_000,
    "resident_files": 1_200,
    "references": 3_000,
    "n": 2,
    "seed": 0,
}
KERNEL_METRICS = ("overlap", "rest", "combined")
REGRESSION_TOLERANCE = 0.30
SPEEDUP_FLOORS = {"overlap": 5.0, "rest": 5.0, "combined": 2.0}


# -- decision-kernel ablation (standalone) -----------------------------------

def build_kernel_engine(metric, fast_path, config=None):
    """A warmed single-site engine over a synthetic pending set."""
    cfg = dict(KERNEL_CONFIG, **(config or {}))
    rng = random.Random(cfg["seed"])
    pool = range(cfg["file_pool"])
    tasks = {
        task_id: Task(task_id,
                      frozenset(rng.sample(pool, cfg["files_per_task"])))
        for task_id in range(cfg["pending_tasks"])
    }
    engine = PolicyEngine(tasks, metric=metric, n=cfg["n"],
                          rng=random.Random(1), fast_path=fast_path)
    engine.attach_site(0)
    for task in tasks.values():
        engine.add_task(task)
    for fid in rng.sample(pool, cfg["resident_files"]):
        engine.file_added(0, fid)
    for fid in rng.choices(pool, k=cfg["references"]):
        engine.file_referenced(0, fid)
    return engine


def measure_decision_us(engine, repeats, target_seconds,
                        max_calls=2000):
    """Best-of-``repeats`` mean per-call latency of ``choose``, in us.

    ``choose`` does not retire the winner, so the measured state is
    identical across calls; only the RNG advances (n=2 consumes one
    draw per decision), which does not change the work done.
    """
    clock = time.perf_counter
    start = clock()
    engine.choose(0)
    once = clock() - start
    calls = max(2, min(max_calls, int(target_seconds / max(once, 1e-9))))
    best = float("inf")
    for _ in range(repeats):
        start = clock()
        for _ in range(calls):
            engine.choose(0)
        best = min(best, (clock() - start) / calls)
    return best * 1e6


def run_kernel_sweep(quick):
    """{metric: {fast, reference, speedup}} per-decision latencies."""
    repeats = 2 if quick else 4
    target = 0.12 if quick else 0.5
    results = {}
    for metric in KERNEL_METRICS:
        fast = build_kernel_engine(metric, fast_path=True)
        reference = build_kernel_engine(metric, fast_path=False)
        # Sanity: the two kernels are decision-identical on this state.
        assert fast.choose(0).task_id == reference.choose(0).task_id
        fast_us = measure_decision_us(fast, repeats, target)
        reference_us = measure_decision_us(reference, repeats, target)
        results[metric] = {
            "fast_us": round(fast_us, 2),
            "reference_us": round(reference_us, 2),
            "speedup": round(reference_us / fast_us, 2),
        }
    return results


def format_kernel_table(results):
    lines = [
        f"decision kernel at {KERNEL_CONFIG['pending_tasks']} pending "
        f"tasks (n={KERNEL_CONFIG['n']}, single site, "
        f"{KERNEL_CONFIG['files_per_task']} files/task)",
        f"{'metric':>10} {'fast us':>10} {'reference us':>13} "
        f"{'speedup':>8}",
    ]
    for metric, row in results.items():
        lines.append(
            f"{metric:>10} {row['fast_us']:>10.1f} "
            f"{row['reference_us']:>13.1f} {row['speedup']:>7.1f}x")
    return "\n".join(lines)


def write_baseline(mode, results):
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "schema": 1,
        "mode": mode,
        "config": {key: value for key, value in KERNEL_CONFIG.items()},
        "decision_us": results,
    }
    BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def check_against_baseline(results):
    """Exit-code style check: [] if healthy, else failure messages."""
    failures = []
    if not BASELINE_PATH.exists():
        return [f"no baseline at {BASELINE_PATH}; run --write-baseline"]
    baseline = json.loads(BASELINE_PATH.read_text())
    ceiling = 1.0 + REGRESSION_TOLERANCE
    for metric, row in results.items():
        fast_us = row["fast_us"]
        reference_us = row["reference_us"]
        if fast_us >= reference_us:
            failures.append(
                f"{metric}: fast path ({fast_us:.1f} us) does not beat "
                f"the reference scan ({reference_us:.1f} us)")
        floor = SPEEDUP_FLOORS.get(metric)
        if floor is not None and row["speedup"] < floor:
            failures.append(
                f"{metric}: speedup {row['speedup']:.1f}x is below the "
                f"{floor:.0f}x tentpole floor")
        recorded = baseline["decision_us"].get(metric)
        if recorded is None:
            continue
        if fast_us > recorded["fast_us"] * ceiling:
            failures.append(
                f"{metric}: fast path {fast_us:.1f} us is more than "
                f"{REGRESSION_TOLERANCE:.0%} above the baseline "
                f"{recorded['fast_us']:.1f} us")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="decision-kernel latency bench (standalone mode)")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized measurement (fewer repeats; "
                             "the pending set stays at 10k tasks)")
    parser.add_argument("--check", action="store_true",
                        help="fail on regression vs the baseline or a "
                             "broken speedup floor")
    parser.add_argument("--write-baseline", action="store_true",
                        help=f"refresh {BASELINE_PATH.name} from this "
                             f"run")
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    results = run_kernel_sweep(quick=args.quick)
    print(format_kernel_table(results))

    status = 0
    if args.check:
        failures = check_against_baseline(results)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            status = 1
        else:
            print("decision-kernel regression check passed")
    if args.write_baseline:
        write_baseline(mode, results)
        print(f"baseline written to {BASELINE_PATH}")
    return status


# -- pytest-benchmark layer (simulated grid) ---------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - standalone CLI use
    pytest = None

if pytest is not None:
    from repro.core.registry import create_scheduler
    from repro.exp import ExperimentConfig
    from repro.exp.runner import build_grid, build_job

    TASKS = 800

    @pytest.fixture(scope="module")
    def job():
        return build_job(ExperimentConfig(num_tasks=TASKS, num_sites=4))

    def warmed_grid(job, scheduler):
        config = ExperimentConfig(num_tasks=TASKS, num_sites=4,
                                  capacity_files=1500)
        grid = build_grid(config, job)
        grid.attach_scheduler(scheduler)
        # advance the simulation until ~1/4 of the tasks completed, so
        # the decision runs against a realistic warm state
        target = TASKS // 4
        while (scheduler.tasks_remaining > TASKS - target
               and len(grid.env)):
            grid.env.step()
        return grid

    @pytest.mark.parametrize("metric", ["overlap", "rest", "combined"])
    def test_decision_latency(benchmark, job, metric):
        scheduler = create_scheduler(metric, job, random.Random(0))
        grid = warmed_grid(job, scheduler)
        worker = grid.workers[0]

        def one_decision():
            task = scheduler._choose(worker)
            # undo nothing: _choose does not mutate pending
            return task

        task = benchmark(one_decision)
        assert task is not None

    @pytest.mark.parametrize("metric", ["rest", "combined"])
    def test_naive_decision_latency(benchmark, job, metric):
        """The verbatim Figure-2 O(T*I) rescan, for the headline."""
        scheduler = create_scheduler(f"naive-wc:{metric}:1", job,
                                     random.Random(0))
        grid = warmed_grid(job, scheduler)
        worker = grid.workers[0]
        task = benchmark(lambda: scheduler._choose(worker))
        assert task is not None

    @pytest.mark.parametrize("metric", KERNEL_METRICS)
    @pytest.mark.parametrize("kernel", ["fast", "reference"])
    def test_kernel_decision_latency(benchmark, metric, kernel):
        """Engine-level fast vs reference at 10k pending tasks (the
        CLI gate's workload, under pytest-benchmark statistics)."""
        engine = build_kernel_engine(metric, fast_path=kernel == "fast")
        task = benchmark(lambda: engine.choose(0))
        assert task is not None

    def test_storage_affinity_initial_distribution(benchmark, job):
        def distribute():
            scheduler = create_scheduler("storage-affinity", job,
                                         random.Random(0))
            config = ExperimentConfig(num_tasks=TASKS, num_sites=4,
                                      capacity_files=1500)
            grid = build_grid(config, job)
            grid.attach_scheduler(scheduler)  # triggers distribution
            return sum(scheduler.initial_site_load)

        assert benchmark(distribute) == TASKS


if __name__ == "__main__":
    sys.exit(main())
