"""Microbenchmark: scheduling-decision latency per policy.

Measures the cost of one `next_task` decision on a mid-run grid state
for each worker-centric metric, and the one-off cost of storage
affinity's initial distribution — the practical side of the paper's
O(T*I) vs O(T*I*S) complexity comparison (Section 4.4).
"""

import random

import pytest

from repro.core.registry import create_scheduler
from repro.exp import ExperimentConfig
from repro.exp.runner import build_grid, build_job

TASKS = 800


@pytest.fixture(scope="module")
def job():
    return build_job(ExperimentConfig(num_tasks=TASKS, num_sites=4))


def warmed_grid(job, scheduler):
    config = ExperimentConfig(num_tasks=TASKS, num_sites=4,
                              capacity_files=1500)
    grid = build_grid(config, job)
    grid.attach_scheduler(scheduler)
    # advance the simulation until ~1/4 of the tasks completed, so the
    # decision runs against a realistic warm state
    target = TASKS // 4
    while scheduler.tasks_remaining > TASKS - target and len(grid.env):
        grid.env.step()
    return grid


@pytest.mark.parametrize("metric", ["overlap", "rest", "combined"])
def test_decision_latency(benchmark, job, metric):
    scheduler = create_scheduler(metric, job, random.Random(0))
    grid = warmed_grid(job, scheduler)
    worker = grid.workers[0]

    def one_decision():
        task = scheduler._choose(worker)
        # undo nothing: _choose does not mutate pending
        return task

    task = benchmark(one_decision)
    assert task is not None


@pytest.mark.parametrize("metric", ["rest", "combined"])
def test_naive_decision_latency(benchmark, job, metric):
    """The verbatim Figure-2 O(T*I) rescan, for the speedup headline."""
    scheduler = create_scheduler(f"naive-wc:{metric}:1", job,
                                 random.Random(0))
    grid = warmed_grid(job, scheduler)
    worker = grid.workers[0]
    task = benchmark(lambda: scheduler._choose(worker))
    assert task is not None


def test_storage_affinity_initial_distribution(benchmark, job):
    def distribute():
        scheduler = create_scheduler("storage-affinity", job,
                                     random.Random(0))
        config = ExperimentConfig(num_tasks=TASKS, num_sites=4,
                                  capacity_files=1500)
        grid = build_grid(config, job)
        grid.attach_scheduler(scheduler)  # triggers the distribution
        return sum(scheduler.initial_site_load)

    assert benchmark(distribute) == TASKS
