"""Live-service bench: assignment throughput, batch and codec sweeps.

Not a paper artifact — it characterizes the ``repro.serve`` scheduler
daemon.  Three sweeps, the first two over real localhost TCP with zero
simulated work so the measurement isolates the scheduler path (wire
framing, policy decision, lease bookkeeping):

* **worker sweep** — a Coadd-style job across fleet sizes, reporting
  end-to-end assignments/sec and the server-side decision-latency
  histogram (the PR-1 table, refreshed);
* **codec x batch sweep** — one worker pulling a light synthetic job
  at prefetch depths k in {1, 2, 4, 8}, once per codec (``json`` =
  the v2-compatible JSON-lines framing, ``binary`` = the v3
  length-prefixed frame).  Each task references only a few files, so
  per-task time is dominated by protocol round trips — the thing
  ``TASK_BATCH`` pipelining and cheaper framing amortize;
* **wire sweep** — the codecs alone (encode + feed of one k=8 pull
  cycle's message mix, both directions, no sockets or event loop).
  The e2e sweep runs server and client in one process and one event
  loop, so its rate is bounded by total scheduler work (policy
  decisions, lease bookkeeping) that no codec can remove; the wire
  sweep is where the binary frame's speedup is gated undiluted.

Standalone CLI (no pytest) for CI regression gating::

    python benchmarks/bench_serve_throughput.py --quick --check
    python benchmarks/bench_serve_throughput.py --quick --write-baseline
    python benchmarks/bench_serve_throughput.py --batch 8 --codec binary

``--check`` compares against the checked-in baseline
(``results/serve_throughput_baseline.json``): any codec x batch cell
more than 30% below its baseline rate fails, k=8 must beat k=1 for
both codecs, binary must beat json end-to-end at k=8, and the
wire-level binary/json ratio must stay at or above 3x.  The baseline
also freezes the final protocol-v2 batch sweep (``v2_json_reference``)
so the pre-v3 numbers stay comparable in the artifact history.
"""

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

from repro.exp import ExperimentConfig
from repro.exp.runner import build_job
from repro.grid.job import Task
from repro.serve import codec as wire
from repro.serve import messages, protocol
from repro.serve.loadgen import run_load
from repro.serve.server import SchedulerServer
from repro.serve.service import SchedulerService

WORKER_COUNTS = (1, 2, 4, 8, 16)
BATCH_SIZES = (1, 2, 4, 8)
CODECS = ("json", "binary")
REGRESSION_TOLERANCE = 0.30
WIRE_SPEEDUP_FLOOR = 3.0
RESULTS_DIR = Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "serve_throughput_baseline.json"

# Final protocol-v2 (JSON-lines only) quick-mode batch sweep, frozen
# when v3 landed so the artifact history keeps a pre-v3 anchor.
V2_JSON_REFERENCE = {"1": 1936.2, "2": 4165.5, "4": 5648.9, "8": 6970.8}


def light_tasks(num_tasks, files_per_task=3, num_files=300):
    """Tasks small enough that wire round trips dominate the cost."""
    return [
        Task(
            task_id=index,
            files=frozenset(
                {(index * files_per_task + offset) % num_files
                 for offset in range(files_per_task)}
            ),
            flops=0.0,
        )
        for index in range(num_tasks)
    ]


async def _timed_load(tasks, workers, sites, batch, codec):
    """Serve ``tasks`` in-process; time only the load, not the setup."""
    service = SchedulerService(metric="combined", n=2, seed=0)
    server = SchedulerServer(service)
    await server.start()
    serve_task = asyncio.ensure_future(server.serve_until_drained())
    try:
        start = time.perf_counter()
        report = await run_load(
            server.host,
            server.port,
            tasks,
            workers=workers,
            sites=sites,
            capacity_files=600,
            batch=batch,
            codec=codec,
        )
        wall = time.perf_counter() - start
        await serve_task
    finally:
        if not serve_task.done():
            serve_task.cancel()
        await server.stop()
    done = report["tasks_done"]
    assert done == len(tasks), f"lost tasks: {done}/{len(tasks)}"
    return done / wall, report["stats"]


def run_fleet(tasks, workers, batch=1, codec="json"):
    return asyncio.run(
        asyncio.wait_for(
            _timed_load(tasks, workers, min(workers, 4), batch, codec),
            timeout=300,
        )
    )


def sweep_workers(num_tasks):
    """(workers, rate, p50, p99, max) per fleet size, Coadd job."""
    job = build_job(
        ExperimentConfig(num_tasks=num_tasks, capacity_files=600)
    )
    rows = []
    for workers in WORKER_COUNTS:
        rate, stats = run_fleet(list(job), workers)
        latency = stats["decision_latency"]
        rows.append(
            (
                workers,
                rate,
                latency["p50_us"],
                latency["p99_us"],
                latency["max_us"],
            )
        )
    return rows


def batch_rate(num_tasks, batch, codec="json", repeats=3):
    """Assignments/sec for one worker pulling at prefetch depth k.

    Best-of-``repeats``: localhost throughput runs are short and
    noisy, and the scheduler's true capability is the fastest pass —
    the slower ones measure interference, not the code.
    """
    best = 0.0
    for _ in range(repeats):
        rate, stats = run_fleet(
            light_tasks(num_tasks, files_per_task=1),
            1,
            batch=batch,
            codec=codec,
        )
        if batch > 1:
            assert stats["batches"]["tasks"] == num_tasks
        best = max(best, rate)
    return best


def sweep_codecs(num_tasks, batch_sizes=BATCH_SIZES, repeats=3):
    """Best-of-``repeats`` rate per codec x batch cell.

    Repeats are interleaved across codecs so slow drift (CPU steal,
    thermal) lands on both codecs evenly instead of biasing whichever
    sweep happened to run later — the binary-vs-json comparison at
    k=8 is a CI gate and must not ride on measurement ordering.
    """
    best = {codec: dict.fromkeys(batch_sizes, 0.0) for codec in CODECS}
    for k in batch_sizes:
        for _ in range(repeats):
            for codec in CODECS:
                rate, stats = run_fleet(
                    light_tasks(num_tasks, files_per_task=1),
                    1,
                    batch=k,
                    codec=codec,
                )
                if k > 1:
                    assert stats["batches"]["tasks"] == num_tasks
                best[codec][k] = max(best[codec][k], rate)
    return {codec: sorted(rates.items()) for codec, rates in best.items()}


def _wire_cycle():
    """One k=8 pull cycle's messages as both endpoints would send them."""
    request = messages.RequestTask(job_id=1, max_tasks=8)
    delta = messages.FileDelta(
        site=0, added=[1, 2, 3], removed=[4], referenced=list(range(8))
    )
    dones = [
        messages.TaskDone(task_id=index, lease_id=100 + index)
        for index in range(8)
    ]
    batch = messages.TaskBatch(
        tasks=[
            {
                "task_id": index,
                "files": [index % 300],
                "flops": 0.0,
                "lease_id": 100 + index,
                "job_id": 1,
            }
            for index in range(8)
        ],
        lease_ttl=30.0,
    )
    acks = [messages.Ack() for _ in range(9)]
    return [request, delta, *dones], [batch, *acks]


def _wire_pass(name, cycles):
    """Time one encode+feed pass of ``cycles`` k=8 pull cycles."""
    client_to_server, server_to_client = _wire_cycle()
    client_side = wire.make_codec(name, decodes="server")
    server_side = wire.make_codec(name, decodes="client")
    start = time.perf_counter()
    for _ in range(cycles):
        up = b"".join(map(client_side.encode, client_to_server))
        down = b"".join(map(server_side.encode, server_to_client))
        server_side.feed(up)
        client_side.feed(down)
    wall = time.perf_counter() - start
    return cycles * 8 / wall


def wire_rates(cycles=2000, repeats=5):
    """Best-of-``repeats`` assignments/sec through each codec alone:
    encode + feed of one k=8 pull cycle per iteration, both
    directions, no sockets or event loop.  Repeats are interleaved
    across codecs (same reasoning as :func:`sweep_codecs`): the
    binary/json ratio is a CI gate and the two rates must be sampled
    under the same machine conditions."""
    names = {
        "json": protocol.CODEC_JSON,
        "binary": protocol.CODEC_BINARY,
    }
    best = dict.fromkeys(CODECS, 0.0)
    for _ in range(repeats):
        for codec in CODECS:
            best[codec] = max(best[codec], _wire_pass(names[codec], cycles))
    return best


def wire_rate(codec, cycles=2000, repeats=3):
    """Single-codec wire rate (diagnostics; the sweep uses
    :func:`wire_rates` so the two codecs are sampled interleaved)."""
    names = {
        "json": protocol.CODEC_JSON,
        "binary": protocol.CODEC_BINARY,
    }
    return max(_wire_pass(names[codec], cycles) for _ in range(repeats))


def format_tables(num_tasks, worker_rows, codec_rows, wires, batch_tasks=None):
    lines = [
        f"serve throughput ({num_tasks}-task Coadd, combined.2, "
        f"localhost TCP, zero simulated work)",
        f"{'workers':>8} {'assign/s':>10} {'p50 us':>8} "
        f"{'p99 us':>8} {'max us':>8}",
    ]
    for workers, rate, p50, p99, peak in worker_rows:
        lines.append(
            f"{workers:>8} {rate:>10.0f} {p50:>8.0f} "
            f"{p99:>8.0f} {peak:>8.0f}"
        )
    lines.append("")
    lines.append(
        f"codec x batch sweep ({batch_tasks or num_tasks} light tasks, "
        f"1 worker, REQUEST_TASK max_tasks=k + pipelined completions)"
    )
    lines.append(f"{'codec':>8} {'batch k':>8} {'assign/s':>10} {'vs k=1':>8}")
    for codec, rows in codec_rows.items():
        base = dict(rows)[1]
        for k, rate in rows:
            lines.append(f"{codec:>8} {k:>8} {rate:>10.0f} {rate / base:>7.2f}x")
    ratio = wires["binary"] / wires["json"]
    lines.append("")
    lines.append(
        "wire-level codec throughput (k=8 message mix, both directions, "
        "no event loop)"
    )
    lines.append(
        f"    json {wires['json']:>10.0f}/s   binary "
        f"{wires['binary']:>10.0f}/s   ratio {ratio:.2f}x"
    )
    return "\n".join(lines)


def test_serve_throughput(benchmark, scale, artifact):
    num_tasks = max(200, scale.num_tasks // 3)

    def sweep():
        return (
            sweep_workers(num_tasks),
            sweep_codecs(num_tasks * 2),
            wire_rates(),
        )

    worker_rows, codec_rows, wires = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    artifact(
        "serve_throughput",
        format_tables(
            num_tasks,
            worker_rows,
            codec_rows,
            wires,
            batch_tasks=num_tasks * 2,
        ),
    )

    # Sanity floor, not a target: even one worker should clear
    # hundreds of assignments/sec on localhost.
    assert all(rate > 50 for _w, rate, *_ in worker_rows)
    # Batching must amortize round trips, not merely not hurt,
    # and the binary frame must beat JSON end-to-end at depth 8.
    for rows in codec_rows.values():
        rates = dict(rows)
        assert rates[8] > rates[1]
    assert dict(codec_rows["binary"])[8] > dict(codec_rows["json"])[8]
    assert wires["binary"] >= WIRE_SPEEDUP_FLOOR * wires["json"]


def write_baseline(mode, num_tasks, codec_rows, wires):
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "schema": 2,
        "mode": mode,
        "config": {
            "num_tasks": num_tasks,
            "workers": 1,
            "files_per_task": 1,
            "metric": "combined",
            "n": 2,
            "protocol": protocol.PROTOCOL_VERSION,
        },
        "codec_batch_rates": {
            codec: {str(k): round(rate, 1) for k, rate in rows}
            for codec, rows in codec_rows.items()
        },
        "wire_rates": {codec: round(rate, 1) for codec, rate in wires.items()},
        "v2_json_reference": V2_JSON_REFERENCE,
    }
    BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def check_against_baseline(codec_rows, wires):
    """Exit-code style check: [] if healthy, else failure messages."""
    failures = []
    if not BASELINE_PATH.exists():
        return [f"no baseline at {BASELINE_PATH}; run --write-baseline"]
    baseline = json.loads(BASELINE_PATH.read_text())
    if baseline.get("schema") != 2:
        return [
            f"baseline schema {baseline.get('schema')!r} predates the "
            f"codec sweep; rerun --write-baseline"
        ]
    floor = 1.0 - REGRESSION_TOLERANCE
    for codec, rows in codec_rows.items():
        references = baseline["codec_batch_rates"].get(codec, {})
        for k, rate in rows:
            reference = references.get(str(k))
            if reference is None:
                continue
            if rate < reference * floor:
                failures.append(
                    f"codec={codec} batch k={k}: {rate:.0f}/s is more "
                    f"than {REGRESSION_TOLERANCE:.0%} below the "
                    f"baseline {reference:.0f}/s"
                )
        rates = dict(rows)
        if 1 in rates and 8 in rates and rates[8] <= rates[1]:
            failures.append(
                f"codec={codec}: batch k=8 ({rates[8]:.0f}/s) does not "
                f"beat k=1 ({rates[1]:.0f}/s)"
            )
    json_k8 = dict(codec_rows["json"]).get(8)
    binary_k8 = dict(codec_rows["binary"]).get(8)
    if json_k8 and binary_k8 and binary_k8 <= json_k8:
        failures.append(
            f"binary codec at k=8 ({binary_k8:.0f}/s) does not beat "
            f"json ({json_k8:.0f}/s)"
        )
    ratio = wires["binary"] / wires["json"]
    if ratio < WIRE_SPEEDUP_FLOOR:
        failures.append(
            f"wire-level binary/json throughput ratio {ratio:.2f}x is "
            f"below the {WIRE_SPEEDUP_FLOOR:.1f}x floor"
        )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="serve throughput bench (standalone mode)"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized sweep (fewer tasks)",
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=None,
        help="measure one prefetch depth only and print its rate",
    )
    parser.add_argument(
        "--codec",
        choices=CODECS,
        default="json",
        help="codec for --batch mode (the sweep always runs both)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail if the codec x batch sweep regressed vs the baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=f"refresh {BASELINE_PATH.name} from this run",
    )
    args = parser.parse_args(argv)

    num_tasks = 600 if args.quick else 1200
    mode = "quick" if args.quick else "full"

    if args.batch is not None:
        rate = batch_rate(num_tasks, args.batch, codec=args.codec)
        print(
            f"codec={args.codec} batch={args.batch} "
            f"assignments_per_sec={rate:.1f}"
        )
        return 0

    codec_rows = sweep_codecs(num_tasks)
    wires = wire_rates()
    for codec, rows in codec_rows.items():
        base = dict(rows)[1]
        for k, rate in rows:
            print(
                f"codec={codec} batch={k} assignments_per_sec={rate:.1f} "
                f"speedup_vs_k1={rate / base:.2f}"
            )
    ratio = wires["binary"] / wires["json"]
    print(
        f"wire json={wires['json']:.0f}/s binary={wires['binary']:.0f}/s "
        f"ratio={ratio:.2f}x"
    )

    status = 0
    if args.check:
        failures = check_against_baseline(codec_rows, wires)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            status = 1
        else:
            print("bench-regression check passed")
    if args.write_baseline:
        write_baseline(mode, num_tasks, codec_rows, wires)
        print(f"baseline written to {BASELINE_PATH}")
    return status


if __name__ == "__main__":
    sys.exit(main())
