"""Live-service bench: assignment throughput, worker and batch sweeps.

Not a paper artifact — it characterizes the ``repro.serve`` scheduler
daemon.  Two sweeps, both over real localhost TCP with zero simulated
work so the measurement isolates the scheduler path (wire framing,
policy decision, lease bookkeeping):

* **worker sweep** — a Coadd-style job across fleet sizes, reporting
  end-to-end assignments/sec and the server-side decision-latency
  histogram (the PR-1 table, refreshed);
* **batch sweep** — one worker pulling a light synthetic job at
  prefetch depths k in {1, 2, 4, 8}.  Each task references only a few
  files, so per-task time is dominated by protocol round trips — the
  thing ``TASK_BATCH`` + completion pipelining amortizes.

Standalone CLI (no pytest) for CI regression gating::

    python benchmarks/bench_serve_throughput.py --quick --check
    python benchmarks/bench_serve_throughput.py --quick --write-baseline
    python benchmarks/bench_serve_throughput.py --batch 8

``--check`` compares the batch sweep against the checked-in baseline
(``results/serve_throughput_baseline.json``): any batch size more than
30% below its baseline rate fails, and k=8 must beat k=1.
"""

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

from repro.exp import ExperimentConfig
from repro.exp.runner import build_job
from repro.grid.job import Task
from repro.serve.loadgen import run_load
from repro.serve.server import SchedulerServer
from repro.serve.service import SchedulerService

WORKER_COUNTS = (1, 2, 4, 8, 16)
BATCH_SIZES = (1, 2, 4, 8)
REGRESSION_TOLERANCE = 0.30
RESULTS_DIR = Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "serve_throughput_baseline.json"


def light_tasks(num_tasks, files_per_task=3, num_files=300):
    """Tasks small enough that wire round trips dominate the cost."""
    return [
        Task(
            task_id=index,
            files=frozenset(
                {(index * files_per_task + offset) % num_files
                 for offset in range(files_per_task)}
            ),
            flops=0.0,
        )
        for index in range(num_tasks)
    ]


async def _timed_load(tasks, workers, sites, batch):
    """Serve ``tasks`` in-process; time only the load, not the setup."""
    service = SchedulerService(metric="combined", n=2, seed=0)
    server = SchedulerServer(service)
    await server.start()
    serve_task = asyncio.ensure_future(server.serve_until_drained())
    try:
        start = time.perf_counter()
        report = await run_load(
            server.host,
            server.port,
            tasks,
            workers=workers,
            sites=sites,
            capacity_files=600,
            batch=batch,
        )
        wall = time.perf_counter() - start
        await serve_task
    finally:
        if not serve_task.done():
            serve_task.cancel()
        await server.stop()
    done = report["tasks_done"]
    assert done == len(tasks), f"lost tasks: {done}/{len(tasks)}"
    return done / wall, report["stats"]


def run_fleet(tasks, workers, batch=1):
    return asyncio.run(
        asyncio.wait_for(
            _timed_load(tasks, workers, min(workers, 4), batch),
            timeout=300,
        )
    )


def sweep_workers(num_tasks):
    """(workers, rate, p50, p99, max) per fleet size, Coadd job."""
    job = build_job(
        ExperimentConfig(num_tasks=num_tasks, capacity_files=600)
    )
    rows = []
    for workers in WORKER_COUNTS:
        rate, stats = run_fleet(list(job), workers)
        latency = stats["decision_latency"]
        rows.append(
            (
                workers,
                rate,
                latency["p50_us"],
                latency["p99_us"],
                latency["max_us"],
            )
        )
    return rows


def batch_rate(num_tasks, batch, repeats=3):
    """Assignments/sec for one worker pulling at prefetch depth k.

    Best-of-``repeats``: localhost throughput runs are short and
    noisy, and the scheduler's true capability is the fastest pass —
    the slower ones measure interference, not the code.
    """
    best = 0.0
    for _ in range(repeats):
        rate, stats = run_fleet(
            light_tasks(num_tasks, files_per_task=1), 1, batch=batch
        )
        if batch > 1:
            assert stats["batches"]["tasks"] == num_tasks
        best = max(best, rate)
    return best


def sweep_batches(num_tasks, batch_sizes=BATCH_SIZES):
    return [(k, batch_rate(num_tasks, k)) for k in batch_sizes]


def format_tables(num_tasks, worker_rows, batch_rows, batch_tasks=None):
    lines = [
        f"serve throughput ({num_tasks}-task Coadd, combined.2, "
        f"localhost TCP, zero simulated work)",
        f"{'workers':>8} {'assign/s':>10} {'p50 us':>8} "
        f"{'p99 us':>8} {'max us':>8}",
    ]
    for workers, rate, p50, p99, peak in worker_rows:
        lines.append(
            f"{workers:>8} {rate:>10.0f} {p50:>8.0f} "
            f"{p99:>8.0f} {peak:>8.0f}"
        )
    base = dict(batch_rows)[1]
    lines.append("")
    lines.append(
        f"batch sweep ({batch_tasks or num_tasks} light tasks, 1 worker, "
        f"REQUEST_TASK max_tasks=k + pipelined completions)"
    )
    lines.append(f"{'batch k':>8} {'assign/s':>10} {'vs k=1':>8}")
    for k, rate in batch_rows:
        lines.append(f"{k:>8} {rate:>10.0f} {rate / base:>7.2f}x")
    return "\n".join(lines)


def test_serve_throughput(benchmark, scale, artifact):
    num_tasks = max(200, scale.num_tasks // 3)

    def sweep():
        return sweep_workers(num_tasks), sweep_batches(num_tasks * 2)

    worker_rows, batch_rows = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    artifact(
        "serve_throughput",
        format_tables(num_tasks, worker_rows, batch_rows, batch_tasks=num_tasks * 2),
    )

    # Sanity floor, not a target: even one worker should clear
    # hundreds of assignments/sec on localhost.
    assert all(rate > 50 for _w, rate, *_ in worker_rows)
    # Batching must amortize round trips, not merely not hurt.
    rates = dict(batch_rows)
    assert rates[8] > rates[1]


def write_baseline(mode, num_tasks, batch_rows):
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "schema": 1,
        "mode": mode,
        "config": {
            "num_tasks": num_tasks,
            "workers": 1,
            "files_per_task": 1,
            "metric": "combined",
            "n": 2,
        },
        "batch_rates": {str(k): round(rate, 1) for k, rate in batch_rows},
    }
    BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def check_against_baseline(batch_rows):
    """Exit-code style check: [] if healthy, else failure messages."""
    failures = []
    if not BASELINE_PATH.exists():
        return [f"no baseline at {BASELINE_PATH}; run --write-baseline"]
    baseline = json.loads(BASELINE_PATH.read_text())
    floor = 1.0 - REGRESSION_TOLERANCE
    for k, rate in batch_rows:
        reference = baseline["batch_rates"].get(str(k))
        if reference is None:
            continue
        if rate < reference * floor:
            failures.append(
                f"batch k={k}: {rate:.0f}/s is more than "
                f"{REGRESSION_TOLERANCE:.0%} below the baseline "
                f"{reference:.0f}/s"
            )
    rates = dict(batch_rows)
    if 1 in rates and 8 in rates and rates[8] <= rates[1]:
        failures.append(
            f"batch k=8 ({rates[8]:.0f}/s) does not beat "
            f"k=1 ({rates[1]:.0f}/s)"
        )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="serve throughput bench (standalone mode)"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized sweep (fewer tasks)",
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=None,
        help="measure one prefetch depth only and print its rate",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail if the batch sweep regressed vs the baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=f"refresh {BASELINE_PATH.name} from this run",
    )
    args = parser.parse_args(argv)

    num_tasks = 600 if args.quick else 1200
    mode = "quick" if args.quick else "full"

    if args.batch is not None:
        rate = batch_rate(num_tasks, args.batch)
        print(f"batch={args.batch} assignments_per_sec={rate:.1f}")
        return 0

    batch_rows = sweep_batches(num_tasks)
    base = dict(batch_rows)[1]
    for k, rate in batch_rows:
        print(
            f"batch={k} assignments_per_sec={rate:.1f} "
            f"speedup_vs_k1={rate / base:.2f}"
        )

    status = 0
    if args.check:
        failures = check_against_baseline(batch_rows)
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        if failures:
            status = 1
        else:
            print("bench-regression check passed")
    if args.write_baseline:
        write_baseline(mode, num_tasks, batch_rows)
        print(f"baseline written to {BASELINE_PATH}")
    return status


if __name__ == "__main__":
    sys.exit(main())
