"""Live-service bench: assignment throughput and decision latency.

Not a paper artifact — it characterizes the new ``repro.serve``
scheduler daemon.  For each fleet size, a fresh in-process server runs
a Coadd-style job over real localhost TCP with zero simulated work, so
the measurement isolates the scheduler path: wire framing, policy
decision (``PolicyEngine.choose``), file-delta ingestion, completion
bookkeeping.  Reported per fleet size: end-to-end assignments/sec and
the server-side decision-latency histogram (p50/p99/max).
"""

import asyncio

from repro.exp import ExperimentConfig
from repro.exp.runner import build_job
from repro.serve.loadgen import serve_and_load

WORKER_COUNTS = (1, 2, 4, 8, 16)


def run_fleet(job, workers):
    return asyncio.run(asyncio.wait_for(
        serve_and_load(job, workers=workers, sites=min(workers, 4),
                       metric="combined", n=2, seed=0,
                       capacity_files=600),
        timeout=300))


def test_serve_throughput(benchmark, scale, artifact):
    num_tasks = max(200, scale.num_tasks // 3)
    job = build_job(ExperimentConfig(num_tasks=num_tasks,
                                     capacity_files=600))

    def sweep():
        rows = []
        for workers in WORKER_COUNTS:
            report = run_fleet(job, workers)
            assert report["tasks_done"] == num_tasks
            stats = report["stats"]
            latency = stats["decision_latency"]
            rows.append((workers, stats["assignments_per_sec"],
                         latency["p50_us"], latency["p99_us"],
                         latency["max_us"]))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        f"serve throughput ({num_tasks}-task Coadd, combined.2, "
        f"localhost TCP, zero simulated work)",
        f"{'workers':>8} {'assign/s':>10} {'p50 us':>8} "
        f"{'p99 us':>8} {'max us':>8}",
    ]
    for workers, rate, p50, p99, peak in rows:
        lines.append(f"{workers:>8} {rate:>10.0f} {p50:>8.0f} "
                     f"{p99:>8.0f} {peak:>8.0f}")
    artifact("serve_throughput", "\n".join(lines))

    # Sanity floor, not a target: even one worker should clear
    # hundreds of assignments/sec on localhost.
    assert all(rate > 50 for _w, rate, *_ in rows)
