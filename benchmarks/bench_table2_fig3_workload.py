"""Table 2 + Figures 1/3: Coadd workload characterization.

Regenerates the paper's workload statistics block (Table 2) and the
reference-count CDF (Figure 3) for the scaled Coadd instance, and
checks the calibration tolerances hold at full 6,000-task scale.
"""

import pytest

from repro.workload import (COADD_6000, CoaddParams, characterize,
                            generate_coadd, reference_cdf_series)


def test_table2_fig3(benchmark, scale, artifact):
    params = CoaddParams(num_tasks=scale.num_tasks)

    def build_and_characterize():
        return characterize(generate_coadd(params, seed=0))

    stats = benchmark.pedantic(build_and_characterize, rounds=3,
                               iterations=1)
    lines = [f"Table 2 (Coadd, {scale.num_tasks} tasks, scale="
             f"{scale.name})", stats.as_table(), "",
             "Figure 3: file access CDF (x = min #references, "
             "y = % of files)"]
    for refs, percent in reference_cdf_series(stats):
        lines.append(f"  >= {refs:2d} refs: {percent:5.1f}%")
    artifact("table2_fig3_workload", "\n".join(lines))
    assert stats.num_tasks == scale.num_tasks


def test_table2_calibration_full_6000(benchmark, artifact):
    """The flagship calibration: the 6,000-task instance vs Table 2."""
    stats = benchmark.pedantic(
        lambda: characterize(generate_coadd(COADD_6000, seed=0)),
        rounds=1, iterations=1)
    paper = {"total_files": 53390, "min": 36, "max": 101, "avg": 78.4327,
             "frac_ge_6": 0.85}
    lines = [
        "Table 2 calibration: paper vs generated (6000 tasks)",
        f"  total files : {paper['total_files']:>8d} vs "
        f"{stats.total_files:>8d}",
        f"  min / task  : {paper['min']:>8d} vs "
        f"{stats.min_files_per_task:>8d}",
        f"  max / task  : {paper['max']:>8d} vs "
        f"{stats.max_files_per_task:>8d}",
        f"  avg / task  : {paper['avg']:>8.2f} vs "
        f"{stats.avg_files_per_task:>8.2f}",
        f"  frac >= 6   : {paper['frac_ge_6']:>8.2f} vs "
        f"{stats.fraction_referenced_at_least(6):>8.2f}",
    ]
    artifact("table2_calibration_6000", "\n".join(lines))
    assert stats.total_files == pytest.approx(53390, rel=0.02)
    assert stats.avg_files_per_task == pytest.approx(78.43, rel=0.03)
    assert stats.fraction_referenced_at_least(6) == pytest.approx(
        0.85, abs=0.04)
