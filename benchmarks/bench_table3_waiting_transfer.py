"""Table 3: rest-metric data-server statistics vs workers per site.

Regenerates the waiting-time / transfer-time / transfer-count rows
(transfers reported per worker; see `repro.exp.figures.table3` for why
the paper's column must be per worker).  Paper shapes asserted:
* the average number of file transfers per worker falls as workers
  increase (more sharing within a site: 3998 -> 906 in the paper);
* queue waiting time rises from its 2-worker level (contention at the
  serial data server) — the paper observes a peak at 6 workers.
"""

from repro.exp.figures import table3
from repro.exp.report import format_table3


def test_table3_waiting_transfer(benchmark, scale, artifact):
    rows = benchmark.pedantic(lambda: table3(scale), rounds=1,
                              iterations=1)
    artifact("table3_waiting_transfer", format_table3(rows) + (
        f"\n(rest metric; waits/transfer-times are request-weighted "
        f"averages over all data servers; transfer counts are per "
        f"worker; scale={scale.name})"))

    workers = [row[0] for row in rows]
    waiting = {row[0]: row[1] for row in rows}
    transfers = {row[0]: row[3] for row in rows}

    # transfers per worker decrease with more workers (sharing grows)
    assert transfers[workers[-1]] < transfers[workers[0]], \
        "more workers per site must increase intra-site sharing"
    if len(workers) >= 3:
        values = [transfers[w] for w in workers]
        assert all(late <= early for early, late
                   in zip(values, values[1:])), \
            "per-worker transfers should fall monotonically"

    # waiting time grows from the low-worker level (contention)
    assert max(waiting[w] for w in workers[1:]) > waiting[workers[0]], \
        "data-server queueing must grow with worker count"
