"""Benchmark harness support.

Every figure/table benchmark runs its experiment once (pedantic
rounds=1 — a simulated campaign is not a microbenchmark), prints the
paper-shaped table, and archives it under ``benchmarks/results/`` so
EXPERIMENTS.md can cite the exact output.

Scale selection: set ``REPRO_BENCH_SCALE`` to ``small``, ``bench``
(default) or ``paper``.  ``paper`` reruns the full 6,000-task protocol
and takes hours.
"""

import os
from pathlib import Path

import pytest

from repro.exp.figures import SCALES

RESULTS_DIR = Path(__file__).parent / "results"


def current_scale():
    name = os.environ.get("REPRO_BENCH_SCALE", "bench")
    try:
        return SCALES[name]
    except KeyError:
        raise RuntimeError(
            f"REPRO_BENCH_SCALE={name!r}; choose from {sorted(SCALES)}")


@pytest.fixture(scope="session")
def scale():
    return current_scale()


@pytest.fixture(scope="session")
def artifact():
    """artifact(name, text): print and archive a result table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name, text):
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n===== {name} =====\n{text}\n")
        return path

    return write


@pytest.fixture(scope="session")
def fig4_fig5_sweep(scale):
    """Shared capacity sweep feeding both Figure 4 and Figure 5."""
    from repro.exp.figures import fig4_fig5
    return fig4_fig5(scale)
