#!/usr/bin/env python
"""Capacity planning: how much disk does each data server need?

The Figure 4 question, asked the way an operator would: for the
scheduler you picked, sweep the per-site storage capacity and find the
knee — the smallest capacity whose makespan is within 5% of the
asymptote.  Also reports eviction counts, the early-warning signal for
undersized caches, and contrasts a pull scheduler against the
task-centric baseline (whose stale queue assignments punish small
caches hardest).

    python examples/capacity_planning.py
"""

from repro.exp import ExperimentConfig, run_sweep
from repro.exp.report import format_sweep_table

CAPACITIES = (200, 300, 600, 1200, 2400)
SCHEDULERS = ("rest.2", "storage-affinity")


def find_knee(series, tolerance=0.05):
    """Smallest x whose y is within `tolerance` of the final value."""
    asymptote = series[-1][1]
    for x, y in series:
        if y <= asymptote * (1 + tolerance):
            return x
    return series[-1][0]


def main():
    base = ExperimentConfig(num_tasks=600)
    print("Sweeping data-server capacity (600 Coadd tasks, 10 sites)\n")
    sweep = run_sweep(base, "capacity_files", CAPACITIES, SCHEDULERS,
                      topology_seeds=(0,))

    print(format_sweep_table(
        sweep, metric="makespan_minutes",
        title="makespan (minutes) vs capacity (files)"))
    print()
    print(format_sweep_table(
        sweep, metric="evictions", value_format="{:>12.0f}",
        title="LRU evictions vs capacity (files)"))

    print()
    for name in SCHEDULERS:
        knee = find_knee(sweep.series(name))
        print(f"  {name:<18s} capacity knee ~ {knee} files "
              f"({knee * 25 / 1024:.1f} GiB at 25 MB/file)")

    small, large = CAPACITIES[0], CAPACITIES[-1]
    for name in SCHEDULERS:
        penalty = (sweep.cell(name, small).makespan
                   / sweep.cell(name, large).makespan - 1)
        print(f"  {name:<18s} small-cache penalty: {penalty:+.0%}")


if __name__ == "__main__":
    main()
