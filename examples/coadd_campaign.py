#!/usr/bin/env python
"""Coadd campaign study: all six paper algorithms, side by side.

Reproduces the paper's headline comparison (Section 5.3's algorithm
list) on one configuration, using the same multi-topology averaging
protocol, and prints a ranked report with per-site service statistics
for the winner — the kind of report a grid operator would want before
picking a scheduler for an SDSS coaddition run.

    python examples/coadd_campaign.py [--tasks 600] [--sites 10]
"""

import argparse

from repro.analysis.metrics import summarize_sites
from repro.core import PAPER_ALGORITHMS
from repro.exp import ExperimentConfig, run_averaged
from repro.exp.report import format_site_summaries


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tasks", type=int, default=600)
    parser.add_argument("--sites", type=int, default=10)
    parser.add_argument("--capacity", type=int, default=600)
    parser.add_argument("--seeds", type=int, default=2,
                        help="number of topologies to average over")
    args = parser.parse_args()

    base = ExperimentConfig(num_tasks=args.tasks, num_sites=args.sites,
                            capacity_files=args.capacity)
    seeds = tuple(range(args.seeds))

    print(f"Coadd campaign: {args.tasks} tasks, {args.sites} sites, "
          f"capacity {args.capacity} files, averaged over "
          f"{len(seeds)} topologies\n")

    rows = []
    for name in PAPER_ALGORITHMS:
        averaged = run_averaged(base.with_changes(scheduler=name),
                                topology_seeds=seeds)
        rows.append((name, averaged))
        print(f"  {name:<18s} makespan {averaged.makespan_minutes:9.1f} "
              f"min   transfers/server "
              f"{averaged.file_transfers / args.sites:7.1f}   "
              f"cancelled {averaged.tasks_cancelled:5.1f}")

    rows.sort(key=lambda pair: pair[1].makespan_minutes)
    winner_name, winner = rows[0]
    print(f"\nBest strategy: {winner_name} "
          f"({winner.makespan_minutes:.1f} min)")

    print("\nPer-site data-server statistics for the winner "
          "(topology seed 0):")
    print(format_site_summaries(
        summarize_sites(winner.runs[0].site_stats)))


if __name__ == "__main__":
    main()
