#!/usr/bin/env python
"""Extending the library: write and evaluate your own scheduling metric.

Two extension points are shown:

1. a custom *metric* plugged into the stock worker-centric scheduler —
   here, `rest` weighted by bytes instead of file counts;
2. a custom *policy* implementing the GridScheduler interface from
   scratch — a site-sticky scheduler that hands each site a contiguous
   block of the stripe (a spatial-clustering-style heuristic).

Both are benchmarked against the paper's `rest.2` on the same workload.

    python examples/custom_scheduler.py
"""

import random
from collections import OrderedDict

from repro.core import WorkerCentricScheduler
from repro.core.base import BaseScheduler
from repro.exp import ExperimentConfig
from repro.exp.runner import build_grid, build_job
from repro.sim.events import Event


# -- extension point 1: a custom metric -----------------------------------

def make_bytes_rest_metric(catalog):
    """rest in *bytes*: 1 / (bytes still to transfer)."""

    def bytes_rest(view):
        # view.missing counts files; all Coadd files are equally sized,
        # but a catalog with overrides would change the story.
        missing_bytes = view.missing * catalog.default_size
        return 1.0 / max(missing_bytes, 1.0)

    return bytes_rest


class BytesRestScheduler(WorkerCentricScheduler):
    """Stock worker-centric machinery, custom weight function."""

    def __init__(self, job, n=2, rng=None):
        super().__init__(job, metric="rest", n=n, rng=rng)
        self.metric_name = "rest"  # reuse rest's zero-overlap ordering
        self._weight = make_bytes_rest_metric(job.catalog)


# -- extension point 2: a policy from scratch -------------------------------

class SiteStickyScheduler(BaseScheduler):
    """Pre-partitions the task list into one contiguous block per site.

    Workers pull from their own site's block (FIFO within the block)
    and steal from the largest remaining block when theirs runs dry.
    """

    def _on_bound(self):
        tasks = list(self.job)
        num_sites = len(self.grid.sites)
        block = -(-len(tasks) // num_sites)
        self._blocks = [
            OrderedDict((t.task_id, t)
                        for t in tasks[i * block:(i + 1) * block])
            for i in range(num_sites)
        ]

    def next_task(self, worker):
        event = Event(self.grid.env)
        block = self._blocks[worker.site.site_id]
        if not block:
            # steal from the fullest remaining block
            donor = max(self._blocks, key=len)
            block = donor
        if block:
            _tid, task = block.popitem(last=False)
            self._trace_assignment(worker, task)
            event.succeed(task)
        else:
            event.succeed(None)  # nothing anywhere: shut the worker down
        return event


def evaluate(name, scheduler_factory, config, job):
    grid = build_grid(config, job)
    scheduler = scheduler_factory(job)
    grid.attach_scheduler(scheduler)
    outcome = grid.run()
    per_server = outcome.file_transfers / config.num_sites
    print(f"  {name:<22s} makespan {outcome.makespan / 60:9.1f} min   "
          f"transfers/server {per_server:8.1f}")
    return outcome


def main():
    config = ExperimentConfig(num_tasks=400, capacity_files=600)
    job = build_job(config)
    print(f"Custom schedulers vs the paper's rest.2 "
          f"({config.num_tasks} tasks, {config.num_sites} sites):\n")
    evaluate("rest.2 (paper)",
             lambda j: WorkerCentricScheduler(j, "rest", 2,
                                              random.Random(0)),
             config, job)
    evaluate("bytes-rest (custom)",
             lambda j: BytesRestScheduler(j, rng=random.Random(0)),
             config, job)
    evaluate("site-sticky (custom)",
             lambda j: SiteStickyScheduler(j), config, job)


if __name__ == "__main__":
    main()
