#!/usr/bin/env python
"""Asynchronous job arrivals: the online scenario offline planners miss.

The paper notes that Spatial Clustering "cannot handle new jobs
arriving asynchronously" while worker-centric scheduling needs no
change at all — arriving tasks just join the pending set.  This example
stages an observing campaign where coaddition work lands in waves (as
imaging runs finish), and compares:

* `rest.2` ingesting each wave the moment it arrives, vs
* the same scheduler with all waves known upfront (the offline bound),
* and FIFO workqueue under the same arrivals (locality-blind).

    python examples/dynamic_arrivals.py
"""

import random

from repro.core import WorkerCentricScheduler, WorkqueueScheduler
from repro.exp import ExperimentConfig
from repro.exp.runner import build_grid, build_job
from repro.grid import JobArrivalProcess, jittered_arrivals
from repro.sim import Environment

TASKS = 400
WAVES = 4
INTERVAL = 1800.0  # a new imaging run lands every 30 simulated minutes


def run(job, config, scheduler_factory, schedule=None):
    grid = build_grid(config, job)
    if schedule is None:
        scheduler = scheduler_factory(job, None)
    else:
        scheduler = scheduler_factory(job,
                                      schedule.initial_task_ids(job))
    grid.attach_scheduler(scheduler)
    if schedule is not None:
        JobArrivalProcess(grid, schedule)
    outcome = grid.run()
    return outcome


def main():
    config = ExperimentConfig(num_tasks=TASKS, capacity_files=600)
    job = build_job(config)
    schedule = jittered_arrivals(job, num_batches=WAVES,
                                 interval=INTERVAL,
                                 rng=random.Random(7))
    print(f"{TASKS} Coadd tasks arriving in {WAVES} waves, "
          f"~{INTERVAL / 60:.0f} min apart\n")

    def rest2(job, initial):
        return WorkerCentricScheduler(job, "rest", 2, random.Random(0),
                                      initial_task_ids=initial)

    def fifo(job, initial):
        return WorkqueueScheduler(job, initial_task_ids=initial)

    online = run(job, config, rest2, schedule)
    offline = run(job, config, rest2, None)
    blind = run(job, config, fifo, schedule)

    rows = [
        ("rest.2, online arrivals", online),
        ("rest.2, all known upfront", offline),
        ("workqueue, online arrivals", blind),
    ]
    for label, outcome in rows:
        print(f"  {label:<28s} makespan {outcome.makespan / 60:8.1f} min"
              f"   transfers {outcome.file_transfers:6d}")

    overhead = online.makespan / offline.makespan - 1
    last_wave = schedule.batches[-1][0] / 60
    print(f"\nOnline ingestion costs {overhead:+.0%} vs the offline "
          f"bound (last wave lands at t={last_wave:.0f} min).")
    print("Data-aware pull scheduling keeps its transfer advantage "
          f"({blind.file_transfers / online.file_transfers:.1f}x fewer "
          f"transfers than FIFO) with zero algorithm changes.")


if __name__ == "__main__":
    main()
