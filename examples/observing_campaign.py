#!/usr/bin/env python
"""Multi-pass observing campaign: inter-job data reuse.

Santos-Neto et al. motivate storage affinity with *sequences* of jobs
whose inputs overlap — data cached by one job accelerates the next.
This example runs a 3-pass coaddition campaign (each pass re-processes
the same stripe with different calibration) under worker-centric
scheduling and shows the warm-cache effect per pass, plus what happens
when the caches are too small to carry state across passes.

    python examples/observing_campaign.py
"""

from repro.exp import ExperimentConfig, run_campaign
from repro.workload import coadd_campaign
from repro.workload.coadd import CoaddParams

PASSES = 3
TASKS_PER_PASS = 200


def report(label, result):
    print(f"{label}:")
    for pass_result in result.passes:
        print(f"  {pass_result.name}: "
              f"{pass_result.duration_minutes:7.1f} min, "
              f"{pass_result.transfers_in_period:5d} transfers")
    print(f"  total makespan {result.makespan_minutes:.1f} min, "
          f"{result.file_transfers} transfers\n")
    return result


def main():
    campaign = coadd_campaign(CoaddParams(num_tasks=TASKS_PER_PASS),
                              num_jobs=PASSES, seed=11)
    print(f"{PASSES}-pass campaign, {TASKS_PER_PASS} tasks/pass, "
          f"{len(campaign.job.catalog)} distinct files\n")

    warm = report(
        "rest.2, ample caches (1500 files/site)",
        run_campaign(ExperimentConfig(scheduler="rest.2", num_tasks=1,
                                      capacity_files=1500), campaign))
    cold = report(
        "rest.2, tiny caches (250 files/site)",
        run_campaign(ExperimentConfig(scheduler="rest.2", num_tasks=1,
                                      capacity_files=250), campaign))

    warm_tail = sum(p.transfers_in_period for p in warm.passes[1:])
    cold_tail = sum(p.transfers_in_period for p in cold.passes[1:])
    print(f"Warm caches serve later passes with "
          f"{1 - warm_tail / max(1, cold_tail):.0%} fewer transfers than "
          f"thrashing caches — inter-job reuse is a cache-capacity "
          f"story, no scheduler change needed.")


if __name__ == "__main__":
    main()
