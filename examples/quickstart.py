#!/usr/bin/env python
"""Quickstart: run one scheduling algorithm on a scaled Coadd campaign.

Builds the paper's default setup (Table 1: 10 sites, 1 worker per site,
6000-file data servers, 25 MB files) at 1/10 scale, runs the paper's
best strategy (`combined.2`), and prints the headline numbers.

    python examples/quickstart.py
"""

from repro import ExperimentConfig, run_experiment


def main():
    config = ExperimentConfig(
        scheduler="combined.2",  # worker-centric, combined metric, n=2
        num_tasks=600,           # first 600 tasks of the synthetic Coadd
        capacity_files=600,      # data-server capacity, scaled like tasks
        seed=42,
    )
    print(f"Running {config.scheduler!r} on {config.num_tasks} Coadd "
          f"tasks over {config.num_sites} sites ...")
    result = run_experiment(config)

    print(f"  makespan            : {result.makespan_minutes:10.1f} "
          f"simulated minutes")
    print(f"  file transfers      : {result.file_transfers:10d} "
          f"({result.file_transfers / config.num_sites:.0f} per data "
          f"server)")
    print(f"  bytes moved         : "
          f"{result.bytes_transferred / 2**30:10.2f} GiB")
    print(f"  cache evictions     : {result.evictions:10d}")
    print(f"  scheduler decisions : {result.decisions:10d}")

    # Compare against the traditional data-blind workqueue.
    baseline = run_experiment(config.with_changes(scheduler="workqueue"))
    speedup = baseline.makespan / result.makespan
    saved = 1 - result.file_transfers / baseline.file_transfers
    print(f"\nversus FIFO workqueue: {speedup:.2f}x faster, "
          f"{saved:.0%} fewer file transfers")


if __name__ == "__main__":
    main()
