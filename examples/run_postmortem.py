#!/usr/bin/env python
"""Post-mortem of one run: timeline, bottleneck split, analytic floor.

After a campaign finishes, an operator wants to know *why* it took as
long as it did.  This example runs one configuration with full tracing
and then:

* renders the worker Gantt chart (compute vs fetch/wait vs idle),
* splits each worker's makespan into phases,
* compares the achieved makespan against the analytic lower bounds
  (bandwidth floor, compute floor, critical task).

    python examples/run_postmortem.py [--scheduler rest.2] [--tasks 120]
"""

import argparse

from repro.analysis.bounds import compute_bounds, efficiency
from repro.analysis.timeline import gantt, phase_totals, worker_spans
from repro.exp import ExperimentConfig, run_experiment


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scheduler", default="rest.2")
    parser.add_argument("--tasks", type=int, default=120)
    parser.add_argument("--sites", type=int, default=4)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()

    config = ExperimentConfig(scheduler=args.scheduler,
                              num_tasks=args.tasks,
                              num_sites=args.sites,
                              workers_per_site=args.workers,
                              capacity_files=600,
                              keep_trace=True)
    result = run_experiment(config)
    print(f"{args.scheduler}: {result.makespan_minutes:.1f} min, "
          f"{result.file_transfers} transfers\n")

    print(gantt(result.trace, makespan=result.makespan, width=64))

    print("\nper-worker phase split (fraction of makespan):")
    spans = worker_spans(result.trace)
    print(f"  {'worker':>8s} {'idle':>7s} {'fetch':>7s} {'compute':>8s}")
    for worker, (idle, fetch, compute) in sorted(
            phase_totals(spans, result.makespan).items()):
        print(f"  {worker:>8s} {idle:>6.0%} {fetch:>6.0%} "
              f"{compute:>7.0%}")

    bounds = compute_bounds(config)
    print(f"\nanalytic floors: bandwidth "
          f"{bounds.bandwidth_bound / 60:.1f} min, compute "
          f"{bounds.compute_bound / 60:.1f} min, critical task "
          f"{bounds.critical_task_bound / 60:.1f} min")
    print(f"achieved {result.makespan_minutes:.1f} min -> "
          f"{efficiency(result, bounds):.0%} of the tightest floor")
    print("\nReading: long '-' stretches = data-server queues and "
          "transfers (the paper's network-bound regime); '.' tails = "
          "stragglers at the end of the bag.")


if __name__ == "__main__":
    main()
