"""Legacy setup shim.

The offline environment has setuptools but no ``wheel`` package, so
PEP 517 editable installs fail with ``invalid command 'bdist_wheel'``.
This shim lets ``pip install -e . --no-use-pep517`` take the legacy
``setup.py develop`` path.  All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=[
        "repro",
        "repro.sim",
        "repro.net",
        "repro.grid",
        "repro.workload",
        "repro.core",
        "repro.exp",
        "repro.analysis",
    ],
    python_requires=">=3.9",
)
