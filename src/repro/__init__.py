"""repro — worker-centric scheduling for data-intensive grid applications.

A from-scratch reproduction of Ko, Morales & Gupta, *"New Worker-Centric
Scheduling Strategies for Data-Intensive Grid Applications"* (Middleware
2007), including every substrate the paper runs on:

* :mod:`repro.sim` — deterministic discrete-event simulation kernel.
* :mod:`repro.net` — flow-level network with max-min fair sharing and a
  Tiers-style hierarchical topology generator.
* :mod:`repro.grid` — sites, workers, data servers, global file server.
* :mod:`repro.workload` — synthetic Coadd workload plus generic
  Bag-of-Tasks generators.
* :mod:`repro.core` — the paper's worker-centric scheduling strategies and
  the task-centric storage-affinity baseline.
* :mod:`repro.exp` — experiment harness reproducing every table and
  figure of the paper's evaluation.
* :mod:`repro.analysis` — metrics, traces, and comparison helpers.

Quickstart::

    from repro import run_experiment, ExperimentConfig

    result = run_experiment(ExperimentConfig(scheduler="combined.2",
                                             num_tasks=500, seed=1))
    print(result.makespan, result.file_transfers)
"""

__version__ = "1.0.0"

__all__ = ["ExperimentConfig", "run_experiment", "run_averaged", "__version__"]

# Lazy attribute access (PEP 562): keeps `import repro` light and avoids
# importing the whole experiment stack for users who only want the kernel.
_LAZY = {
    "ExperimentConfig": ("repro.exp.config", "ExperimentConfig"),
    "run_experiment": ("repro.exp.runner", "run_experiment"),
    "run_averaged": ("repro.exp.runner", "run_averaged"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), attr)
