"""Analysis: trace bus, metric extraction, comparison, ASCII charts."""

from .bounds import MakespanBounds, compute_bounds, efficiency
from .eventlog import (Attempt, TaskTimeline, load_timelines,
                       task_timelines)
from .export import export_trace, import_trace, iter_trace
from .compare import (RankedAlgorithm, SampleSummary, format_ranking,
                      rank_algorithms, significantly_less, summarize,
                      welch_t)
from .plotting import ascii_chart, chart_sweep
from .metrics import (aggregate_sites, load_imbalance, site_task_counts,
                      summarize_sites, worker_utilization)
from .timeline import Span, gantt, phase_totals, worker_spans
from .trace import (BatchServed, FileEvicted, FileTransferred, TaskAssigned,
                    TaskCancelled, TaskCompleted, TaskStarted, TraceBus,
                    TraceRecord)

__all__ = [
    "Attempt",
    "BatchServed",
    "TaskTimeline",
    "load_timelines",
    "task_timelines",
    "MakespanBounds",
    "compute_bounds",
    "efficiency",
    "export_trace",
    "import_trace",
    "iter_trace",
    "RankedAlgorithm",
    "SampleSummary",
    "ascii_chart",
    "chart_sweep",
    "format_ranking",
    "rank_algorithms",
    "Span",
    "aggregate_sites",
    "gantt",
    "load_imbalance",
    "site_task_counts",
    "summarize_sites",
    "worker_utilization",
    "phase_totals",
    "significantly_less",
    "summarize",
    "worker_spans",
    "welch_t",
    "FileEvicted",
    "FileTransferred",
    "TaskAssigned",
    "TaskCancelled",
    "TaskCompleted",
    "TaskStarted",
    "TraceBus",
    "TraceRecord",
]
