"""Analytic makespan lower bounds.

How good is a scheduler in absolute terms?  Three cheap bounds below
any feasible schedule:

* **bandwidth bound** — every referenced file must cross the file
  server's uplink at least once: ``unique bytes / server uplink``.
  Per-site: each site must at least pull the files of the tasks it
  runs; with free placement the best case is a perfect partition, so
  ``unique bytes / (num_sites × site uplink)`` also holds when site
  uplinks are the bottleneck.
* **compute bound** — total flops over the grid's aggregate speed.
* **critical-task bound** — some task must run somewhere: the minimum
  over workers of (its batch transfer + compute) for the heaviest task
  is a weak but honest floor.

``efficiency(result)`` = bound / achieved — the fraction of the
theoretical floor a run reached (1.0 is unreachable in practice because
sharing is imperfect and transfers serialize).
"""

from __future__ import annotations

import typing
from dataclasses import dataclass
from typing import Optional

from ..grid.job import Job

if typing.TYPE_CHECKING:  # pragma: no cover - layering: exp imports
    # analysis (trace bus), so exp types are only imported lazily here.
    from ..exp.config import ExperimentConfig
    from ..exp.runner import ExperimentResult


@dataclass(frozen=True)
class MakespanBounds:
    """Lower bounds on any schedule of a (job, grid) pair."""

    bandwidth_bound: float
    compute_bound: float
    critical_task_bound: float

    @property
    def best(self) -> float:
        """The tightest (largest) of the bounds."""
        return max(self.bandwidth_bound, self.compute_bound,
                   self.critical_task_bound)


def compute_bounds(config: "ExperimentConfig",
                   job: Optional[Job] = None) -> MakespanBounds:
    """Analytic lower bounds for ``config``'s job on its grid."""
    from ..exp.runner import build_grid, build_job  # lazy: layering
    if job is None:
        job = build_job(config)
    grid = build_grid(config, job)
    topology = grid.network.topology
    catalog = job.catalog

    unique_bytes = catalog.total_bytes(job.referenced_files)
    server_route_bw = min(
        (link.bandwidth
         for link in topology._adjacency[grid.file_server.node]),
        default=float("inf"))
    site_bws = []
    for site in grid.sites:
        route = topology.route(grid.file_server.node, site.gateway)
        site_bws.append(route.bottleneck_bandwidth)
    aggregate_site_bw = sum(site_bws)
    bandwidth_bound = unique_bytes / min(server_route_bw,
                                         aggregate_site_bw)

    total_flops = sum(task.flops for task in job)
    aggregate_speed = sum(worker.flops_per_second
                          for worker in grid.workers)
    compute_bound = total_flops / aggregate_speed if aggregate_speed \
        else 0.0

    heaviest = max(job, key=lambda t: catalog.total_bytes(t.files))
    heaviest_bytes = catalog.total_bytes(heaviest.files)
    best_case = float("inf")
    for site, bw in zip(grid.sites, site_bws):
        fastest = max(w.flops_per_second for w in site.workers)
        best_case = min(best_case,
                        heaviest_bytes / bw + heaviest.flops / fastest)
    return MakespanBounds(bandwidth_bound=bandwidth_bound,
                          compute_bound=compute_bound,
                          critical_task_bound=best_case)


def efficiency(result: "ExperimentResult",
               bounds: Optional[MakespanBounds] = None) -> float:
    """Fraction of the analytic floor the run achieved, in (0, 1]."""
    if bounds is None:
        bounds = compute_bounds(result.config)
    if result.makespan <= 0:
        raise ValueError("result has no makespan")
    return bounds.best / result.makespan
