"""Statistical comparison of scheduling algorithms.

The paper reports per-point averages over 5 topologies without error
bars; for a reproduction it pays to know whether an ordering is stable.
This module provides small-sample summary statistics (mean, stddev,
Student-t confidence intervals) and a ranking report over
:class:`~repro.exp.runner.AveragedResult` cells.

Pure standard library — the t-table below covers the tiny sample sizes
simulation protocols use (2..30 runs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

#: Two-sided 95% Student-t critical values by degrees of freedom.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179,
    13: 2.160, 14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101,
    19: 2.093, 20: 2.086, 25: 2.060, 30: 2.042,
}


def _t_critical(dof: int) -> float:
    if dof <= 0:
        return float("inf")
    if dof in _T95:
        return _T95[dof]
    candidates = [k for k in _T95 if k <= dof]
    return _T95[max(candidates)] if candidates else 1.96


@dataclass(frozen=True)
class SampleSummary:
    """Mean, spread, and a 95% confidence half-width of one sample."""

    n: int
    mean: float
    stddev: float
    ci95: float

    @property
    def low(self) -> float:
        return self.mean - self.ci95

    @property
    def high(self) -> float:
        return self.mean + self.ci95


def summarize(values: Sequence[float]) -> SampleSummary:
    """Summary statistics of a (small) sample."""
    values = list(values)
    if not values:
        raise ValueError("cannot summarize an empty sample")
    n = len(values)
    mean = sum(values) / n
    if n == 1:
        return SampleSummary(n=1, mean=mean, stddev=0.0, ci95=0.0)
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    stddev = math.sqrt(variance)
    ci95 = _t_critical(n - 1) * stddev / math.sqrt(n)
    return SampleSummary(n=n, mean=mean, stddev=stddev, ci95=ci95)


def welch_t(a: Sequence[float], b: Sequence[float]) -> float:
    """Welch's t statistic between two samples (0 if degenerate)."""
    sa, sb = summarize(a), summarize(b)
    if sa.n < 2 or sb.n < 2:
        return 0.0
    se = math.sqrt(sa.stddev ** 2 / sa.n + sb.stddev ** 2 / sb.n)
    if se == 0:
        return 0.0
    return (sa.mean - sb.mean) / se


def significantly_less(a: Sequence[float], b: Sequence[float],
                       threshold: float = 2.0) -> bool:
    """Heuristic: sample ``a`` is clearly below ``b`` (|t| >= threshold).

    With the 5-seed protocol this approximates a 95% one-sided test;
    callers wanting rigor should run more seeds.
    """
    return welch_t(a, b) <= -abs(threshold)


@dataclass(frozen=True)
class RankedAlgorithm:
    """One row of a ranking report."""

    name: str
    summary: SampleSummary
    #: True when the CI does not overlap the best algorithm's CI.
    clearly_worse_than_best: bool


def rank_algorithms(samples: Dict[str, Sequence[float]]
                    ) -> List[RankedAlgorithm]:
    """Rank algorithms by mean (ascending: lower = better)."""
    if not samples:
        raise ValueError("no samples to rank")
    summaries = {name: summarize(values)
                 for name, values in samples.items()}
    ordered = sorted(summaries.items(), key=lambda kv: kv[1].mean)
    best = ordered[0][1]
    return [
        RankedAlgorithm(
            name=name,
            summary=summary,
            clearly_worse_than_best=summary.low > best.high,
        )
        for name, summary in ordered
    ]


def format_ranking(ranking: Sequence[RankedAlgorithm],
                   unit: str = "min") -> str:
    """Render a ranking as an aligned ASCII table."""
    lines = [f"{'algorithm':<20s} {'mean':>10s} {'±95% CI':>10s} "
             f"{'n':>3s}  note"]
    for row in ranking:
        note = "clearly worse than best" if row.clearly_worse_than_best \
            else ""
        lines.append(f"{row.name:<20s} {row.summary.mean:>10.1f} "
                     f"{row.summary.ci95:>10.1f} {row.summary.n:>3d}  "
                     f"{note}")
    return "\n".join(lines) + f"\n(units: {unit}; lower is better)"
