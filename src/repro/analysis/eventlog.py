"""Reconstruct per-task timelines from an observability event log.

``repro serve --event-log`` (server view) and ``repro load
--event-log`` (client view) both write the JSON-lines stream defined
in :mod:`repro.obs.events`.  This module folds that stream back into
per-task histories: every attempt (assign → complete, or assign →
lease-expire/requeue) a task went through, with timestamps, so you can
ask "how long did task 17 wait, where did it run, how often was it
retried" offline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from ..obs.events import iter_events

__all__ = ["Attempt", "TaskTimeline", "task_timelines",
           "load_timelines"]


@dataclass
class Attempt:
    """One assignment of a task to a worker, and how it ended."""

    worker: str
    site: Optional[int]
    assigned_at: float
    lease_id: Optional[int] = None
    ended_at: Optional[float] = None
    #: "completed", "lease-expired", "disconnect", ... — None while
    #: the attempt is still open (log ended mid-flight).
    outcome: Optional[str] = None

    @property
    def duration(self) -> Optional[float]:
        if self.ended_at is None:
            return None
        return self.ended_at - self.assigned_at


@dataclass
class TaskTimeline:
    """Everything the event log says about one task."""

    task_id: int
    job_id: Optional[int] = None
    submitted_at: Optional[float] = None
    attempts: List[Attempt] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        return any(a.outcome == "completed" for a in self.attempts)

    @property
    def completed_at(self) -> Optional[float]:
        for attempt in self.attempts:
            if attempt.outcome == "completed":
                return attempt.ended_at
        return None

    @property
    def retries(self) -> int:
        """Assignments beyond the first (0 for the happy path)."""
        return max(len(self.attempts) - 1, 0)

    @property
    def first_assigned_at(self) -> Optional[float]:
        return self.attempts[0].assigned_at if self.attempts else None

    @property
    def queue_wait(self) -> Optional[float]:
        """Submit → first assignment, when both ends were logged."""
        if self.submitted_at is None or not self.attempts:
            return None
        return self.attempts[0].assigned_at - self.submitted_at

    @property
    def turnaround(self) -> Optional[float]:
        """Submit → completion, when both ends were logged."""
        done = self.completed_at
        if self.submitted_at is None or done is None:
            return None
        return done - self.submitted_at

    def _open_attempt(self) -> Optional[Attempt]:
        if self.attempts and self.attempts[-1].outcome is None:
            return self.attempts[-1]
        return None


def task_timelines(events: Iterable[Dict]) -> Dict[int, TaskTimeline]:
    """Fold an event stream into ``{task_id: TaskTimeline}``.

    Understands the ``submit``/``assign``/``complete``/
    ``lease-expire``/``requeue`` records of
    :data:`repro.obs.events.EVENT_SCHEMAS`; other event types pass
    through untouched.  Reassignment after a lease expiry or
    disconnect shows up as a second :class:`Attempt` on the same
    timeline.
    """
    timelines: Dict[int, TaskTimeline] = {}

    def timeline(task_id: int) -> TaskTimeline:
        found = timelines.get(task_id)
        if found is None:
            found = timelines[task_id] = TaskTimeline(task_id)
        return found

    for event in events:
        kind = event["event"]
        ts = event["ts"]
        if kind == "submit":
            for task_id in event.get("task_ids", []):
                line = timeline(task_id)
                line.submitted_at = ts
                line.job_id = event.get("job_id", line.job_id)
        elif kind == "assign":
            line = timeline(event["task_id"])
            line.job_id = event.get("job_id", line.job_id)
            line.attempts.append(Attempt(
                worker=event["worker"], site=event.get("site"),
                assigned_at=ts, lease_id=event.get("lease_id")))
        elif kind == "complete":
            line = timeline(event["task_id"])
            attempt = line._open_attempt()
            if attempt is None:  # completion without a logged assign
                attempt = Attempt(worker=event["worker"], site=None,
                                  assigned_at=ts)
                line.attempts.append(attempt)
            attempt.ended_at = ts
            attempt.outcome = "completed"
        elif kind in ("lease-expire", "requeue"):
            line = timeline(event["task_id"])
            attempt = line._open_attempt()
            if attempt is not None:
                attempt.ended_at = ts
                if kind == "lease-expire":
                    attempt.outcome = "lease-expired"
                else:
                    attempt.outcome = event.get("reason", "requeued")
    return timelines


def load_timelines(path: str) -> Dict[int, TaskTimeline]:
    """Read a JSONL event-log file and reconstruct its timelines."""
    return task_timelines(iter_events(path))
