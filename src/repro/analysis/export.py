"""Trace export/import (JSON lines).

Kept traces can be large and are Python objects; exporting them as
JSONL makes runs inspectable with standard tooling (jq, pandas) and
lets analyses run long after the simulation object graph is gone.
Records round-trip exactly: every dataclass field is stored by name
with a ``type`` discriminator.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Iterator, Union

from . import trace as trace_module
from .trace import TraceBus, TraceRecord

#: type-name -> record class, discovered from the trace module.
RECORD_TYPES = {
    cls.__name__: cls
    for cls in vars(trace_module).values()
    if isinstance(cls, type) and issubclass(cls, TraceRecord)
    and cls is not TraceRecord
}


def record_to_dict(record: TraceRecord) -> dict:
    data = dataclasses.asdict(record)
    data["type"] = type(record).__name__
    return data


def record_from_dict(data: dict) -> TraceRecord:
    data = dict(data)
    type_name = data.pop("type", None)
    cls = RECORD_TYPES.get(type_name)
    if cls is None:
        raise ValueError(f"unknown trace record type {type_name!r}")
    return cls(**data)


def export_trace(trace: TraceBus, path: Union[str, Path]) -> int:
    """Write every kept record to ``path``; returns the record count."""
    path = Path(path)
    count = 0
    with path.open("w") as handle:
        for record in trace.records:
            handle.write(json.dumps(record_to_dict(record)) + "\n")
            count += 1
    return count


def iter_trace(path: Union[str, Path]) -> Iterator[TraceRecord]:
    """Stream records back from a :func:`export_trace` file."""
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield record_from_dict(json.loads(line))


def import_trace(path: Union[str, Path]) -> TraceBus:
    """Load a whole exported trace into a fresh :class:`TraceBus`."""
    bus = TraceBus(keep=True)
    for record in iter_trace(path):
        bus.emit(record)
    return bus
