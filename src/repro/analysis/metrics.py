"""Post-hoc metric extraction from traces and results.

Most headline numbers (makespan, transfer counts) come from counters on
the grid; this module derives the second-order statistics the paper
discusses — per-site service statistics (Table 3), queue-wait
distributions, worker utilization — from a kept trace or from collected
:class:`~repro.grid.data_server.DataServerStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..grid.data_server import DataServerStats
from .trace import (BatchServed, FileTransferred, TaskAssigned,
                    TaskCompleted, TaskStarted, TraceBus)


@dataclass(frozen=True)
class SiteServiceSummary:
    """Table 3's row: one data server's averaged service statistics."""

    site: int
    requests: int
    avg_waiting_time: float
    avg_transfer_time: float
    avg_transfers: float

    @property
    def avg_waiting_hours(self) -> float:
        return self.avg_waiting_time / 3600.0

    @property
    def avg_transfer_hours(self) -> float:
        return self.avg_transfer_time / 3600.0


def summarize_sites(stats: Sequence[DataServerStats]) -> List[SiteServiceSummary]:
    """One :class:`SiteServiceSummary` per data server."""
    return [
        SiteServiceSummary(
            site=site_id,
            requests=s.requests_served,
            avg_waiting_time=s.avg_waiting_time,
            avg_transfer_time=s.avg_transfer_time,
            avg_transfers=s.avg_transfers,
        )
        for site_id, s in enumerate(stats)
    ]


def aggregate_sites(stats: Sequence[DataServerStats]) -> SiteServiceSummary:
    """All sites pooled into one summary (request-weighted averages)."""
    requests = sum(s.requests_served for s in stats)
    if requests == 0:
        return SiteServiceSummary(site=-1, requests=0, avg_waiting_time=0.0,
                                  avg_transfer_time=0.0, avg_transfers=0.0)
    return SiteServiceSummary(
        site=-1,
        requests=requests,
        avg_waiting_time=sum(s.total_waiting_time for s in stats) / requests,
        avg_transfer_time=sum(s.total_transfer_time for s in stats) / requests,
        avg_transfers=sum(s.total_transfers for s in stats) / requests,
    )


def makespan_from_trace(trace: TraceBus) -> float:
    """Time of the last task completion in a kept trace."""
    completions = trace.of_type(TaskCompleted)
    if not completions:
        raise ValueError("trace holds no TaskCompleted records "
                         "(was keep_trace enabled?)")
    return max(record.time for record in completions)


def queue_waits(trace: TraceBus) -> Dict[int, float]:
    """Per task: time between (first) assignment and compute start.

    For task-centric scheduling this is the paper's
    assignment-to-execution latency; for worker-centric it is the batch
    fetch time, since assignment happens at request time.
    """
    assigned: Dict[int, float] = {}
    for record in trace.of_type(TaskAssigned):
        assigned.setdefault(record.task_id, record.time)
    waits: Dict[int, float] = {}
    for record in trace.of_type(TaskStarted):
        if record.task_id in assigned and record.task_id not in waits:
            waits[record.task_id] = record.time - assigned[record.task_id]
    return waits


def transfers_by_site(trace: TraceBus) -> Dict[int, int]:
    """Number of file transfers that landed at each site."""
    counts: Dict[int, int] = {}
    for record in trace.of_type(FileTransferred):
        counts[record.site] = counts.get(record.site, 0) + 1
    return counts


def site_batch_records(trace: TraceBus,
                       site: int) -> List[BatchServed]:
    """All served-batch records of one site, in service order."""
    return [r for r in trace.of_type(BatchServed) if r.site == site]


def site_task_counts(trace: TraceBus,
                     completed_only: bool = True) -> Dict[int, int]:
    """Tasks per site, from completions (or first assignments).

    With ``completed_only`` False, counts *initial assignments* instead
    — for push schedulers this exposes the paper's "unbalanced task
    assignments" problem before replication papers over it.
    """
    counts: Dict[int, int] = {}
    if completed_only:
        seen = set()
        for record in trace.of_type(TaskCompleted):
            if record.task_id not in seen:
                seen.add(record.task_id)
                counts[record.site] = counts.get(record.site, 0) + 1
    else:
        seen = set()
        for record in trace.of_type(TaskAssigned):
            if record.task_id not in seen:
                seen.add(record.task_id)
                counts[record.site] = counts.get(record.site, 0) + 1
    return counts


def load_imbalance(counts: Dict[int, int],
                   num_sites: Optional[int] = None) -> float:
    """Peak-to-mean ratio of per-site task counts (1.0 = perfectly even).

    ``num_sites`` includes sites that got nothing (otherwise only sites
    present in ``counts`` enter the mean).
    """
    if not counts:
        raise ValueError("no task counts")
    total = sum(counts.values())
    sites = num_sites if num_sites is not None else len(counts)
    if sites <= 0:
        raise ValueError("num_sites must be positive")
    mean = total / sites
    return max(counts.values()) / mean


def worker_utilization(trace: TraceBus, makespan: float) -> Dict[str, float]:
    """Fraction of the makespan each worker spent in fetch+compute.

    Computed from TaskStarted/TaskCompleted pairs; replicas cancelled
    mid-flight contribute nothing (their time was wasted, which is the
    point of measuring this).
    """
    if makespan <= 0:
        raise ValueError("makespan must be positive")
    started: Dict[Tuple[str, int], float] = {}
    busy: Dict[str, float] = {}
    for record in trace.of_type(TaskStarted):
        started[(record.worker, record.task_id)] = record.time
    for record in trace.of_type(TaskCompleted):
        key = (record.worker, record.task_id)
        if key in started:
            busy[record.worker] = (busy.get(record.worker, 0.0)
                                   + record.time - started.pop(key))
    return {worker: total / makespan for worker, total in busy.items()}
