"""ASCII line charts for sweep results.

The paper's figures are line plots; for a terminal-only environment we
render them as character rasters — one mark per algorithm, shared axes,
a legend — so ``python -m repro figures --plot`` and the examples can
show the *shape* of a result, not just its table.

Pure string manipulation; no dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: Marks assigned to series in order.
SERIES_MARKS = "*o+x#@%&"


def _scale(value: float, low: float, high: float, size: int) -> int:
    """Map value in [low, high] to a raster coordinate in [0, size-1]."""
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return min(size - 1, max(0, round(position * (size - 1))))


def ascii_chart(series: Dict[str, Sequence[Tuple[float, float]]],
                width: int = 64, height: int = 18,
                title: Optional[str] = None,
                y_label: str = "", x_label: str = "") -> str:
    """Render ``{name: [(x, y), ...]}`` as an ASCII chart.

    Points are plotted with per-series marks and joined by linear
    interpolation along x.  Collisions show the later series' mark.
    """
    if not series:
        raise ValueError("nothing to plot")
    if width < 16 or height < 6:
        raise ValueError("raster too small to be legible")
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("every series is empty")
    xs = [x for x, _y in points]
    ys = [y for _x, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if y_low == y_high:
        y_low, y_high = y_low - 1.0, y_high + 1.0

    raster = [[" "] * width for _ in range(height)]

    def plot(col: int, row: int, mark: str) -> None:
        raster[height - 1 - row][col] = mark

    legend: List[str] = []
    for index, (name, pts) in enumerate(series.items()):
        mark = SERIES_MARKS[index % len(SERIES_MARKS)]
        legend.append(f"{mark} {name}")
        ordered = sorted(pts)
        # interpolate along the x raster between consecutive points
        for (x0, y0), (x1, y1) in zip(ordered, ordered[1:]):
            c0 = _scale(x0, x_low, x_high, width)
            c1 = _scale(x1, x_low, x_high, width)
            for col in range(c0, c1 + 1):
                if c1 == c0:
                    y = y1
                else:
                    fraction = (col - c0) / (c1 - c0)
                    y = y0 + fraction * (y1 - y0)
                plot(col, _scale(y, y_low, y_high, height), mark)
        for x, y in ordered:  # end markers win over line fills
            plot(_scale(x, x_low, x_high, width),
                 _scale(y, y_low, y_high, height), mark)

    gutter = max(len(f"{y_high:.0f}"), len(f"{y_low:.0f}"))
    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_high:.0f}".rjust(gutter)
    bottom_label = f"{y_low:.0f}".rjust(gutter)
    for row_index, row in enumerate(raster):
        if row_index == 0:
            label = top_label
        elif row_index == height - 1:
            label = bottom_label
        else:
            label = " " * gutter
        lines.append(f"{label} |{''.join(row)}")
    axis = " " * gutter + " +" + "-" * width
    lines.append(axis)
    x_axis = (f"{x_low:g}".ljust(width // 2)
              + f"{x_high:g}".rjust(width - width // 2))
    lines.append(" " * (gutter + 2) + x_axis)
    if x_label or y_label:
        lines.append(" " * (gutter + 2)
                     + f"x: {x_label}   y: {y_label}".strip())
    lines.append("  ".join(legend))
    return "\n".join(lines)


def chart_sweep(sweep, metric: str = "makespan_minutes",
                schedulers: Optional[Sequence[str]] = None,
                **kwargs) -> str:
    """ASCII chart of a :class:`~repro.exp.sweep.SweepResult` metric."""
    names = list(schedulers) if schedulers else list(sweep.schedulers)
    series = {
        name: [(float(x), float(y)) for x, y in sweep.series(name, metric)]
        for name in names
    }
    kwargs.setdefault("x_label", sweep.field)
    kwargs.setdefault("y_label", metric)
    return ascii_chart(series, **kwargs)
