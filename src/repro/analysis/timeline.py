"""Worker activity timelines (ASCII Gantt) from kept traces.

Reconstructs, per worker, the intervals spent in each phase:

* ``fetch`` — between assignment and compute start (waiting at the data
  server + transfer time),
* ``compute`` — between start and completion,
* cancelled work shows as ``fetch`` that never reaches ``compute``.

and renders them as a character Gantt chart, one row per worker.  A
makespan dominated by ``.`` (idle) rows pinpoints stragglers; long
``-`` (fetch) stretches pinpoint data-server queues — the two effects
the paper's Figure 6 / Table 3 discussion revolves around.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .trace import (TaskAssigned, TaskCancelled, TaskCompleted,
                    TaskStarted, TraceBus)

#: Phase glyphs.
IDLE, FETCH, COMPUTE = ".", "-", "#"


@dataclass(frozen=True)
class Span:
    """One contiguous activity interval on a worker."""

    task_id: int
    phase: str           #: "fetch" or "compute"
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def worker_spans(trace: TraceBus) -> Dict[str, List[Span]]:
    """Per-worker activity spans, reconstructed from a kept trace."""
    spans: Dict[str, List[Span]] = {}
    fetch_start: Dict[Tuple[str, int], float] = {}
    compute_start: Dict[Tuple[str, int], float] = {}
    for record in trace.records:
        if isinstance(record, TaskAssigned):
            fetch_start[(record.worker, record.task_id)] = record.time
        elif isinstance(record, TaskStarted):
            key = (record.worker, record.task_id)
            begin = fetch_start.pop(key, None)
            if begin is not None and record.time > begin:
                spans.setdefault(record.worker, []).append(
                    Span(record.task_id, "fetch", begin, record.time))
            compute_start[key] = record.time
        elif isinstance(record, TaskCompleted):
            key = (record.worker, record.task_id)
            begin = compute_start.pop(key, None)
            if begin is not None:
                spans.setdefault(record.worker, []).append(
                    Span(record.task_id, "compute", begin, record.time))
        elif isinstance(record, TaskCancelled):
            key = (record.worker, record.task_id)
            begin = fetch_start.pop(key, None)
            if begin is None:
                begin = compute_start.pop(key, None)
            if begin is not None and record.time > begin:
                spans.setdefault(record.worker, []).append(
                    Span(record.task_id, "fetch", begin, record.time))
    for worker_spans_list in spans.values():
        worker_spans_list.sort(key=lambda span: span.start)
    return spans


def phase_totals(spans: Dict[str, List[Span]],
                 makespan: float) -> Dict[str, Tuple[float, float, float]]:
    """Per worker: (idle, fetch, compute) fractions of the makespan."""
    if makespan <= 0:
        raise ValueError("makespan must be positive")
    out: Dict[str, Tuple[float, float, float]] = {}
    for worker, intervals in spans.items():
        fetch = sum(s.duration for s in intervals if s.phase == "fetch")
        compute = sum(s.duration for s in intervals
                      if s.phase == "compute")
        idle = max(0.0, makespan - fetch - compute)
        out[worker] = (idle / makespan, fetch / makespan,
                       compute / makespan)
    return out


def gantt(trace: TraceBus, makespan: Optional[float] = None,
          width: int = 72) -> str:
    """Render the whole run as an ASCII Gantt chart.

    ``#`` compute, ``-`` fetch (queueing + transfers), ``.`` idle.
    """
    if width < 10:
        raise ValueError("width too small")
    spans = worker_spans(trace)
    if not spans:
        raise ValueError("trace holds no task records "
                         "(was keep_trace enabled?)")
    if makespan is None:
        makespan = max(span.end for intervals in spans.values()
                       for span in intervals)
    lines: List[str] = []
    for worker in sorted(spans):
        row = [IDLE] * width
        for span in spans[worker]:
            first = int(span.start / makespan * (width - 1))
            last = int(span.end / makespan * (width - 1))
            glyph = COMPUTE if span.phase == "compute" else FETCH
            for column in range(first, last + 1):
                # compute wins collisions (it is the useful work)
                if row[column] != COMPUTE:
                    row[column] = glyph
        lines.append(f"{worker:>8s} |{''.join(row)}|")
    lines.append(f"{'':>8s}  0{'makespan':>{width - 1}s}")
    lines.append(f"{'':>8s}  {COMPUTE} compute   {FETCH} fetch/wait   "
                 f"{IDLE} idle")
    return "\n".join(lines)
