"""Event tracing for simulations.

A :class:`TraceBus` is a lightweight publish/subscribe channel the grid
components emit structured records into.  Records are plain frozen
dataclasses with a ``time`` field; analysis code filters by type.

Recording everything is optional — the bus always feeds registered
listeners, but only stores records when ``keep`` is true, so large
experiment sweeps can run with counters only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Type, TypeVar


@dataclass(frozen=True)
class TraceRecord:
    """Base class for every trace record."""

    time: float


@dataclass(frozen=True)
class TaskAssigned(TraceRecord):
    """Scheduler handed a task to a worker (or queued it, task-centric)."""

    task_id: int
    worker: str
    site: int


@dataclass(frozen=True)
class TaskStarted(TraceRecord):
    """All inputs local; compute began."""

    task_id: int
    worker: str
    site: int


@dataclass(frozen=True)
class TaskCompleted(TraceRecord):
    task_id: int
    worker: str
    site: int


@dataclass(frozen=True)
class TaskCancelled(TraceRecord):
    """A replica was cancelled because another copy finished first."""

    task_id: int
    worker: str
    site: int


@dataclass(frozen=True)
class FileTransferred(TraceRecord):
    """One file arrived at a site's data server from the file server."""

    file_id: int
    site: int
    size: float
    duration: float


@dataclass(frozen=True)
class FileEvicted(TraceRecord):
    file_id: int
    site: int


@dataclass(frozen=True)
class BatchServed(TraceRecord):
    """A data server finished serving one batch file request."""

    site: int
    worker: str
    num_files: int
    num_transfers: int
    waiting_time: float
    transfer_time: float
    cancelled: bool


R = TypeVar("R", bound=TraceRecord)
Listener = Callable[[TraceRecord], None]


class TraceBus:
    """Collects and dispatches trace records.

    Parameters
    ----------
    keep:
        When true (default) records are stored in :attr:`records` for
        post-hoc analysis; listeners fire either way.
    """

    def __init__(self, keep: bool = True):
        self.keep = keep
        self.records: List[TraceRecord] = []
        self._listeners: Dict[Type[TraceRecord], List[Listener]] = {}
        self.counts: Dict[str, int] = {}

    def subscribe(self, record_type: Type[R],
                  listener: Callable[[R], None]) -> None:
        """Invoke ``listener`` for every record of ``record_type``."""
        self._listeners.setdefault(record_type, []).append(listener)

    def emit(self, record: TraceRecord) -> None:
        """Publish one record."""
        name = type(record).__name__
        self.counts[name] = self.counts.get(name, 0) + 1
        if self.keep:
            self.records.append(record)
        for listener in self._listeners.get(type(record), ()):
            listener(record)

    def of_type(self, record_type: Type[R]) -> List[R]:
        """All stored records of the given type, in emission order."""
        return [r for r in self.records if isinstance(r, record_type)]

    def count(self, record_type: Type[TraceRecord]) -> int:
        """Number of emitted records of ``record_type`` (even if unkept)."""
        return self.counts.get(record_type.__name__, 0)
