"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``       one experiment, headline metrics to stdout.
``compare``   several schedulers on one config, ranked with CIs.
``sweep``     sweep one config field, table to stdout.
``workload``  generate + characterize a workload (Table 2 block),
              optionally saving it to JSON.
``figures``   regenerate one of the paper's figures/tables by name.
``reproduce`` regenerate every table and figure into one report.
``serve``     run the live scheduler daemon (protocol v3 over TCP:
              JSON lines with negotiated binary framing),
              optionally with an HTTP metrics endpoint, a JSONL
              event log, and — with ``--state-dir`` — WAL +
              snapshot durability (one cluster shard).
``cluster``   run the sharded tier: N durable shards, the redirect
              router, and a supervisor restarting crashed shards.
``load``      replay a generated workload against a running daemon
              (``--cluster`` drives a router instead).
``top``       live terminal view of one daemon's /stats.json, or of
              several endpoints merged into a cluster view.

Examples
--------
::

    python -m repro run --scheduler combined.2 --tasks 600
    python -m repro compare --tasks 400 --schedulers rest.2 workqueue
    python -m repro sweep --field capacity_files --values 300 600 1500
    python -m repro workload --tasks 6000 --out coadd.json
    python -m repro figures --name fig4 --scale small
    python -m repro serve --port 7077 --metric combined --n 2 \
        --metrics-port 9090 --event-log events.jsonl
    python -m repro load --port 7077 --tasks 500 --sites 4 --workers 2 \
        --batch 8 --aggregate-deltas
    python -m repro top --port 9090 --once
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List, Optional, Sequence

from .analysis.compare import format_ranking, rank_algorithms
from .analysis.plotting import chart_sweep
from .core.registry import PAPER_ALGORITHMS, available_schedulers
from .exp import figures as figure_defs
from .exp.config import ExperimentConfig
from .exp.report import format_sweep_table, format_table3
from .exp.runner import build_job, run_averaged, run_experiment
from .exp.sweep import run_sweep
from .workload.stats import characterize, reference_cdf_series
from .workload.traces import save_job


def _add_verbosity_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="more logging (-v INFO is default for "
                             "serve; -vv DEBUG)")
    parser.add_argument("-q", "--quiet", action="count", default=0,
                        help="less logging (-q WARNING, -qq ERROR)")


def _configure_logging(args: argparse.Namespace,
                       default_level: int = logging.INFO) -> None:
    """Map -v/-q counts onto a level for the ``repro`` logger tree."""
    steps = args.quiet - args.verbose
    level = min(max(default_level + 10 * steps, logging.DEBUG),
                logging.ERROR)
    logging.basicConfig(
        level=level, stream=sys.stderr,
        format="%(asctime)s %(levelname)-7s %(name)s: %(message)s")
    logging.getLogger("repro").setLevel(level)


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scheduler", default="combined.2",
                        help="scheduler registry name")
    parser.add_argument("--tasks", type=int, default=600)
    parser.add_argument("--sites", type=int, default=10)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--capacity", type=int, default=600)
    parser.add_argument("--file-size-mb", type=float, default=25.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workload", default="coadd",
                        choices=["coadd", "uniform", "zipf", "window"])
    parser.add_argument("--task-order", default="shuffled",
                        choices=["natural", "shuffled", "striped"])


def _config_from(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        scheduler=args.scheduler,
        num_tasks=args.tasks,
        num_sites=args.sites,
        workers_per_site=args.workers,
        capacity_files=args.capacity,
        file_size_mb=args.file_size_mb,
        seed=args.seed,
        workload=args.workload,
        task_order=args.task_order,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    config = _config_from(args)
    result = run_experiment(config)
    if args.save:
        from .exp.store import ResultStore
        ResultStore(args.save).append(result)
    print(f"scheduler        : {config.scheduler}")
    print(f"makespan         : {result.makespan_minutes:.1f} min "
          f"({result.makespan:.0f} s)")
    print(f"file transfers   : {result.file_transfers} total, "
          f"{result.file_transfers / config.num_sites:.1f} per server")
    print(f"bytes transferred: {result.bytes_transferred / 2**30:.2f} GiB")
    print(f"evictions        : {result.evictions}")
    print(f"tasks cancelled  : {result.tasks_cancelled}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    config = _config_from(args)
    seeds = tuple(range(args.topologies))
    samples = {}
    for name in args.schedulers:
        averaged = run_averaged(config.with_changes(scheduler=name),
                                topology_seeds=seeds)
        samples[name] = [run.makespan_minutes for run in averaged.runs]
        print(f"  ran {name}: mean "
              f"{averaged.makespan_minutes:.1f} min", file=sys.stderr)
    print(format_ranking(rank_algorithms(samples), unit="min"))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    config = _config_from(args)
    values: List[object] = []
    for raw in args.values:
        try:
            values.append(int(raw))
        except ValueError:
            try:
                values.append(float(raw))
            except ValueError:
                values.append(raw)
    sweep = run_sweep(config, args.field, values, args.schedulers,
                      topology_seeds=tuple(range(args.topologies)))
    print(format_sweep_table(
        sweep, metric=args.metric,
        title=f"{args.metric} vs {args.field}"))
    if args.plot:
        print()
        print(chart_sweep(sweep, metric=args.metric))
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    config = _config_from(args)
    job = build_job(config)
    stats = characterize(job)
    print(stats.as_table())
    print("\nreference CDF (x = min #references, y = % of files):")
    for refs, percent in reference_cdf_series(stats):
        print(f"  >= {refs:2d}: {percent:5.1f}%")
    if args.out:
        save_job(job, args.out)
        print(f"\nworkload written to {args.out}")
    return 0


_FIGURES = {
    "table2": lambda scale: _print_table2(scale),
    "fig4": lambda scale: print(format_sweep_table(
        figure_defs.fig4_fig5(scale), metric="makespan_minutes",
        title="Figure 4: makespan (minutes) vs capacity")),
    "fig5": lambda scale: _print_fig5(scale),
    "fig6": lambda scale: print(format_sweep_table(
        figure_defs.fig6(scale), metric="makespan_minutes",
        title="Figure 6: makespan (minutes) vs workers per site")),
    "table3": lambda scale: print(format_table3(
        figure_defs.table3(scale))),
    "fig7": lambda scale: print(format_sweep_table(
        figure_defs.fig7(scale), metric="makespan_minutes",
        title="Figure 7: makespan (minutes) vs number of sites")),
    "fig8": lambda scale: print(format_sweep_table(
        figure_defs.fig8(scale), metric="makespan_minutes",
        title="Figure 8: makespan (minutes) vs file size (MB)")),
}


def _print_table2(scale) -> None:
    stats = figure_defs.table2_fig3(scale)
    print(stats.as_table())


def _print_fig5(scale) -> None:
    sweep = figure_defs.fig4_fig5(scale)
    print(format_sweep_table(
        sweep,
        transform=lambda cell: cell.file_transfers / sweep.base.num_sites,
        title="Figure 5: # file transfers per data server vs capacity"))


def _cmd_figures(args: argparse.Namespace) -> int:
    scale = figure_defs.SCALES[args.scale]
    _FIGURES[args.name](scale)
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from .exp.reproduce import reproduce_all
    scale = figure_defs.SCALES[args.scale]
    report = reproduce_all(
        scale, include_ablations=args.ablations,
        progress=lambda msg: print(f"  {msg}", file=sys.stderr))
    if args.out:
        from pathlib import Path
        Path(args.out).write_text(report)
        print(f"report written to {args.out}")
    else:
        print(report)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import contextlib
    import json as json_module
    import os

    from .obs.events import EventLog
    from .obs.http import ObsHttpServer
    from .obs.trace import DecisionTracer
    from .serve import protocol
    from .serve.server import SchedulerServer, install_uvloop
    from .serve.service import SchedulerService
    from .serve.stats import format_stats

    _configure_logging(args)
    if args.uvloop and not install_uvloop():
        print("uvloop requested but not importable; staying on the "
              "stdlib event loop", file=sys.stderr)
    if args.state_dir and args.event_log:
        print("--event-log conflicts with --state-dir (the shard's "
              "WAL owns the event log; it lives in the state "
              "directory)", file=sys.stderr)
        return 2
    # Stealing needs peers: a lone shard has nobody to steal from,
    # and enabling the watermark would still change idle-pull
    # behaviour (parking).  Keep single-shard runs bit-identical to
    # stealing-off by dropping the flag.
    steal_watermark = args.steal_watermark \
        if args.shard_count > 1 else None

    async def main() -> None:
        tracer = DecisionTracer()
        events = None
        durability = None
        if args.state_dir:
            from .cluster.shard import open_shard
            durability = open_shard(
                args.state_dir, metric=args.metric, n=args.n,
                seed=args.seed, lease_ttl=args.lease_ttl,
                shard_index=args.shard_index,
                shard_count=args.shard_count,
                snapshot_interval=args.snapshot_interval,
                fast_path=args.kernel == "fast", tracer=tracer,
                admission_watermark=args.admission_watermark,
                admission_retry_after=args.admission_retry_after,
                replicate_tail=args.replicate_stragglers,
                max_replicas=args.max_replicas,
                steal_watermark=steal_watermark)
            service = durability.service
            report = durability.report
            print(f"repro-serve shard {args.shard_index}/"
                  f"{args.shard_count} recovered from "
                  f"{args.state_dir}: snapshot_seq="
                  f"{report['snapshot_seq']}, replayed "
                  f"{report['replayed']} WAL record(s), WAL resumes "
                  f"at seq {report['next_seq']}", file=sys.stderr)
        else:
            events = EventLog(path=args.event_log) if args.event_log \
                else None
            service = SchedulerService(
                metric=args.metric, n=args.n, seed=args.seed,
                lease_ttl=args.lease_ttl, events=events, tracer=tracer,
                fast_path=args.kernel == "fast",
                id_start=args.shard_index,
                id_stride=args.shard_count,
                admission_watermark=args.admission_watermark,
                admission_retry_after=args.admission_retry_after,
                replicate_tail=args.replicate_stragglers,
                max_replicas=args.max_replicas,
                steal_watermark=steal_watermark)
        server = SchedulerServer(service, host=args.host,
                                 port=args.port,
                                 stats_interval=args.stats_interval,
                                 codecs=protocol.codec_offers(
                                     args.codec))
        await server.start()
        obs_server = None
        if args.metrics_port is not None:

            def stats_json():
                snapshot = service.stats_snapshot()
                snapshot["jobs"] = service.jobs_overview()
                if durability is not None:
                    snapshot["shard"] = durability.describe()
                return snapshot

            obs_server = ObsHttpServer(
                registry=service.stats.registry, host=args.host,
                port=args.metrics_port,
                json_routes={
                    "/stats.json": stats_json,
                    "/trace.json": lambda: {"spans": tracer.spans()},
                },
                health=lambda: {
                    "status": "draining" if service.draining else "ok",
                    "queue_depth": service.queue_depth,
                    "outstanding": service.outstanding})
            await obs_server.start()
        if args.port_file:
            # The supervisor (and colliding-port-free CI) handshake:
            # report the *bound* ports, atomically.
            ports = {"port": server.port,
                     "metrics_port": (obs_server.port
                                      if obs_server else None)}
            tmp_path = args.port_file + ".tmp"
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json_module.dump(ports, handle)
            os.replace(tmp_path, args.port_file)
        print(f"repro-serve listening on {server.host}:{server.port} "
              f"(protocol v3, codecs={','.join(server.codecs)}, "
              f"metric={args.metric}, n={args.n}, "
              f"lease_ttl={args.lease_ttl:g}s)", file=sys.stderr)
        if obs_server is not None:
            print(f"metrics endpoint on {obs_server.url}/metrics",
                  file=sys.stderr)
        snapshotter = None
        if durability is not None:
            snapshotter = asyncio.get_running_loop().create_task(
                durability.snapshot_loop())
        stealer = None
        if service.steal_enabled and args.cluster_file:
            from .cluster.steal import StealManager
            stealer = StealManager(service, args.shard_index,
                                   cluster_file=args.cluster_file,
                                   codec=args.codec)
            await stealer.start()
            print(f"work stealing armed: watermark "
                  f"{service.steal_watermark}, topology from "
                  f"{args.cluster_file}", file=sys.stderr)
        try:
            await server.serve_until_drained()
        finally:
            if stealer is not None:
                await stealer.stop()
            if snapshotter is not None:
                snapshotter.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await snapshotter
            if obs_server is not None:
                await obs_server.stop()
            await server.stop()
            if durability is not None:
                durability.close()  # final snapshot + WAL fsync
            if events is not None:
                events.close()
        print("drained; final stats:", file=sys.stderr)
        print(format_stats(service.stats_snapshot()))

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("interrupted", file=sys.stderr)
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    import asyncio

    from .cluster.supervisor import ClusterSupervisor

    _configure_logging(args)

    async def main() -> int:
        supervisor = ClusterSupervisor(
            shards=args.shards, state_root=args.state_root,
            host=args.host, router_port=args.port,
            metric=args.metric, n=args.n, seed=args.seed,
            lease_ttl=args.lease_ttl,
            snapshot_interval=args.snapshot_interval,
            kernel=args.kernel, metrics_port=args.metrics_port,
            codec=args.codec,
            steal_watermark=args.steal_watermark)
        await supervisor.start()
        print(f"repro-cluster router on "
              f"{supervisor.host}:{supervisor.router_port} over "
              f"{args.shards} shard(s); topology in "
              f"{supervisor.cluster_file}", file=sys.stderr)
        if supervisor.metrics_port is not None:
            print(f"aggregated stats on http://{supervisor.host}:"
                  f"{supervisor.metrics_port}/stats.json",
                  file=sys.stderr)
        try:
            await supervisor.wait()
        finally:
            await supervisor.stop()
        print("cluster drained", file=sys.stderr)
        return 0

    try:
        return asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("interrupted", file=sys.stderr)
        return 0


def _cmd_load(args: argparse.Namespace) -> int:
    import asyncio

    from .serve.loadgen import run_load
    from .serve.server import install_uvloop
    from .serve.stats import format_stats

    if args.uvloop and not install_uvloop():
        print("uvloop requested but not importable; staying on the "
              "stdlib event loop", file=sys.stderr)
    config = _config_from(args)
    job = build_job(config)
    workers = config.num_sites * config.workers_per_site
    if args.cluster:
        return _run_cluster_load(args, config, job, workers)
    report = asyncio.run(run_load(
        args.host, args.port, job, workers=workers,
        sites=config.num_sites, capacity_files=config.capacity_files,
        flops_per_sec=args.flops_per_sec,
        seconds_per_file=args.seconds_per_file,
        drain=not args.no_drain,
        event_log=args.event_log,
        batch=args.batch,
        aggregate_deltas=args.aggregate_deltas,
        delta_flush_interval=args.delta_flush_interval,
        codec=args.codec))
    print(f"job id           : {report['job_id']} "
          f"(done={report['job_status']['done']})")
    print(f"tasks submitted  : {report['tasks_submitted']}")
    print(f"tasks completed  : {report['tasks_done']} "
          f"by {workers} workers over {config.num_sites} sites "
          f"(batch={args.batch})")
    print(f"files fetched    : {report['files_fetched']}")
    if args.aggregate_deltas:
        aggregation = report["delta_aggregation"]
        print(f"delta dedup      : "
              f"{aggregation['duplicates_suppressed']} duplicate "
              f"op(s) suppressed across "
              f"{len(aggregation['sites'])} site aggregator(s)")
    if args.event_log:
        print(f"event log        : {args.event_log}")
    print("server stats:")
    print(format_stats(report["stats"]))
    audit = report["audit"]
    if not audit["clean"]:
        print(f"AUDIT FAILED: lost={audit['lost']} "
              f"double_counted={audit['double_counted']} "
              f"(submitted={audit['tasks_submitted']}, "
              f"completed={audit['completed']})", file=sys.stderr)
        return 1
    return 0


def _run_cluster_load(args: argparse.Namespace, config, job,
                      workers: int) -> int:
    import asyncio

    from .cluster.loadgen import run_cluster_load
    from .serve.stats import format_stats

    tasks = list(job)
    num_jobs = max(1, min(args.jobs, len(tasks)))
    # Contiguous split: several jobs land round-robin on the shards.
    per_job = (len(tasks) + num_jobs - 1) // num_jobs
    jobs = [tasks[start:start + per_job]
            for start in range(0, len(tasks), per_job)]
    report = asyncio.run(run_cluster_load(
        args.host, args.port, jobs, workers=workers,
        sites=config.num_sites, capacity_files=config.capacity_files,
        flops_per_sec=args.flops_per_sec,
        seconds_per_file=args.seconds_per_file,
        drain=not args.no_drain,
        event_log=args.event_log,
        batch=args.batch,
        codec=args.codec))
    print(f"cluster          : {report['shard_count']} shard(s), "
          f"{len(report['jobs'])} job(s)")
    for entry in report["jobs"]:
        print(f"job {entry['job_id']:>4}         : "
              f"{entry['status']['completed']}"
              f"/{entry['tasks_submitted']} "
              f"(done={entry['status']['done']})")
    print(f"tasks submitted  : {report['tasks_submitted']}")
    print(f"tasks completed  : {report['tasks_done']} "
          f"by {workers} workers over {config.num_sites} sites "
          f"(batch={args.batch})")
    print(f"files fetched    : {report['files_fetched']}")
    if report["reconnects"]:
        print(f"reconnects       : {report['reconnects']} (workers "
              f"resumed across shard restarts)")
    if args.event_log:
        print(f"event log        : {args.event_log}")
    print("aggregated cluster stats:")
    print(format_stats(report["stats"]))
    # The shard-side per-job counters are authoritative: a worker may
    # lose the ACK for a completion the WAL durably recorded, so the
    # client-side tally can undercount across a crash — the audit's
    # ``lost`` uses the shard counters, and ``double_counted`` only
    # fires when workers collected MORE acks than tasks exist.
    audit = report["audit"]
    if audit["lost"] or audit["double_counted"]:
        print(f"AUDIT FAILED: lost={audit['lost']} "
              f"double_counted={audit['double_counted']} "
              f"(submitted={audit['tasks_submitted']}, "
              f"completed={audit['completed']})", file=sys.stderr)
        return 1
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    import asyncio

    from .scenario import SCENARIOS, get_scenario, run_scenario
    from .scenario.summary import (compare_summaries, format_summary,
                                   load_summary, validate_summary)

    if args.scenario_command == "list":
        width = max(len(name) for name in SCENARIOS)
        for name in sorted(SCENARIOS):
            print(f"{name:<{width}}  {SCENARIOS[name].description}")
        return 0

    if args.scenario_command == "compare":
        baseline = load_summary(args.baseline)
        candidate = load_summary(args.candidate)
        problems = [f"baseline: {p}" for p in
                    validate_summary(baseline)]
        problems += [f"candidate: {p}" for p in
                     validate_summary(candidate)]
        if problems:
            for problem in problems:
                print(f"schema violation — {problem}", file=sys.stderr)
            return 2
        print(compare_summaries(baseline, candidate))
        return 0

    # run
    _configure_logging(args, default_level=logging.WARNING)
    names = sorted(SCENARIOS) if args.all else args.names
    if not names:
        print("repro scenario run: name a scenario or pass --all "
              f"(built-ins: {', '.join(sorted(SCENARIOS))})",
              file=sys.stderr)
        return 2
    failures: List[str] = []
    for name in names:
        try:
            scenario = get_scenario(name)
        except KeyError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        summary = asyncio.run(run_scenario(scenario, args.out_dir,
                                           quick=args.quick))
        print(format_summary(summary))
        print(f"  summary: {summary.get('summary_path')}")
        problems = validate_summary(summary)
        for problem in problems:
            print(f"  schema violation — {problem}", file=sys.stderr)
        if problems or not summary.get("passed"):
            failures.append(name)
    if failures:
        print(f"FAILED scenario(s): {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from .obs.top import run_cluster_top, run_top

    if args.endpoints:
        urls = [f"http://{endpoint}/stats.json"
                for endpoint in args.endpoints]
        return run_cluster_top(urls, interval=args.interval,
                               iterations=1 if args.once else None,
                               clear=not args.once)
    if args.port is None:
        print("repro top: need --port or host:port endpoint(s)",
              file=sys.stderr)
        return 2
    url = f"http://{args.host}:{args.port}/stats.json"
    return run_top(url, interval=args.interval,
                   iterations=1 if args.once else None,
                   clear=not args.once)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Worker-centric grid scheduling reproduction "
                    "(Ko et al., Middleware 2007)")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run one experiment")
    _add_config_arguments(run_parser)
    run_parser.add_argument("--save", default=None,
                            help="append the result to this JSONL store")
    run_parser.set_defaults(func=_cmd_run)

    compare_parser = sub.add_parser("compare",
                                    help="rank several schedulers")
    _add_config_arguments(compare_parser)
    compare_parser.add_argument("--schedulers", nargs="+",
                                default=list(PAPER_ALGORITHMS),
                                help=f"choose from "
                                     f"{available_schedulers()}")
    compare_parser.add_argument("--topologies", type=int, default=3)
    compare_parser.set_defaults(func=_cmd_compare)

    sweep_parser = sub.add_parser("sweep", help="sweep one config field")
    _add_config_arguments(sweep_parser)
    sweep_parser.add_argument("--field", required=True)
    sweep_parser.add_argument("--values", nargs="+", required=True)
    sweep_parser.add_argument("--schedulers", nargs="+",
                              default=["rest.2", "storage-affinity"])
    sweep_parser.add_argument("--topologies", type=int, default=1)
    sweep_parser.add_argument("--metric", default="makespan_minutes")
    sweep_parser.add_argument("--plot", action="store_true",
                              help="append an ASCII chart")
    sweep_parser.set_defaults(func=_cmd_sweep)

    workload_parser = sub.add_parser("workload",
                                     help="generate + characterize")
    _add_config_arguments(workload_parser)
    workload_parser.add_argument("--out", default=None,
                                 help="write the workload JSON here")
    workload_parser.set_defaults(func=_cmd_workload)

    figures_parser = sub.add_parser("figures",
                                    help="regenerate a paper artifact")
    figures_parser.add_argument("--name", required=True,
                                choices=sorted(_FIGURES))
    figures_parser.add_argument("--scale", default="small",
                                choices=sorted(figure_defs.SCALES))
    figures_parser.set_defaults(func=_cmd_figures)

    reproduce_parser = sub.add_parser(
        "reproduce", help="regenerate every table and figure")
    reproduce_parser.add_argument("--scale", default="small",
                                  choices=sorted(figure_defs.SCALES))
    reproduce_parser.add_argument("--ablations", action="store_true")
    reproduce_parser.add_argument("--out", default=None,
                                  help="write the markdown report here")
    reproduce_parser.set_defaults(func=_cmd_reproduce)

    serve_parser = sub.add_parser(
        "serve", help="run the live scheduler daemon")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=7077)
    serve_parser.add_argument("--metric", default="combined",
                              choices=["overlap", "rest", "combined",
                                       "combined-literal"])
    serve_parser.add_argument("--n", type=int, default=2,
                              help="ChooseTask(n) candidate-set size")
    serve_parser.add_argument("--seed", type=int, default=0)
    serve_parser.add_argument("--kernel", default="fast",
                              choices=["fast", "reference"],
                              help="decision kernel: the sublinear "
                                   "fast path (default) or the "
                                   "decision-identical reference scan "
                                   "(latency ablation only)")
    serve_parser.add_argument("--lease-ttl", type=float, default=30.0,
                              help="seconds before an unrenewed task "
                                   "lease expires and the task is "
                                   "requeued to another worker")
    serve_parser.add_argument("--admission-watermark", type=int,
                              default=None,
                              help="reject JOB_SUBMITs that would push "
                                   "the pending queue past this many "
                                   "tasks (ACK accepted=false, "
                                   "reason=overloaded; default: no "
                                   "admission control)")
    serve_parser.add_argument("--admission-retry-after", type=float,
                              default=0.25,
                              help="retry hint (seconds) sent with "
                                   "admission rejections")
    serve_parser.add_argument("--replicate-stragglers",
                              action="store_true",
                              help="near a job's tail, grant idle "
                                   "workers replica leases on the "
                                   "longest-running tasks "
                                   "(first-completion-wins)")
    serve_parser.add_argument("--max-replicas", type=int, default=1,
                              help="replica leases allowed per task "
                                   "(with --replicate-stragglers)")
    serve_parser.add_argument("--metrics-port", type=int, default=None,
                              help="also serve HTTP /metrics, /healthz, "
                                   "/stats.json and /trace.json on this "
                                   "port (0 = ephemeral)")
    serve_parser.add_argument("--event-log", default=None,
                              help="append structured JSONL events "
                                   "(assign/complete/lease-expire/...) "
                                   "to this file")
    serve_parser.add_argument("--stats-interval", type=float,
                              default=None,
                              help="log the full stats snapshot as one "
                                   "JSON line at INFO every this many "
                                   "seconds (default: off)")
    serve_parser.add_argument("--state-dir", default=None,
                              help="durable-shard mode: keep the WAL "
                                   "and periodic snapshots in this "
                                   "directory and recover from them "
                                   "on startup (conflicts with "
                                   "--event-log)")
    serve_parser.add_argument("--snapshot-interval", type=float,
                              default=5.0,
                              help="seconds between state snapshots "
                                   "(with --state-dir)")
    serve_parser.add_argument("--shard-index", type=int, default=0,
                              help="this shard's index in a cluster "
                                   "(job/task ids ≡ index mod count)")
    serve_parser.add_argument("--shard-count", type=int, default=1,
                              help="total shards in the cluster")
    serve_parser.add_argument("--steal-watermark", type=int,
                              default=None,
                              help="work stealing: when the pending "
                                   "queue drops below this many tasks "
                                   "and workers are parked, steal "
                                   "pending tasks from the most-loaded "
                                   "peer shard (needs --cluster-file "
                                   "and --shard-count > 1; default: "
                                   "stealing off)")
    serve_parser.add_argument("--cluster-file", default=None,
                              help="cluster topology JSON published "
                                   "by the supervisor; polled for "
                                   "peer shard addresses (with "
                                   "--steal-watermark)")
    serve_parser.add_argument("--port-file", default=None,
                              help="write the bound ports as JSON "
                                   "{port, metrics_port} to this path "
                                   "once listening (for --port 0)")
    serve_parser.add_argument("--codec", default="auto",
                              choices=["auto", "json", "binary"],
                              help="wire codecs accepted in HELLO "
                                   "negotiation: auto = binary "
                                   "preferred with JSON fallback, "
                                   "json/binary = that codec only")
    serve_parser.add_argument("--uvloop", action="store_true",
                              help="use uvloop's event loop when the "
                                   "package is importable (optional "
                                   "accelerator; silently optional)")
    _add_verbosity_arguments(serve_parser)
    serve_parser.set_defaults(func=_cmd_serve)

    cluster_parser = sub.add_parser(
        "cluster", help="run a sharded scheduler tier: N durable "
                        "serve shards, a router, and a supervisor "
                        "that restarts crashed shards")
    cluster_parser.add_argument("--shards", type=int, default=2,
                                help="number of scheduler shards")
    cluster_parser.add_argument("--state-root", default="cluster-state",
                                help="directory for per-shard state "
                                     "dirs and cluster.json")
    cluster_parser.add_argument("--host", default="127.0.0.1")
    cluster_parser.add_argument("--port", type=int, default=0,
                                help="router port (0 = ephemeral, "
                                     "reported in cluster.json)")
    cluster_parser.add_argument("--metric", default="combined",
                                choices=["overlap", "rest", "combined",
                                         "combined-literal"])
    cluster_parser.add_argument("--n", type=int, default=2)
    cluster_parser.add_argument("--seed", type=int, default=0)
    cluster_parser.add_argument("--kernel", default="fast",
                                choices=["fast", "reference"])
    cluster_parser.add_argument("--lease-ttl", type=float,
                                default=30.0)
    cluster_parser.add_argument("--snapshot-interval", type=float,
                                default=5.0)
    cluster_parser.add_argument("--metrics-port", type=int,
                                default=None,
                                help="serve aggregated /stats.json, "
                                     "/cluster.json and /healthz on "
                                     "this port (0 = ephemeral)")
    cluster_parser.add_argument("--steal-watermark", type=int,
                                default=None,
                                help="enable shard-to-shard work "
                                     "stealing: a shard whose pending "
                                     "queue drops below this many "
                                     "tasks steals from the "
                                     "most-loaded peer (default: "
                                     "stealing off)")
    cluster_parser.add_argument("--codec", default="json",
                                choices=["auto", "json", "binary"],
                                help="wire codec for the router's own "
                                     "shard connections (clients "
                                     "negotiate theirs at HELLO)")
    _add_verbosity_arguments(cluster_parser)
    cluster_parser.set_defaults(func=_cmd_cluster)

    load_parser = sub.add_parser(
        "load", help="replay a workload against a running daemon "
                     "(workers = --sites x --workers)")
    _add_config_arguments(load_parser)
    load_parser.add_argument("--host", default="127.0.0.1")
    load_parser.add_argument("--port", type=int, default=7077)
    load_parser.add_argument("--flops-per-sec", type=float, default=0.0,
                             help="simulated compute speed "
                                  "(0 = no compute delay)")
    load_parser.add_argument("--seconds-per-file", type=float,
                             default=0.0,
                             help="simulated fetch delay per missing "
                                  "file")
    load_parser.add_argument("--batch", type=int, default=1,
                             help="prefetch depth: each REQUEST_TASK "
                                  "asks for up to this many tasks "
                                  "(TASK_BATCH) and pipelines the "
                                  "completions (default 1 = plain v2 "
                                  "pulls)")
    load_parser.add_argument("--aggregate-deltas", action="store_true",
                             help="coalesce FILE_DELTAs from workers "
                                  "sharing a site through one "
                                  "site-local aggregator")
    load_parser.add_argument("--delta-flush-interval", type=float,
                             default=0.02,
                             help="aggregator flush interval in "
                                  "seconds (with --aggregate-deltas)")
    load_parser.add_argument("--no-drain", action="store_true",
                             help="leave the server running afterwards")
    load_parser.add_argument("--event-log", default=None,
                             help="write the client-side JSONL event "
                                  "stream (submit/assign/complete) here")
    load_parser.add_argument("--cluster", action="store_true",
                             help="--host/--port point at a cluster "
                                  "router: follow REDIRECTs, pull "
                                  "straight from the owning shards, "
                                  "resume across shard restarts")
    load_parser.add_argument("--jobs", type=int, default=1,
                             help="with --cluster: split the workload "
                                  "into this many jobs (spread over "
                                  "the shards)")
    load_parser.add_argument("--codec", default="auto",
                             choices=["auto", "json", "binary"],
                             help="wire codec to offer at HELLO: auto "
                                  "= binary preferred with JSON "
                                  "fallback")
    load_parser.add_argument("--uvloop", action="store_true",
                             help="use uvloop's event loop when the "
                                  "package is importable")
    load_parser.set_defaults(func=_cmd_load)

    scenario_parser = sub.add_parser(
        "scenario", help="hostile-workload harness: run declarative "
                         "scenarios (flash crowds, churn, stragglers, "
                         "multi-tenant contention) against a live "
                         "in-process daemon")
    scenario_sub = scenario_parser.add_subparsers(
        dest="scenario_command", required=True)

    scenario_list = scenario_sub.add_parser(
        "list", help="print the built-in scenario catalog")
    scenario_list.set_defaults(func=_cmd_scenario)

    scenario_run = scenario_sub.add_parser(
        "run", help="run scenario(s); nonzero exit when any check "
                    "fails or a summary breaks the schema")
    scenario_run.add_argument("names", nargs="*", metavar="NAME",
                              help="scenario names (see `scenario "
                                   "list`)")
    scenario_run.add_argument("--all", action="store_true",
                              help="run every built-in scenario")
    scenario_run.add_argument("--quick", action="store_true",
                              help="shrink task counts for CI "
                                   "(same shape, same checks)")
    scenario_run.add_argument("--out-dir", default="scenario-out",
                              help="artifact root; each run writes "
                                   "<out-dir>/<name>/events.jsonl "
                                   "and summary.json")
    _add_verbosity_arguments(scenario_run)
    scenario_run.set_defaults(func=_cmd_scenario)

    scenario_compare = scenario_sub.add_parser(
        "compare", help="diff two summary.json files")
    scenario_compare.add_argument("baseline")
    scenario_compare.add_argument("candidate")
    scenario_compare.set_defaults(func=_cmd_scenario)

    top_parser = sub.add_parser(
        "top", help="live terminal view of one daemon's (or a whole "
                    "cluster's) /stats.json")
    top_parser.add_argument("endpoints", nargs="*", metavar="HOST:PORT",
                            help="stats endpoints to merge (several "
                                 "shard --metrics-ports, or one "
                                 "cluster --metrics-port serving the "
                                 "aggregate); omit to use "
                                 "--host/--port")
    top_parser.add_argument("--host", default="127.0.0.1")
    top_parser.add_argument("--port", type=int, default=None,
                            help="the daemon's --metrics-port")
    top_parser.add_argument("--interval", type=float, default=2.0)
    top_parser.add_argument("--once", action="store_true",
                            help="render a single snapshot and exit")
    top_parser.set_defaults(func=_cmd_top)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
