"""``repro.cluster``: a sharded, fault-tolerant scheduler tier.

N :class:`~repro.serve.service.SchedulerService` shard replicas
partition work by job (``job_id % N`` names the owning shard — shard
ids are allocated with that invariant, see the service's
``id_start``/``id_stride``), fronted by a lightweight asyncio
:class:`~repro.cluster.router.ClusterRouter` that forwards control
traffic to the owning shard, answers cluster-aware ``HELLO`` s with a
``REDIRECT`` shard map, and aggregates ``STATS`` across shards.

Each shard is durable: its schema-checked JSONL event log doubles as
a write-ahead log, periodic checksummed snapshots capture the full
scheduler state (:mod:`repro.cluster.snapshot`), and crash recovery
is *load latest snapshot + tail-replay of the WAL*
(:mod:`repro.cluster.shard`).  A supervisor
(:mod:`repro.cluster.supervisor`, ``repro cluster --shards N``)
spawns, monitors and restarts shard processes; workers mid-lease
against a dead shard re-resolve it through the router and resume,
with exactly-once completion preserved by the lease machinery.

See ``docs/cluster.md`` for topology, wire flow, the snapshot format
and the recovery procedure.
"""

from .client import ClusterClient, ClusterWorkerClient
from .loadgen import run_cluster_load
from .router import ClusterRouter, ShardAddress
from .shard import ShardDurability, open_shard
from .snapshot import (SnapshotError, list_snapshots,
                       load_latest_snapshot, write_snapshot)
from .stats import aggregate_stats
from .supervisor import ClusterSupervisor

__all__ = [
    "ClusterClient", "ClusterRouter", "ClusterSupervisor",
    "ClusterWorkerClient", "ShardAddress", "ShardDurability",
    "SnapshotError", "aggregate_stats", "list_snapshots",
    "load_latest_snapshot", "open_shard", "run_cluster_load",
    "write_snapshot",
]
