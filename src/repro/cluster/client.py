"""Cluster-aware clients: redirect-following control and workers.

:class:`ClusterClient` is :class:`~repro.serve.client.SchedulerClient`
taught to introduce itself with ``accept_redirect``: pointed at a
router it receives the shard map and keeps the connection for control
traffic (the router forwards submits and statuses to the owning
shard); pointed at a plain scheduler it gets a normal ``WELCOME`` and
degrades to exactly the single-server client.

:class:`ClusterWorkerClient` wraps the pull-loop
:class:`~repro.serve.client.WorkerClient` with shard resolution and
crash resumption: it asks the router for the shard map, connects
straight to the shard owning its job, and when that shard dies
mid-lease (connection drops, connects start failing) it re-resolves
through the router — picking up the restarted shard's new port — and
resumes pulling.  One :class:`~repro.serve.client.SiteCacheMirror` is
shared across every reconnect, so the worker's residency picture (and
therefore the ``FILE_DELTA`` stream the recovered shard sees) stays
continuous.  Exactly-once completion needs nothing new here: a
completion acked before the crash is in the shard's WAL and survives
recovery; one acked by nobody is requeued by the lease machinery and
the resumed worker (or a peer) re-earns it.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Dict, List, Optional

from ..obs.events import EventLog
from ..serve import messages
from ..serve.client import (SchedulerClient, SiteCacheMirror,
                            WorkerClient, _Connection)

__all__ = ["ClusterClient", "ClusterWorkerClient"]

log = logging.getLogger("repro.cluster.client")

#: Worker summary counters folded across reconnect incarnations.
_FOLD_COUNTERS = ("tasks_done", "files_fetched", "heartbeats_sent",
                  "rejected_completions", "batches_pulled")


async def _redirect_hello(conn: _Connection, worker: str, site: int,
                          ) -> messages.ServerMessage:
    """HELLO with ``accept_redirect``; returns REDIRECT or WELCOME.

    Goes through :meth:`_Connection.handshake` so the connection's
    codec offers ride the HELLO and the router's (or scheduler's)
    pick is adopted before any further traffic.
    """
    reply = await conn.handshake(worker, site, accept_redirect=True)
    if not isinstance(reply, (messages.Redirect, messages.Welcome)):
        raise RuntimeError(f"expected REDIRECT or WELCOME, got {reply}")
    return reply


class ClusterClient(SchedulerClient):
    """Control client that follows the cluster handshake.

    Works against a router (``redirect`` holds the shard map; submits
    and statuses are forwarded shard-side) *and* against a plain
    scheduler (``redirect`` stays None).  ``submit``/``stats``/
    ``drain``/:class:`~repro.serve.client.JobHandle` are inherited
    unchanged — the wire shapes are identical either way.
    """

    def __init__(self, host: str, port: int,
                 name: str = "cluster-control", site: int = 0,
                 codec: str = "auto"):
        super().__init__(host, port, name=name, site=site, codec=codec)
        self.redirect: Optional[messages.Redirect] = None

    async def __aenter__(self) -> "ClusterClient":
        await self._conn.open()
        reply = await _redirect_hello(self._conn, self.name, self.site)
        if isinstance(reply, messages.Redirect):
            self.redirect = reply
        else:
            self.welcome = reply
        return self

    @property
    def shard_count(self) -> int:
        return 1 if self.redirect is None else self.redirect.shard_count

    def shard_map(self) -> List[Dict]:
        if self.redirect is None:
            return [{"shard": 0, "host": self._conn.host,
                     "port": self._conn.port}]
        return list(self.redirect.shards)


class ClusterWorkerClient:
    """A pull-loop worker that survives the death of its shard.

    ``job_id`` names the owning shard (``job_id % shard_count``) and
    scopes the pulls, so the worker stops on ``NO_TASK(job-done)``
    rather than idling against a shard that still serves other
    tenants.  Alternatively ``shard`` pins the worker to one shard
    with *unscoped* pulls — the work-stealing deployment shape, where
    an idle shard's parked workers are fed stolen tasks and the run
    ends on drain instead of job completion.  Exactly one of the two
    must be given.
    """

    def __init__(self, router_host: str, router_port: int,
                 worker: str = "w0", site: int = 0,
                 capacity_files: int = 1000,
                 flops_per_sec: float = 0.0,
                 seconds_per_file: float = 0.0,
                 job_id: Optional[int] = None,
                 events: Optional[EventLog] = None, batch: int = 1,
                 resume_window: float = 30.0,
                 retry_interval: float = 0.2,
                 codec: str = "auto",
                 shard: Optional[int] = None):
        if job_id is None and shard is None:
            raise ValueError("cluster workers must scope to a job_id "
                             "(it names the owning shard) or pin a "
                             "shard for unscoped pulls")
        if job_id is not None and shard is not None:
            raise ValueError("job_id and shard are mutually "
                             "exclusive: scoped pulls already name "
                             "the owning shard")
        self.router_host = router_host
        self.router_port = router_port
        self.worker = worker
        self.site = site
        #: Wire-codec stance for every connection this worker opens
        #: (the resolve hop and each shard incarnation alike).
        self.codec = codec
        self.flops_per_sec = flops_per_sec
        self.seconds_per_file = seconds_per_file
        self.job_id = job_id
        self.events = events
        self.batch = batch
        #: How long connects may keep failing with no task completed
        #: before the outage is reported instead of ridden out; the
        #: supervisor restarts a crashed shard well inside this.
        self.resume_window = resume_window
        self.retry_interval = retry_interval
        #: One residency mirror across every reconnect incarnation.
        self.cache = SiteCacheMirror(capacity_files)
        self.reconnects = 0
        self.shard: Optional[int] = shard
        self._pinned_shard: Optional[int] = shard

    async def _resolve(self) -> Dict:
        """The owning shard's current ``{shard, host, port}`` entry."""
        conn = _Connection(self.router_host, self.router_port,
                           codec=self.codec)
        await conn.open()
        try:
            reply = await _redirect_hello(
                conn, f"{self.worker}-resolve", self.site)
        finally:
            await conn.close()
        if isinstance(reply, messages.Welcome):
            # A plain scheduler: no shards to pick between.
            self.shard = 0
            return {"shard": 0, "host": self.router_host,
                    "port": self.router_port}
        if self._pinned_shard is not None:
            self.shard = self._pinned_shard % reply.shard_count
        else:
            self.shard = self.job_id % reply.shard_count
        for entry in reply.shards:
            if entry["shard"] == self.shard:
                return entry
        raise RuntimeError(
            f"router shard map has no shard {self.shard}: "
            f"{reply.shards}")

    def _make_inner(self, entry: Dict) -> WorkerClient:
        inner = WorkerClient(
            entry["host"], entry["port"], worker=self.worker,
            site=self.site, capacity_files=self.cache.capacity_files,
            flops_per_sec=self.flops_per_sec,
            seconds_per_file=self.seconds_per_file,
            job_id=self.job_id, events=self.events, batch=self.batch,
            codec=self.codec)
        inner.cache = self.cache  # continuity across reconnects
        return inner

    async def run(self) -> Dict:
        """Pull until ``NO_TASK``, resuming across shard restarts."""
        totals = {key: 0 for key in _FOLD_COUNTERS}
        loop = asyncio.get_running_loop()
        outage_started: Optional[float] = None
        inner: Optional[WorkerClient] = None
        while True:
            try:
                entry = await self._resolve()
                inner = self._make_inner(entry)
                summary = await inner.run()
            except (ConnectionError, OSError) as exc:
                made_progress = False
                if inner is not None:
                    made_progress = any(
                        getattr(inner, key) for key in _FOLD_COUNTERS)
                    self._fold(totals, inner)
                    inner = None
                now = loop.time()
                if made_progress or outage_started is None:
                    outage_started = now
                elif now - outage_started > self.resume_window:
                    raise ConnectionError(
                        f"worker {self.worker}: shard {self.shard} "
                        f"unreachable for {self.resume_window:.1f}s"
                    ) from exc
                self.reconnects += 1
                log.info("worker %s: shard %s connection lost (%s); "
                         "re-resolving via router", self.worker,
                         self.shard, exc)
                await asyncio.sleep(self.retry_interval)
                continue
            self._fold(totals, inner)
            totals.update(worker=self.worker, site=self.site,
                          job_id=self.job_id, batch=self.batch,
                          shard=self.shard,
                          reconnects=self.reconnects,
                          codec=summary.get("codec"),
                          stop_reason=summary["stop_reason"])
            return totals

    @staticmethod
    def _fold(totals: Dict, inner: WorkerClient) -> None:
        for key in _FOLD_COUNTERS:
            totals[key] += getattr(inner, key)
