"""Cluster load generator: multi-job load through the router.

The cluster twin of :func:`repro.serve.loadgen.run_load`: jobs are
submitted through a :class:`~repro.cluster.client.ClusterClient` (the
router places each new job on a shard and forwards the chunked
submits), the worker fleet is
:class:`~repro.cluster.client.ClusterWorkerClient` pull loops — each
scoped to one job, resolving its owning shard via ``REDIRECT`` and
resuming across shard restarts — and the final report carries the
router's *aggregated* stats plus per-worker reconnect counts, so a
run that rode out a shard crash says so.

Several jobs spread over the shards is the interesting cluster case,
hence ``jobs`` is a sequence; workers are assigned to jobs
round-robin.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Dict, Optional, Sequence

from ..grid.job import Job
from ..obs.events import EventLog
from .client import ClusterClient, ClusterWorkerClient

__all__ = ["run_cluster_load"]


async def run_cluster_load(host: str, port: int,
                           jobs: Sequence[Job], workers: int = 8,
                           sites: int = 4, capacity_files: int = 600,
                           flops_per_sec: float = 0.0,
                           seconds_per_file: float = 0.0,
                           drain: bool = True,
                           event_log: Optional[str] = None,
                           batch: int = 1,
                           resume_window: float = 30.0,
                           codec: str = "auto",
                           pin_workers_to_shards: bool = False) -> Dict:
    """Submit ``jobs`` via the router, run the fleet, report.

    ``event_log`` captures the client-side view (submit, assign,
    delta, complete per worker) exactly like the single-server load
    generator — :func:`repro.analysis.eventlog.load_timelines` reads
    it unchanged, which is how the recovery tests prove exactly-once
    completion across a shard kill.

    ``pin_workers_to_shards`` is the work-stealing deployment shape:
    instead of scoping each worker to one job, workers are pinned
    round-robin to shards and pull *unscoped* — a worker whose shard
    ran dry parks, and (with ``--steal-watermark``) its shard steals
    pending tasks from loaded peers to feed it.  The run then waits
    for every job to finish and drains the cluster to release the
    parked fleet, so ``drain`` is implied.
    """
    if not jobs:
        raise ValueError("need at least one job")
    if workers < 1 or sites < 1:
        raise ValueError("need at least one worker and one site")
    events = EventLog(path=event_log) if event_log else None
    async with contextlib.AsyncExitStack() as stack:
        if events is not None:
            stack.enter_context(events)
        control = await stack.enter_async_context(
            ClusterClient(host, port, name="cluster-loadgen",
                          codec=codec))
        handles = []
        for job in jobs:
            handle = await control.submit(job)
            handles.append(handle)
            if events is not None:
                events.emit("submit", job_id=handle.job_id,
                            tasks=len(handle.task_ids),
                            task_ids=handle.task_ids)
        scope = [
            {"shard": index % control.shard_count}
            if pin_workers_to_shards else
            {"job_id": handles[index % len(handles)].job_id}
            for index in range(workers)
        ]
        fleet = [
            ClusterWorkerClient(
                host, port, worker=f"w{index}", site=index % sites,
                capacity_files=capacity_files,
                flops_per_sec=flops_per_sec,
                seconds_per_file=seconds_per_file,
                events=events, batch=batch,
                resume_window=resume_window, codec=codec,
                **scope[index])
            for index in range(workers)
        ]
        if pin_workers_to_shards:
            # Unscoped pulls only stop on drain: wait out the jobs,
            # take the stats, then drain to release the parked fleet.
            worker_tasks = [asyncio.ensure_future(worker.run())
                            for worker in fleet]
            job_statuses = [await handle.wait_done()
                            for handle in handles]
            stats = await control.stats()
            await control.drain()
            summaries = await asyncio.gather(*worker_tasks)
        else:
            summaries = await asyncio.gather(
                *(worker.run() for worker in fleet))
            job_statuses = [await handle.status() for handle in handles]
            stats = await control.stats()
            if drain:
                await control.drain()
    submitted = sum(len(handle.task_ids) for handle in handles)
    completed = sum(status["completed"] for status in job_statuses)
    accepted = sum(s["tasks_done"] for s in summaries)
    audit = {
        "tasks_submitted": submitted,
        "completed": completed,
        "lost": max(0, submitted - completed),
        "double_counted": max(0, accepted - completed),
    }
    audit["clean"] = audit["lost"] == 0 and audit["double_counted"] == 0
    return {
        "shard_count": control.shard_count,
        "jobs": [{"job_id": handle.job_id,
                  "tasks_submitted": len(handle.task_ids),
                  "status": status}
                 for handle, status in zip(handles, job_statuses)],
        "tasks_submitted": submitted,
        "tasks_done": accepted,
        "files_fetched": sum(s["files_fetched"] for s in summaries),
        "reconnects": sum(s["reconnects"] for s in summaries),
        "batch": batch,
        "codec": codec,
        "workers": summaries,
        "audit": audit,
        "stats": stats,
        "event_log": event_log,
    }
