"""The cluster front door: redirect workers, forward control traffic.

:class:`ClusterRouter` is a deliberately thin asyncio TCP server that
speaks the same protocol-v3 wire format as a scheduler shard but holds
**no scheduling state**.  Its whole job:

* ``HELLO`` carrying ``accept_redirect`` → a ``REDIRECT`` with the
  shard map (and the negotiated codec, when the client offered any),
  and the connection stays open for control traffic.  A plain
  ``HELLO`` (a shard-oblivious client) gets a clean ``ERROR`` —
  workers are never silently misrouted to a scheduler that does not
  own their job.
* ``JOB_SUBMIT`` → forwarded to the owning shard (``job_id %
  shard_count``; a brand-new job is placed round-robin and from then
  on its id names its shard, because shards allocate ids with
  ``id_start=shard, id_stride=count``).
* ``JOB_STATUS`` → forwarded to ``job_id % shard_count``.
* ``STATS`` → fanned out to every shard, merged by
  :func:`~repro.cluster.stats.aggregate_stats`.
* ``DRAIN`` → broadcast.
* Data-plane messages (``REQUEST_TASK``, ``TASK_DONE``, ``HEARTBEAT``,
  ``FILE_DELTA``) → ``ERROR`` pointing at the redirect flow.

Upstream connections are lazy, one per shard, serialized by a lock
(the router's control traffic is low-rate; strict request/response
per upstream keeps correlation trivial).  A failed call retries
inside ``retry_window`` seconds — exactly the window in which the
supervisor restarts a crashed shard and calls :meth:`update_shard`
with its new port — so control traffic rides out a shard restart
instead of failing fast.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..serve import messages, protocol
from ..serve.codec import Codec, JsonLinesCodec, make_codec
from .stats import aggregate_stats

__all__ = ["ClusterRouter", "ShardAddress"]

log = logging.getLogger("repro.cluster.router")

READ_CHUNK = 64 * 1024

#: Message types the router refuses: the data plane belongs to shards.
_DATA_PLANE = (messages.RequestTask, messages.TaskDone,
               messages.Heartbeat, messages.FileDelta)


@dataclass(frozen=True)
class ShardAddress:
    """Where one shard listens."""
    shard: int
    host: str
    port: int

    def entry(self) -> Dict:
        """The ``REDIRECT.shards`` wire entry."""
        return {"shard": self.shard, "host": self.host,
                "port": self.port}


class _Upstream:
    """One lazily-connected, lock-serialized stream to one shard.

    :meth:`call` returns the shard's reply *verbatim* (including
    ``ERROR`` — the router forwards shard refusals, it does not raise
    on them).  Connection failures reconnect-and-retry against the
    *current* address until ``retry_window`` runs out, so a shard
    restart (new PID, new ephemeral port installed via
    :meth:`replace`) looks like one slow call, not an outage.
    """

    def __init__(self, address: ShardAddress, retry_window: float,
                 retry_interval: float = 0.1, codec: str = "json"):
        self.address = address
        self.retry_window = retry_window
        self.retry_interval = retry_interval
        self.codec_option = codec
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._codec: Codec = JsonLinesCodec(decodes="server")
        self._inbox: Deque[messages.ServerMessage] = deque()
        #: Bumped by :meth:`replace`; a mismatch tells the call loop
        #: its open connection predates the current address.
        self._generation = 0
        self._conn_generation = 0
        self._lock = asyncio.Lock()

    def replace(self, address: ShardAddress) -> None:
        """Point at a restarted shard; the next call reconnects."""
        self.address = address
        self._generation += 1

    async def _ensure_open(self) -> None:
        if (self._writer is not None
                and self._conn_generation != self._generation):
            await self._close()
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.address.host, self.address.port,
                limit=protocol.MAX_MESSAGE_BYTES + 1024)
            self._codec = JsonLinesCodec(decodes="server")
            self._inbox.clear()
            self._conn_generation = self._generation
            if self.codec_option != "json":
                await self._negotiate()

    async def _negotiate(self) -> None:
        """Send a HELLO so the shard upgrades this stream's codec.

        Connections always open in JSON lines (protocol v3 rule); a
        non-default ``codec_option`` turns the first exchange into a
        negotiation round before any forwarded traffic flows.
        """
        hello = messages.Hello(
            worker=f"router/shard-{self.address.shard}", site=0,
            protocol=protocol.PROTOCOL_VERSION,
            codecs=protocol.codec_offers(self.codec_option))
        self._writer.write(self._codec.encode(hello))
        await self._writer.drain()
        reply = await self._read_reply()
        if isinstance(reply, messages.Error):
            raise ConnectionError(
                f"shard {self.address.shard} refused hello: "
                f"{reply.error}")
        chosen = getattr(reply, "codec", None)
        if chosen and chosen != self._codec.name:
            residue = self._codec.residue()
            self._codec = make_codec(chosen, decodes="server")
            if residue:
                self._inbox.extend(self._codec.feed(residue))

    async def _read_reply(self) -> messages.ServerMessage:
        while not self._inbox:
            data = await self._reader.read(READ_CHUNK)
            if not data:
                raise ConnectionError(
                    f"shard {self.address.shard} closed the "
                    f"connection")
            self._inbox.extend(self._codec.feed(data))
        return self._inbox.popleft()

    async def _close(self) -> None:
        writer, self._writer, self._reader = self._writer, None, None
        if writer is not None:
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    async def call(self, message: messages.ClientMessage,
                   ) -> messages.ServerMessage:
        async with self._lock:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + self.retry_window
            while True:
                try:
                    await self._ensure_open()
                    self._writer.write(self._codec.encode(message))
                    await self._writer.drain()
                    return await self._read_reply()
                except (ConnectionError, OSError) as exc:
                    await self._close()
                    if loop.time() >= deadline:
                        raise ConnectionError(
                            f"shard {self.address.shard} unreachable "
                            f"for {self.retry_window:.1f}s: {exc}"
                        ) from exc
                    await asyncio.sleep(self.retry_interval)

    async def close(self) -> None:
        async with self._lock:
            await self._close()


class ClusterRouter:
    """Stateless protocol-v3 front end over a fixed shard map.

    ``codecs`` is what the router accepts from *clients* (defaults to
    everything the protocol module knows).  ``upstream_codec`` is the
    ``--codec``-style option for the router's own shard connections:
    ``"json"`` (the default) keeps the plain JSON-lines streams,
    ``"binary"``/``"auto"`` negotiate an upgrade on connect.
    """

    def __init__(self, shards: List[ShardAddress],
                 host: str = "127.0.0.1", port: int = 0,
                 name: str = "cluster-router",
                 retry_window: float = 15.0,
                 codecs: Optional[Sequence[str]] = None,
                 upstream_codec: str = "json"):
        if not shards:
            raise ValueError("a cluster needs at least one shard")
        indices = sorted(address.shard for address in shards)
        if indices != list(range(len(shards))):
            raise ValueError(f"shard indices must be 0..{len(shards) - 1},"
                             f" got {indices}")
        self.shard_count = len(shards)
        self.host = host
        self.port = port
        self.name = name
        self.codecs = tuple(codecs if codecs is not None
                            else protocol.DEFAULT_CODECS)
        self._upstreams: Dict[int, _Upstream] = {
            address.shard: _Upstream(address, retry_window,
                                     codec=upstream_codec)
            for address in shards}
        self._server: Optional[asyncio.AbstractServer] = None
        self._handler_tasks: set = set()
        self._connections: set = set()
        self._next_new_job_shard = 0
        self.redirects_sent = 0
        self.rejected_hellos = 0
        self.forwarded = 0

    # -- shard map ---------------------------------------------------
    def shard_map(self) -> List[Dict]:
        """Wire-ready ``REDIRECT.shards`` entries, by shard index."""
        return [self._upstreams[index].address.entry()
                for index in range(self.shard_count)]

    def update_shard(self, address: ShardAddress) -> None:
        """Install a restarted shard's new address (supervisor hook)."""
        if address.shard not in self._upstreams:
            raise ValueError(f"unknown shard {address.shard}")
        log.info("shard %d moved to %s:%d", address.shard,
                 address.host, address.port)
        self._upstreams[address.shard].replace(address)

    def shard_for_job(self, job_id: int) -> int:
        return job_id % self.shard_count

    # -- lifecycle ---------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=protocol.MAX_MESSAGE_BYTES + 1024)
        self.port = self._server.sockets[0].getsockname()[1]
        log.info("router listening on %s:%d (%d shard(s))",
                 self.host, self.port, self.shard_count)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._connections):
            writer.close()
        if self._handler_tasks:
            # Closed transports EOF the read loops; let them finish so
            # loop teardown never has to cancel a live handler.
            await asyncio.wait(self._handler_tasks, timeout=5)
        for upstream in self._upstreams.values():
            await upstream.close()

    # -- client side -------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._handler_tasks.add(asyncio.current_task())
        self._connections.add(writer)
        codec: Codec = JsonLinesCodec(decodes="client")
        try:
            chunk = b""
            closing = False
            while not closing:
                try:
                    inbound = codec.feed(chunk)
                except protocol.ProtocolError as exc:
                    # Framing errors lose the stream position: one
                    # final ERROR, then close (same rule as a shard).
                    writer.write(codec.encode(
                        messages.Error(str(exc))))
                    await writer.drain()
                    break
                if not inbound:
                    chunk = await reader.read(READ_CHUNK)
                    if not chunk:
                        break  # EOF
                    continue
                chunk = b""  # drain the codec buffer before reading on
                out = bytearray()
                for index, message in enumerate(inbound):
                    reply, close, next_codec = await self._dispatch(
                        message)
                    out += codec.encode(reply)
                    if close:
                        closing = True
                        break
                    if (next_codec is not None
                            and next_codec != codec.name):
                        if (index + 1 < len(inbound)
                                or codec.buffered):
                            out += codec.encode(messages.Error(
                                "messages pipelined across codec "
                                "negotiation; await the HELLO reply "
                                "before sending more"))
                            closing = True
                            break
                        codec = make_codec(next_codec,
                                           decodes="client")
                if out:
                    writer.write(bytes(out))
                    await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._handler_tasks.discard(asyncio.current_task())
            self._connections.discard(writer)
            writer.close()
            with contextlib.suppress(ConnectionResetError,
                                     BrokenPipeError):
                await writer.wait_closed()

    async def _forward(self, shard: int,
                       message: messages.ClientMessage,
                       ) -> messages.ServerMessage:
        try:
            reply = await self._upstreams[shard].call(message)
        except ConnectionError as exc:
            return messages.Error(str(exc))
        self.forwarded += 1
        return reply

    async def _dispatch(self, message: messages.ClientMessage,
                        ) -> Tuple[messages.ServerMessage, bool,
                                   Optional[str]]:
        """Returns ``(reply, close, next_codec)``; a non-``None``
        ``next_codec`` tells the connection loop to switch framing
        right after the reply is written."""
        if isinstance(message, messages.Hello):
            if message.protocol not in protocol.SUPPORTED_PROTOCOLS:
                return (messages.Error(
                    f"unsupported protocol version {message.protocol};"
                    f" this router speaks "
                    f"{protocol.SUPPORTED_PROTOCOLS_TEXT}"), True, None)
            if not message.accept_redirect:
                # An old (or shard-oblivious) client: refuse cleanly
                # instead of pretending to be a scheduler it can pull
                # tasks from.
                self.rejected_hellos += 1
                return (messages.Error(
                    "this address is a cluster router, not a "
                    "scheduler shard; send HELLO with "
                    "accept_redirect=true and connect to the shard "
                    "owning your job (job_id % shard_count)"), True,
                    None)
            codec_name = None
            if message.codecs is not None:
                codec_name = protocol.negotiate_codec(
                    message.codecs, self.codecs)
            self.redirects_sent += 1
            return (messages.Redirect(
                shards=self.shard_map(),
                shard_count=self.shard_count,
                codec=codec_name), False, codec_name)

        if isinstance(message, _DATA_PLANE):
            return (messages.Error(
                f"{message.TYPE} is data-plane traffic; the router "
                f"only routes control messages — connect to the "
                f"owning shard from the REDIRECT shard map"), False,
                None)

        if isinstance(message, messages.JobSubmit):
            if message.job_id is not None:
                shard = self.shard_for_job(message.job_id)
            else:
                shard = self._next_new_job_shard
                self._next_new_job_shard = (
                    (shard + 1) % self.shard_count)
            return (await self._forward(shard, message), False, None)

        if isinstance(message, messages.JobStatusRequest):
            shard = self.shard_for_job(message.job_id)
            return (await self._forward(shard, message), False, None)

        if isinstance(message, messages.StatsRequest):
            return (messages.StatsReply(
                stats=await self.aggregated_stats()), False, None)

        if isinstance(message, messages.Drain):
            replies = await asyncio.gather(
                *(self._forward(shard, messages.Drain())
                  for shard in range(self.shard_count)))
            failed = [reply.error for reply in replies
                      if isinstance(reply, messages.Error)]
            if failed:
                return (messages.Error(
                    f"drain incomplete: {'; '.join(failed)}"), False,
                    None)
            return (messages.Ack(draining=True), False, None)

        return (messages.Error(
            f"unhandled message type {message.TYPE!r}"), False, None)

    async def aggregated_stats(self) -> Dict:
        """Every shard's STATS merged into one cluster snapshot.

        A shard that cannot be reached (or answers with an ERROR) is
        not silently dropped: its failure detail lands in the
        snapshot's top-level ``"errors"`` map, keyed by shard index,
        next to the ``"shards"`` breakdown.
        """
        async def fetch(shard: int) -> Tuple[Optional[Dict],
                                             Optional[str]]:
            try:
                reply = await self._upstreams[shard].call(
                    messages.StatsRequest())
            except ConnectionError as exc:
                return None, f"unreachable: {exc}" if str(exc) \
                    else "unreachable"
            if isinstance(reply, messages.StatsReply):
                return reply.stats, None
            if isinstance(reply, messages.Error):
                return None, f"STATS refused: {reply.error}"
            return None, f"unexpected {reply.TYPE} reply to STATS"

        results = await asyncio.gather(
            *(fetch(shard) for shard in range(self.shard_count)))
        errors = {shard: error
                  for shard, (_snap, error) in enumerate(results)
                  if error is not None}
        return aggregate_stats(
            [(shard, snap)
             for shard, (snap, _error) in enumerate(results)],
            shard_count=self.shard_count, errors=errors)
