"""One durable scheduler shard: WAL + snapshots + crash recovery.

A shard is a plain :class:`~repro.serve.service.SchedulerService`
constructed with ``wal_events=True`` and the cluster id strides, whose
event log lives in the shard's *state directory* and doubles as a
write-ahead log.  :func:`open_shard` is the whole lifecycle::

    durability = open_shard("state/shard-0", metric="combined", n=2,
                            shard_index=0, shard_count=2)
    # durability.service is recovered: snapshot + WAL tail replayed
    # durability.report says what recovery did
    task = loop.create_task(durability.snapshot_loop())

Recovery is **snapshot + tail-replay, never a cold start**: the
newest verified snapshot restores the bulk of the state
(:meth:`SchedulerService.import_state`), then every WAL record with
``seq >= snapshot.wal_seq`` is folded in through
:meth:`SchedulerService.replay_record`.  The new incarnation's event
log continues the WAL sequence (``seq_start``), so the log stays one
monotone history across restarts and the *next* recovery can do the
same dance.

Durability contract: WAL records are flushed to the OS before the
mutation they describe is acked on the wire (``auto_flush``), which
survives ``kill -9``; snapshot writes fsync both the WAL (the
barrier) and the snapshot file, which survives machine crashes up to
the last barrier.
"""

from __future__ import annotations

import asyncio
import logging
import os
import time
from typing import Callable, Dict, List, Optional

from ..obs.events import EventLog, iter_events
from ..obs.trace import DecisionTracer
from ..serve.service import SchedulerService
from .snapshot import (list_snapshots, load_latest_snapshot,
                       write_snapshot)

__all__ = ["ShardDurability", "open_shard", "recover_service",
           "wal_files"]

log = logging.getLogger("repro.cluster.shard")

#: WAL file name inside a shard's state directory.
WAL_NAME = "wal.jsonl"
#: WAL rotation: generous, so the replayable tail always covers the
#: gap back to the newest snapshot by a wide margin.
WAL_MAX_BYTES = 256 << 20
WAL_BACKUPS = 8


def wal_path(state_dir: str) -> str:
    return os.path.join(state_dir, WAL_NAME)


def wal_files(state_dir: str) -> List[str]:
    """The WAL's files oldest-first (``.N`` … ``.1``, then current)."""
    base = wal_path(state_dir)
    paths = [f"{base}.{index}"
             for index in range(WAL_BACKUPS, 0, -1)]
    paths.append(base)
    return [path for path in paths if os.path.exists(path)]


def recover_service(service: SchedulerService,
                    state_dir: str) -> Dict:
    """Snapshot + tail-replay recovery into a fresh ``service``.

    Returns the recovery report: ``snapshot_seq`` (None = no usable
    snapshot, full-log replay), ``replayed`` (records folded in),
    ``skipped`` (records already covered by the snapshot) and
    ``next_seq`` (where the new incarnation's WAL continues).
    """
    snapshot_seq: Optional[int] = None
    start_seq = 0
    latest = load_latest_snapshot(state_dir)
    if latest is not None:
        snapshot_seq, payload = latest
        service.import_state(payload)
        start_seq = snapshot_seq
    replayed = 0
    skipped = 0
    next_seq = start_seq
    for path in wal_files(state_dir):
        for record in iter_events(path):
            seq = record["seq"]
            next_seq = max(next_seq, seq + 1)
            if seq < start_seq:
                skipped += 1
                continue
            if service.replay_record(record):
                replayed += 1
    # Work stealing: an export the thief never durably acked cannot
    # have been activated remotely (activation requires our acked
    # answer), so the crash reclaims it locally — exactly-once either
    # way.  Must run after the full tail fold, when completions and
    # acks that *did* land have been applied.
    steal_requeued = service.requeue_unacked_exports()
    report = {"snapshot_seq": snapshot_seq, "replayed": replayed,
              "skipped": skipped, "next_seq": next_seq,
              "steal_requeued": steal_requeued}
    log.info("shard recovery: snapshot_seq=%s, replayed=%d wal "
             "record(s), requeued %d unacked export(s), wal continues "
             "at seq %d", snapshot_seq, replayed, steal_requeued,
             next_seq)
    return report


class ShardDurability:
    """Snapshot cadence + WAL ownership for one recovered service."""

    def __init__(self, service: SchedulerService, events: EventLog,
                 state_dir: str, report: Dict,
                 shard_index: int = 0, shard_count: int = 1,
                 snapshot_interval: float = 5.0, keep: int = 3):
        if snapshot_interval <= 0:
            raise ValueError(f"snapshot_interval must be > 0, "
                             f"got {snapshot_interval}")
        self.service = service
        self.events = events
        self.state_dir = state_dir
        self.report = report
        self.shard_index = shard_index
        self.shard_count = shard_count
        self.snapshot_interval = snapshot_interval
        self.keep = keep
        self.snapshots_written = 0
        self._last_snapshot_seq = report["next_seq"] \
            if report["snapshot_seq"] is not None else None
        # Per-shard identity on the metrics endpoint: scrapes from a
        # fleet of shards stay distinguishable after aggregation.
        family = service.stats.registry.gauge(
            "repro_shard", "Shard identity (value is always 1).",
            labelnames=("index", "count"))
        family.labels(index=str(shard_index),
                      count=str(shard_count)).set(1)

    def maybe_snapshot(self, force: bool = False) -> Optional[str]:
        """Write a snapshot unless nothing changed since the last one.

        The barrier order is fixed: fsync the WAL first, then write
        the snapshot naming the synced sequence — a snapshot must
        never claim coverage the log cannot back.
        """
        wal_seq = self.events.next_seq
        if not force and wal_seq == self._last_snapshot_seq:
            return None
        self.events.sync()
        path = write_snapshot(self.state_dir,
                              self.service.export_state(),
                              wal_seq, keep=self.keep)
        self._last_snapshot_seq = wal_seq
        self.snapshots_written += 1
        log.debug("snapshot written: %s", path)
        return path

    async def snapshot_loop(self) -> None:
        """Periodic :meth:`maybe_snapshot`; run as an asyncio task."""
        while True:
            await asyncio.sleep(self.snapshot_interval)
            self.maybe_snapshot()

    def describe(self) -> Dict:
        """Shard block for ``/stats.json`` (identity + recovery)."""
        return {"index": self.shard_index, "count": self.shard_count,
                "state_dir": self.state_dir,
                "recovery": self.report,
                "snapshots_written": self.snapshots_written,
                "snapshots_on_disk": len(
                    list_snapshots(self.state_dir)),
                "wal_next_seq": self.events.next_seq}

    def close(self) -> None:
        """Final snapshot + WAL close (clean shutdown path)."""
        self.maybe_snapshot()
        self.events.close()


def open_shard(state_dir: str, metric: str = "combined", n: int = 2,
               seed: int = 0, lease_ttl: float = 30.0,
               shard_index: int = 0, shard_count: int = 1,
               snapshot_interval: float = 5.0, keep: int = 3,
               fast_path: bool = True,
               clock: Callable[[], float] = time.monotonic,
               tracer: Optional[DecisionTracer] = None,
               name: Optional[str] = None,
               admission_watermark: Optional[int] = None,
               admission_retry_after: float = 0.25,
               replicate_tail: bool = False,
               max_replicas: int = 1,
               steal_watermark: Optional[int] = None) -> ShardDurability:
    """Build + recover one durable shard from its state directory.

    The service is constructed silent (no event log), recovered from
    the newest snapshot plus the WAL tail, and only then handed the
    live WAL — replay must never re-emit the records it is folding.
    """
    os.makedirs(state_dir, exist_ok=True)
    service = SchedulerService(
        metric=metric, n=n, seed=seed,
        name=name or f"shard-{shard_index}",
        lease_ttl=lease_ttl, clock=clock, tracer=tracer,
        fast_path=fast_path, id_start=shard_index,
        id_stride=shard_count, wal_events=True,
        admission_watermark=admission_watermark,
        admission_retry_after=admission_retry_after,
        replicate_tail=replicate_tail, max_replicas=max_replicas,
        steal_watermark=steal_watermark)
    report = recover_service(service, state_dir)
    events = EventLog(path=wal_path(state_dir),
                      seq_start=report["next_seq"], auto_flush=True,
                      max_bytes=WAL_MAX_BYTES, backups=WAL_BACKUPS)
    service.events = events
    return ShardDurability(service, events, state_dir, report,
                           shard_index=shard_index,
                           shard_count=shard_count,
                           snapshot_interval=snapshot_interval,
                           keep=keep)
