"""Versioned, checksummed scheduler-state snapshots.

One snapshot is one JSON file in the shard's state directory::

    snapshot-000000001234.json
    {
      "version": 1,
      "wal_seq": 1234,             # first WAL seq NOT in the snapshot
      "checksum": "sha256-hex of the canonical payload encoding",
      "payload": { ... SchedulerService.export_state() ... }
    }

``wal_seq`` is the event log's *next* sequence number at capture
time: the snapshot is exactly the fold of every WAL record with
``seq < wal_seq``, so recovery is ``import_state(payload)`` followed
by replaying records with ``seq >= wal_seq`` (see
:mod:`repro.cluster.shard`).

Writes are atomic (tmp file + fsync + rename) and pruned to the
newest ``keep`` files; reads verify version and checksum and fall
back to the next-older snapshot on any mismatch — a torn or
bit-rotted snapshot costs replay time, never correctness.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import re
from typing import Dict, List, Optional, Tuple

__all__ = ["SNAPSHOT_VERSION", "SnapshotError", "list_snapshots",
           "load_latest_snapshot", "snapshot_path", "write_snapshot"]

log = logging.getLogger("repro.cluster.snapshot")

SNAPSHOT_VERSION = 1

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{12})\.json$")


class SnapshotError(RuntimeError):
    """No usable snapshot could be written or read."""


def _checksum(payload: Dict) -> str:
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def snapshot_path(state_dir: str, wal_seq: int) -> str:
    return os.path.join(state_dir, f"snapshot-{wal_seq:012d}.json")


def list_snapshots(state_dir: str) -> List[Tuple[int, str]]:
    """``(wal_seq, path)`` of every snapshot file, oldest first."""
    found: List[Tuple[int, str]] = []
    try:
        names = os.listdir(state_dir)
    except FileNotFoundError:
        return []
    for name in names:
        match = _SNAPSHOT_RE.match(name)
        if match:
            found.append((int(match.group(1)),
                          os.path.join(state_dir, name)))
    return sorted(found)


def write_snapshot(state_dir: str, payload: Dict, wal_seq: int,
                   keep: int = 3) -> str:
    """Atomically persist one snapshot; prune to the newest ``keep``.

    The caller must have synced the WAL up to ``wal_seq`` first (the
    snapshot barrier): a snapshot must never be newer than the log
    that tails it.
    """
    if keep < 1:
        raise ValueError(f"keep must be >= 1, got {keep}")
    os.makedirs(state_dir, exist_ok=True)
    path = snapshot_path(state_dir, wal_seq)
    wrapper = {"version": SNAPSHOT_VERSION, "wal_seq": wal_seq,
               "checksum": _checksum(payload), "payload": payload}
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(wrapper, handle, separators=(",", ":"),
                  sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    _fsync_dir(state_dir)
    for _seq, old_path in list_snapshots(state_dir)[:-keep]:
        try:
            os.remove(old_path)
        except OSError:  # pragma: no cover - best-effort pruning
            pass
    return path


def _fsync_dir(state_dir: str) -> None:
    """Make the rename itself durable (best-effort on odd FSes)."""
    try:
        fd = os.open(state_dir, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def load_snapshot(path: str) -> Tuple[int, Dict]:
    """``(wal_seq, payload)`` of one verified snapshot file."""
    with open(path, "r", encoding="utf-8") as handle:
        wrapper = json.load(handle)
    if wrapper.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"{path}: snapshot version {wrapper.get('version')!r}, "
            f"this build reads {SNAPSHOT_VERSION}")
    payload = wrapper.get("payload")
    wal_seq = wrapper.get("wal_seq")
    if not isinstance(payload, dict) or not isinstance(wal_seq, int):
        raise SnapshotError(f"{path}: malformed snapshot wrapper")
    if _checksum(payload) != wrapper.get("checksum"):
        raise SnapshotError(f"{path}: checksum mismatch")
    return wal_seq, payload


def load_latest_snapshot(state_dir: str,
                         ) -> Optional[Tuple[int, Dict]]:
    """The newest *verified* snapshot, or None when none is usable.

    A snapshot that fails verification (torn write, corruption) is
    logged and skipped in favor of the next-older one — recovery then
    simply replays a longer WAL tail.
    """
    for wal_seq, path in reversed(list_snapshots(state_dir)):
        try:
            return load_snapshot(path)
        except (SnapshotError, OSError, json.JSONDecodeError) as exc:
            log.warning("skipping unusable snapshot %s: %s", path, exc)
    return None
