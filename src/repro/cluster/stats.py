"""Cluster-wide STATS aggregation.

:func:`aggregate_stats` merges per-shard ``stats_snapshot()`` dicts
into one cluster view with the *same top-level shape* as a single
shard's snapshot — ``repro top``, the Prometheus text renderer's JSON
sibling and every existing consumer read the totals unchanged — plus
two cluster-only keys:

* ``"cluster"``: ``{shard_count, shards_reporting}``.
* ``"shards"``: the raw per-shard snapshots keyed by shard index
  (``{"error": ...}`` for a shard that could not be reached), so a
  per-shard breakdown is one lookup away from the aggregate.

Counters and gauges sum; ``uptime_s`` is the oldest shard's;
per-site counters sum across shards that touched the same site id.
Latency percentiles cannot be merged exactly from summaries, so the
aggregate reports the count-weighted mean of the shard percentiles —
an approximation, labeled as such below, good enough for dashboards
(``count``, ``mean_us`` and ``max_us`` merge exactly).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["aggregate_stats"]

#: Top-level scalar fields that sum across shards.
_SUM_FIELDS = ("jobs_submitted", "jobs_completed", "jobs_active",
               "tasks_submitted", "assignments", "assignments_per_sec",
               "completions", "duplicate_completions",
               "stale_completions", "requeues", "queue_depth",
               "peak_queue_depth", "outstanding", "parked_workers")

_LEASE_FIELDS = ("active", "granted", "renewals", "expiries")
_DELTA_FIELDS = ("added", "removed", "referenced")
_DEDUP_FIELDS = ("duplicate_adds", "duplicate_removes")


def _merge_latency(summaries: List[Dict]) -> Dict[str, float]:
    """Merge histogram summaries: exact where possible, count-weighted
    for percentiles (bucket counts are not on the wire)."""
    total = sum(s.get("count", 0) for s in summaries)
    merged: Dict[str, float] = {"count": total, "mean_us": 0.0,
                                "p50_us": 0.0, "p90_us": 0.0,
                                "p99_us": 0.0, "max_us": 0.0}
    if not total:
        return merged
    for summary in summaries:
        weight = summary.get("count", 0) / total
        for key in ("mean_us", "p50_us", "p90_us", "p99_us"):
            merged[key] += weight * summary.get(key, 0.0)
        merged["max_us"] = max(merged["max_us"],
                               summary.get("max_us", 0.0))
    return merged


def aggregate_stats(per_shard: List[Tuple[int, Optional[Dict]]],
                    shard_count: Optional[int] = None,
                    errors: Optional[Dict[int, str]] = None) -> Dict:
    """Merge ``(shard_index, snapshot-or-None)`` pairs (None = shard
    unreachable) into one cluster-wide snapshot.

    ``errors`` carries the per-shard fetch failure detail for shards
    whose snapshot is None; it is surfaced verbatim under the
    top-level ``"errors"`` key (always present, ``{}`` when every
    shard reported) and inside the ``"shards"`` breakdown."""
    reporting = [(index, snap) for index, snap in per_shard
                 if snap is not None]
    snaps = [snap for _index, snap in reporting]
    merged: Dict = {
        "uptime_s": max((s.get("uptime_s", 0.0) for s in snaps),
                        default=0.0)}
    for field in _SUM_FIELDS:
        merged[field] = sum(s.get(field, 0) for s in snaps)
    merged["leases"] = {
        field: sum(s.get("leases", {}).get(field, 0) for s in snaps)
        for field in _LEASE_FIELDS}
    merged["file_deltas"] = {
        field: sum(s.get("file_deltas", {}).get(field, 0)
                   for s in snaps)
        for field in _DELTA_FIELDS}
    merged["delta_dedup"] = {
        field: sum(s.get("delta_dedup", {}).get(field, 0)
                   for s in snaps)
        for field in _DEDUP_FIELDS}
    sizes: Dict[str, int] = {}
    for snap in snaps:
        for size, count in snap.get("batches", {}).get("sizes",
                                                       {}).items():
            sizes[size] = sizes.get(size, 0) + count
    merged["batches"] = {
        "requests": sum(s.get("batches", {}).get("requests", 0)
                        for s in snaps),
        "tasks": sum(s.get("batches", {}).get("tasks", 0)
                     for s in snaps),
        "sizes": dict(sorted(sizes.items(), key=lambda kv: int(kv[0]))),
    }
    sites: Dict[str, Dict] = {}
    for snap in snaps:
        for site_id, site in snap.get("sites", {}).items():
            into = sites.setdefault(site_id, {"assignments": 0,
                                              "overlap_hits": 0})
            into["assignments"] += site.get("assignments", 0)
            into["overlap_hits"] += site.get("overlap_hits", 0)
    for site in sites.values():
        site["overlap_hit_rate"] = (site["overlap_hits"]
                                    / site["assignments"]
                                    if site["assignments"] else 0.0)
    merged["sites"] = dict(sorted(sites.items(),
                                  key=lambda kv: int(kv[0])))
    merged["decision_latency"] = _merge_latency(
        [s.get("decision_latency", {}) for s in snaps])
    by_metric: Dict[str, List[Dict]] = {}
    for snap in snaps:
        for metric, summary in snap.get("scheduler_decision",
                                        {}).items():
            by_metric.setdefault(metric, []).append(summary)
    merged["scheduler_decision"] = {
        metric: _merge_latency(summaries)
        for metric, summaries in sorted(by_metric.items())}
    steal_requests: Dict[str, int] = {}
    for snap in snaps:
        for outcome, count in snap.get("steal",
                                       {}).get("requests", {}).items():
            steal_requests[outcome] = (steal_requests.get(outcome, 0)
                                       + count)
    merged["steal"] = {
        "tasks_stolen": sum(s.get("steal", {}).get("tasks_stolen", 0)
                            for s in snaps),
        "tasks_exported": sum(s.get("steal",
                                    {}).get("tasks_exported", 0)
                              for s in snaps),
        "requests": dict(sorted(steal_requests.items())),
    }
    merged["draining"] = all(s.get("draining", False) for s in snaps) \
        if snaps else False
    merged["cluster"] = {
        "shard_count": (shard_count if shard_count is not None
                        else len(per_shard)),
        "shards_reporting": len(reporting),
    }
    errors = errors or {}
    merged["errors"] = {str(index): detail
                        for index, detail in sorted(errors.items())}
    merged["shards"] = {
        str(index): (snap if snap is not None
                     else {"error": errors.get(index,
                                               "shard unreachable")})
        for index, snap in per_shard}
    return merged
