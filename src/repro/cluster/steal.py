"""Shard-to-shard work stealing: the thief-side control loop.

A drained shard — pending queue under the ``--steal-watermark``, idle
workers parked — should not sit still while a sibling shard buckles
under a skewed job.  The :class:`StealManager` runs next to each
shard's server and drives the protocol-v3 steal exchange as the TCP
*client* (the thief), over the same negotiated codec streams workers
use:

1. ``STEAL_REQUEST {max_tasks, site_refsums}`` → the most-loaded peer
   (discovered from the supervisor's published ``cluster.json``
   topology, or a static peer list in embedded setups; ranked by the
   peers' ``STATS`` queue depth).  ``site_refsums`` ships the thief's
   per-site residency + reference counts so the victim can export the
   tasks with the *lowest locality loss* — the batch that scores best
   at the thief's sites under the victim's own metric.
2. ``STEAL_GRANT {tasks, export_id}`` → the victim has already
   WAL-logged the export (durable before the grant hits the wire) and
   detached the tasks from its pending set.
3. The thief WALs a *tentative* import, then sends
   ``STEAL_ACK {export_id}``.  Only the victim's accepted answer —
   itself WAL'd victim-side before the reply — activates the import:
   the stolen tasks enter the thief's engine under their original
   (stride-disjoint) ids and are leased to local workers normally.

Completions of stolen tasks do not count locally: the thief WALs a
``steal-task-done`` marker, queues the id in a per-origin outbox, and
this manager forwards ``STEAL_DONE {task_ids}`` batches home, where
the victim lands the canonical ``complete`` record and the per-job
counters — so ``JOB_STATUS`` stays exact no matter where a task ran.
Forwarding is at-least-once (the outbox entry is pruned only after
the origin's ack) against an idempotent receiver.

Crash safety is the whole point of the ack dance: a tentative import
that survives a thief crash is *re-acked* on startup — the victim
answers deterministically from its own WAL (acked → run it; requeued
by the victim's own recovery → drop it) — so a task is never lost and
never runs on both sides.  See ``docs/cluster.md`` for the full
exactly-once argument.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
from typing import Dict, List, Optional, Tuple

from ..serve import messages
from ..serve.client import _Connection
from ..serve.service import SchedulerService

__all__ = ["StealManager"]

log = logging.getLogger("repro.cluster.steal")

#: Cap on tasks requested per STEAL_REQUEST.
DEFAULT_MAX_TASKS = 64


class StealManager:
    """Drives one shard's thief half and its completion forwarding.

    ``peers`` pins a static topology (embedded/benchmark setups):
    ``{shard_index: (host, port)}``.  ``cluster_file`` instead points
    at the supervisor's ``cluster.json`` and is re-read every tick, so
    restarts (new ephemeral ports) and drained peers are picked up
    live.  One of the two must be provided.
    """

    def __init__(self, service: SchedulerService, shard_index: int,
                 peers: Optional[Dict[int, Tuple[str, int]]] = None,
                 cluster_file: Optional[str] = None,
                 interval: float = 0.05,
                 max_tasks: int = DEFAULT_MAX_TASKS,
                 codec: str = "auto"):
        if peers is None and cluster_file is None:
            raise ValueError("need a static peers map or a cluster_file")
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        if max_tasks < 1:
            raise ValueError(f"max_tasks must be >= 1, got {max_tasks}")
        self.service = service
        self.shard_index = shard_index
        self.cluster_file = cluster_file
        self.interval = interval
        self.max_tasks = max_tasks
        self.codec = codec
        self.name = f"steal/{shard_index}"
        self._peers: Dict[int, Tuple[str, int]] = dict(peers or {})
        self._conns: Dict[int, _Connection] = {}
        self._task: Optional[asyncio.Task] = None
        #: Loop-level counters for ``repro top`` / debugging.
        self.steal_attempts = 0
        self.steal_grants = 0
        self.forward_batches = 0

    # -- lifecycle ---------------------------------------------------
    async def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._task
            self._task = None
        for conn in self._conns.values():
            with contextlib.suppress(Exception):
                await conn.close()
        self._conns.clear()

    async def __aenter__(self) -> "StealManager":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def _run(self) -> None:
        while True:
            try:
                await self.tick()
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - peers come and go
                log.debug("steal tick failed", exc_info=True)
            await asyncio.sleep(self.interval)

    async def tick(self) -> None:
        """One pass: refresh topology, settle tentative imports,
        forward completions, then maybe steal.  Public so embedded
        setups (benchmarks, scenarios) can drive it deterministically
        without the background task."""
        self._refresh_peers()
        await self._resolve_tentative()
        await self._forward_completions()
        await self._maybe_steal()

    # -- topology ----------------------------------------------------
    def _refresh_peers(self) -> None:
        if self.cluster_file is None:
            return
        try:
            with open(self.cluster_file, "r", encoding="utf-8") as fh:
                topology = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return  # not written yet (startup) or mid-rewrite
        peers: Dict[int, Tuple[str, int]] = {}
        for entry in topology.get("shards", []):
            shard = entry.get("shard")
            port = entry.get("port")
            if (not isinstance(shard, int) or shard == self.shard_index
                    or not isinstance(port, int)
                    or entry.get("drained")):
                continue
            peers[shard] = (entry.get("host", "127.0.0.1"), port)
        for shard, address in list(self._peers.items()):
            if peers.get(shard) != address:
                # Gone or restarted on a new port: drop the old stream.
                conn = self._conns.pop(shard, None)
                if conn is not None:
                    asyncio.get_running_loop().create_task(conn.close())
        self._peers = peers

    async def _peer_conn(self, shard: int) -> Optional[_Connection]:
        conn = self._conns.get(shard)
        if conn is not None:
            return conn
        address = self._peers.get(shard)
        if address is None:
            return None
        conn = _Connection(address[0], address[1], codec=self.codec)
        try:
            await conn.open()
            await conn.hello(self.name, 0)
        except (OSError, ConnectionError, RuntimeError):
            with contextlib.suppress(Exception):
                await conn.close()
            return None
        self._conns[shard] = conn
        return conn

    async def _call(self, shard: int, message) -> Optional[
            messages.ServerMessage]:
        """One request/response to a peer; drops the stream on error."""
        conn = await self._peer_conn(shard)
        if conn is None:
            return None
        try:
            return await conn.call(message)
        except (OSError, ConnectionError, RuntimeError):
            self._conns.pop(shard, None)
            with contextlib.suppress(Exception):
                await conn.close()
            return None

    # -- the three duties --------------------------------------------
    async def _resolve_tentative(self) -> None:
        """Re-ack tentative imports (startup recovery + live retry).

        The victim's answer is deterministic: accepted if its durable
        ack record exists (or the export is still live), refused if
        its recovery already requeued the export.  Either answer
        settles the import exactly once.
        """
        for origin, export_id in self.service.pending_steal_imports():
            reply = await self._call(
                origin, messages.StealAck(export_id=export_id))
            if not isinstance(reply, messages.Ack):
                continue  # peer unreachable: retry next tick
            if reply.accepted:
                count = self.service.steal_commit_import(origin,
                                                         export_id)
                log.info("activated %d stolen task(s) from shard %d "
                         "(export %d)", count, origin, export_id)
            else:
                self.service.steal_abort_import(origin, export_id)
                log.info("dropped refused import from shard %d "
                         "(export %d)", origin, export_id)

    async def _forward_completions(self) -> None:
        """Drain the per-origin outbox (at-least-once sender)."""
        outbox = self.service.take_steal_completions()
        for origin in sorted(outbox):
            task_ids = outbox[origin]
            reply = await self._call(
                origin, messages.StealDone(task_ids=task_ids))
            if isinstance(reply, messages.Ack) and reply.accepted:
                self.service.steal_forwarded(origin, task_ids)
                self.forward_batches += 1

    async def _maybe_steal(self) -> None:
        service = self.service
        watermark = service.steal_watermark
        if (watermark is None or service.draining
                or service.queue_depth >= watermark
                or service.parked_workers == 0
                or service.pending_steal_imports()):
            return
        victim = await self._pick_victim(watermark)
        if victim is None:
            return
        want = min(self.max_tasks,
                   max(service.parked_workers,
                       watermark - service.queue_depth))
        self.steal_attempts += 1
        reply = await self._call(victim, messages.StealRequest(
            max_tasks=want, site_refsums=self._site_refsums()))
        if not isinstance(reply, messages.StealGrant) or not reply.tasks:
            return
        service.steal_import_tentative(victim, reply.export_id,
                                       reply.tasks)
        ack = await self._call(
            victim, messages.StealAck(export_id=reply.export_id))
        if not isinstance(ack, messages.Ack):
            return  # stream died: the tentative import re-acks later
        if ack.accepted:
            count = service.steal_commit_import(victim, reply.export_id)
            self.steal_grants += 1
            log.info("stole %d task(s) from shard %d (export %d)",
                     count, victim, reply.export_id)
        else:
            service.steal_abort_import(victim, reply.export_id)

    async def _pick_victim(self, watermark: int) -> Optional[int]:
        """The peer with the deepest pending queue, if it is worth
        asking (deeper than the watermark — a victim never exports
        below its own)."""
        best: Optional[int] = None
        best_depth = watermark
        for shard in sorted(self._peers):
            reply = await self._call(shard, messages.StatsRequest())
            if not isinstance(reply, messages.StatsReply):
                continue
            depth = reply.stats.get("queue_depth", 0)
            if depth > best_depth:
                best, best_depth = shard, depth
        return best

    def _site_refsums(self) -> List[Dict]:
        """The thief's per-site residency + reference counts, in the
        wire shape ``{"site", "files", "refs"}`` (parallel lists)."""
        engine = self.service.engine
        out: List[Dict] = []
        for site_id in sorted(engine.site_ids):
            payload = engine.site_state(site_id).export()
            references = dict(payload["references"])
            files = payload["resident"]
            out.append({"site": site_id, "files": list(files),
                        "refs": [int(references.get(fid, 0))
                                 for fid in files]})
        return out

    def describe(self) -> Dict:
        return {"shard": self.shard_index,
                "peers": sorted(self._peers),
                "attempts": self.steal_attempts,
                "grants": self.steal_grants,
                "forward_batches": self.forward_batches}
