"""The cluster supervisor: spawn, watch and restart shard processes.

``repro cluster --shards N`` builds one :class:`ClusterSupervisor`.
It spawns N ``repro serve`` shard processes (each with ``--port 0``,
``--metrics-port 0``, its own state directory, and the
``--shard-index/--shard-count`` id strides), learns each shard's
ephemeral ports through a *port-file handshake* — the shard writes
``{"port": ..., "metrics_port": ...}`` to ``--port-file`` once bound
— then starts the :class:`~repro.cluster.router.ClusterRouter` over
the live shard map and publishes the whole topology to
``<state-root>/cluster.json`` (the file tests and operators read to
find ports and PIDs, e.g. to ``kill -9`` a shard).

Failure policy: a shard that exits **nonzero** (or by signal — a
``kill -9`` shows up as ``-9``) is restarted after a short backoff;
the restarted process recovers from its snapshot + WAL tail, the
router's shard map is updated with the new port, and ``cluster.json``
is rewritten.  A shard that exits **zero** finished a drain — it is
not restarted, and once every shard drained the supervisor's
:meth:`wait` returns.  Each shard's stdout/stderr goes to
``<state-dir>/shard-<i>.log`` (the CI smoke job uploads these on
failure).

The supervisor also serves an optional HTTP endpoint
(``--metrics-port``): ``/stats.json`` is the router's *aggregated*
cluster snapshot (refreshed in the background — HTTP handlers must
not await), ``/cluster.json`` the live topology, ``/healthz`` the
per-shard liveness.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import os
import sys
from typing import Dict, List, Optional

from ..obs.http import ObsHttpServer
from .router import ClusterRouter, ShardAddress

__all__ = ["ClusterSupervisor"]

log = logging.getLogger("repro.cluster.supervisor")


class ClusterSupervisor:
    """Owns N shard subprocesses, their router, and ``cluster.json``."""

    def __init__(self, shards: int, state_root: str,
                 host: str = "127.0.0.1", router_port: int = 0,
                 metric: str = "combined", n: int = 2, seed: int = 0,
                 lease_ttl: float = 30.0,
                 snapshot_interval: float = 5.0,
                 kernel: str = "fast",
                 metrics_port: Optional[int] = None,
                 max_restarts: int = 20,
                 restart_backoff: float = 0.25,
                 spawn_timeout: float = 30.0,
                 stats_refresh: float = 1.0,
                 codec: str = "json",
                 steal_watermark: Optional[int] = None):
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        self.shards = shards
        self.state_root = state_root
        self.host = host
        self.router_port = router_port
        self.metric = metric
        self.n = n
        self.seed = seed
        self.lease_ttl = lease_ttl
        self.snapshot_interval = snapshot_interval
        self.kernel = kernel
        self.metrics_port = metrics_port
        self.max_restarts = max_restarts
        self.restart_backoff = restart_backoff
        self.spawn_timeout = spawn_timeout
        self.stats_refresh = stats_refresh
        #: ``--codec`` stance for the router's own shard streams.
        self.codec = codec
        #: Enables shard-to-shard work stealing when set (and there
        #: is more than one shard to steal from).
        self.steal_watermark = steal_watermark
        self.router: Optional[ClusterRouter] = None
        self.obs_server: Optional[ObsHttpServer] = None
        self._procs: Dict[int, asyncio.subprocess.Process] = {}
        self._ports: Dict[int, int] = {}
        self._metrics_ports: Dict[int, Optional[int]] = {}
        self._restarts: Dict[int, int] = {index: 0
                                          for index in range(shards)}
        self._log_handles: Dict[int, object] = {}
        self._monitors: List[asyncio.Task] = []
        self._refresher: Optional[asyncio.Task] = None
        self._stats_cache: Dict = {}
        self._drained_shards: set = set()
        self._all_drained = asyncio.Event()
        self._stopping = False

    # -- paths -------------------------------------------------------
    def shard_state_dir(self, index: int) -> str:
        return os.path.join(self.state_root, f"shard-{index}")

    def _port_file(self, index: int) -> str:
        return os.path.join(self.shard_state_dir(index), "port.json")

    def shard_log_path(self, index: int) -> str:
        return os.path.join(self.shard_state_dir(index),
                            f"shard-{index}.log")

    @property
    def cluster_file(self) -> str:
        return os.path.join(self.state_root, "cluster.json")

    # -- lifecycle ---------------------------------------------------
    async def start(self) -> None:
        os.makedirs(self.state_root, exist_ok=True)
        for index in range(self.shards):
            await self._spawn(index)
        self.router = ClusterRouter(
            [ShardAddress(index, self.host, self._ports[index])
             for index in range(self.shards)],
            host=self.host, port=self.router_port,
            upstream_codec=self.codec)
        await self.router.start()
        self.router_port = self.router.port
        if self.metrics_port is not None:
            self.obs_server = ObsHttpServer(
                registry=None, host=self.host, port=self.metrics_port,
                json_routes={
                    "/stats.json": lambda: self._stats_cache,
                    "/cluster.json": self.describe,
                },
                health=self._health)
            await self.obs_server.start()
            self.metrics_port = self.obs_server.port
        loop = asyncio.get_running_loop()
        self._monitors = [loop.create_task(self._monitor(index))
                          for index in range(self.shards)]
        self._refresher = loop.create_task(self._refresh_stats())
        self._write_cluster_file()
        log.info("cluster up: router %s:%d over %d shard(s); "
                 "topology in %s", self.host, self.router_port,
                 self.shards, self.cluster_file)

    async def wait(self) -> None:
        """Blocks until every shard drained (exited zero)."""
        await self._all_drained.wait()

    async def stop(self) -> None:
        self._stopping = True
        for task in self._monitors + (
                [self._refresher] if self._refresher else []):
            task.cancel()
        for task in self._monitors:
            with contextlib.suppress(asyncio.CancelledError):
                await task
        if self._refresher is not None:
            with contextlib.suppress(asyncio.CancelledError):
                await self._refresher
            self._refresher = None
        self._monitors = []
        for index, proc in list(self._procs.items()):
            if proc.returncode is None:
                proc.terminate()
                try:
                    await asyncio.wait_for(proc.wait(), timeout=5)
                except asyncio.TimeoutError:
                    proc.kill()
                    await proc.wait()
        if self.obs_server is not None:
            await self.obs_server.stop()
            self.obs_server = None
        if self.router is not None:
            await self.router.stop()
        for handle in self._log_handles.values():
            handle.close()
        self._log_handles.clear()

    # -- shard processes ---------------------------------------------
    def _shard_command(self, index: int) -> List[str]:
        command = [
            sys.executable, "-m", "repro", "serve",
            "--host", self.host, "--port", "0",
            "--metrics-port", "0",
            "--metric", self.metric, "--n", str(self.n),
            "--seed", str(self.seed), "--kernel", self.kernel,
            "--lease-ttl", str(self.lease_ttl),
            "--state-dir", self.shard_state_dir(index),
            "--snapshot-interval", str(self.snapshot_interval),
            "--shard-index", str(index),
            "--shard-count", str(self.shards),
            "--port-file", self._port_file(index),
        ]
        if self.steal_watermark is not None and self.shards > 1:
            command += ["--steal-watermark",
                        str(self.steal_watermark),
                        "--cluster-file", self.cluster_file]
        return command

    def _shard_env(self) -> Dict[str, str]:
        env = dict(os.environ)
        # The shard must import the same ``repro`` this process runs.
        package_root = os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))
        existing = env.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                package_root + (os.pathsep + existing
                                if existing else ""))
        return env

    async def _spawn(self, index: int) -> None:
        state_dir = self.shard_state_dir(index)
        os.makedirs(state_dir, exist_ok=True)
        port_file = self._port_file(index)
        with contextlib.suppress(FileNotFoundError):
            os.remove(port_file)  # never read a stale handshake
        old_handle = self._log_handles.pop(index, None)
        if old_handle is not None:
            old_handle.close()
        log_handle = open(self.shard_log_path(index), "a",
                          encoding="utf-8")
        self._log_handles[index] = log_handle
        proc = await asyncio.create_subprocess_exec(
            *self._shard_command(index),
            stdout=log_handle, stderr=log_handle,
            env=self._shard_env())
        self._procs[index] = proc
        ports = await self._await_port_file(index, proc)
        self._ports[index] = ports["port"]
        self._metrics_ports[index] = ports.get("metrics_port")
        log.info("shard %d up: pid %d, port %d (log: %s)", index,
                 proc.pid, ports["port"], self.shard_log_path(index))

    async def _await_port_file(self, index: int,
                               proc: asyncio.subprocess.Process,
                               ) -> Dict:
        """Poll for the shard's bound-ports handshake file."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.spawn_timeout
        port_file = self._port_file(index)
        while True:
            try:
                with open(port_file, "r", encoding="utf-8") as handle:
                    ports = json.load(handle)
                if isinstance(ports.get("port"), int):
                    return ports
            except (FileNotFoundError, json.JSONDecodeError):
                pass  # not written (fully) yet
            if proc.returncode is not None:
                raise RuntimeError(
                    f"shard {index} exited with {proc.returncode} "
                    f"during startup; see "
                    f"{self.shard_log_path(index)}")
            if loop.time() >= deadline:
                raise RuntimeError(
                    f"shard {index} did not report its port within "
                    f"{self.spawn_timeout:.0f}s")
            await asyncio.sleep(0.05)

    async def _monitor(self, index: int) -> None:
        """Restart on crash; mark drained on clean (zero) exit."""
        while True:
            proc = self._procs[index]
            returncode = await proc.wait()
            if self._stopping:
                return
            if returncode == 0:
                log.info("shard %d drained (pid %d)", index, proc.pid)
                self._drained_shards.add(index)
                self._write_cluster_file()
                if len(self._drained_shards) == self.shards:
                    self._all_drained.set()
                return
            self._restarts[index] += 1
            if self._restarts[index] > self.max_restarts:
                log.error("shard %d exceeded %d restarts; giving up",
                          index, self.max_restarts)
                self._drained_shards.add(index)
                if len(self._drained_shards) == self.shards:
                    self._all_drained.set()
                return
            log.warning("shard %d (pid %d) exited with %s; "
                        "restarting (%d/%d)", index, proc.pid,
                        returncode, self._restarts[index],
                        self.max_restarts)
            await asyncio.sleep(self.restart_backoff)
            await self._spawn(index)
            self.router.update_shard(ShardAddress(
                index, self.host, self._ports[index]))
            self._write_cluster_file()

    # -- topology + stats --------------------------------------------
    def describe(self) -> Dict:
        return {
            "router": {"host": self.host, "port": self.router_port},
            "metrics": ({"host": self.host, "port": self.metrics_port}
                        if self.metrics_port is not None else None),
            "shard_count": self.shards,
            "partition": "job-mod",
            "steal_watermark": self.steal_watermark,
            "shards": [
                {"shard": index,
                 "pid": (self._procs[index].pid
                         if index in self._procs else None),
                 "host": self.host,
                 "port": self._ports.get(index),
                 "metrics_port": self._metrics_ports.get(index),
                 "state_dir": self.shard_state_dir(index),
                 "log": self.shard_log_path(index),
                 "restarts": self._restarts[index],
                 "drained": index in self._drained_shards}
                for index in range(self.shards)],
        }

    def _health(self) -> Dict:
        alive = sum(1 for proc in self._procs.values()
                    if proc.returncode is None)
        return {"status": "ok" if alive or self._all_drained.is_set()
                          else "down",
                "shards": self.shards, "alive": alive,
                "drained": len(self._drained_shards)}

    def _write_cluster_file(self) -> None:
        tmp_path = self.cluster_file + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(self.describe(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, self.cluster_file)

    async def _refresh_stats(self) -> None:
        """Keep the HTTP ``/stats.json`` cache warm (handlers are
        sync, aggregation awaits the shards)."""
        while True:
            try:
                self._stats_cache = await self.router.aggregated_stats()
            except Exception:  # noqa: BLE001 - keep refreshing
                log.exception("cluster stats refresh failed")
            await asyncio.sleep(self.stats_refresh)
