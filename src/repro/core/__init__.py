"""Scheduling policies: the paper's contribution plus baselines.

* :class:`WorkerCentricScheduler` — the basic algorithm (Figure 2) with
  the overlap / rest / combined metrics and ChooseTask(n).
* :class:`StorageAffinityScheduler` — the task-centric baseline with
  data reuse and task replication.
* :class:`WorkqueueScheduler` — FIFO / random data-blind baselines.
* :class:`DataReplicator` — orthogonal proactive data replication.
* :class:`OverlapIndex` — incremental overlap/reference bookkeeping.
* :func:`create_scheduler` — name-based factory ("combined.2", ...).
"""

from .base import BaseScheduler
from .metrics import (METRICS, TaskView, combined_literal_metric,
                      combined_metric, overlap_metric, rest_metric,
                      rest_weight)
from .overlap_index import OverlapIndex
from .policy_engine import PolicyEngine, SiteFileState
from .reference import NaiveWorkerCentricScheduler
from .registry import (PAPER_ALGORITHMS, available_schedulers,
                       create_scheduler)
from .replication import DataReplicator
from .spatial_clustering import SpatialClusteringScheduler, cluster_tasks
from .storage_affinity import StorageAffinityScheduler
from .worker_centric import WorkerCentricScheduler
from .workqueue import WorkqueueScheduler
from .xsufferage import XSufferageScheduler

__all__ = [
    "BaseScheduler",
    "DataReplicator",
    "METRICS",
    "NaiveWorkerCentricScheduler",
    "OverlapIndex",
    "PAPER_ALGORITHMS",
    "PolicyEngine",
    "SiteFileState",
    "SpatialClusteringScheduler",
    "XSufferageScheduler",
    "cluster_tasks",
    "StorageAffinityScheduler",
    "TaskView",
    "WorkerCentricScheduler",
    "WorkqueueScheduler",
    "available_schedulers",
    "combined_literal_metric",
    "combined_metric",
    "create_scheduler",
    "overlap_metric",
    "rest_metric",
    "rest_weight",
]
