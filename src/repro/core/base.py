"""Shared scheduler machinery: completion tracking and job termination.

Every policy (worker-centric, storage affinity, workqueue, ...) extends
:class:`BaseScheduler`, which implements the bookkeeping the
:class:`~repro.grid.scheduler_api.GridScheduler` contract requires:
which tasks have completed, duplicate-completion tolerance (needed under
replication), and the ``job_done`` event the runner waits on.
"""

from __future__ import annotations

import typing
from typing import Optional, Set

from ..analysis.trace import TaskAssigned
from ..grid.job import Job, Task
from ..grid.scheduler_api import GridScheduler
from ..sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from ..grid.cluster import Grid
    from ..grid.worker import Worker


class BaseScheduler(GridScheduler):
    """Completion bookkeeping common to all policies."""

    #: Policies that can accept asynchronously arriving tasks override
    #: this and implement ``release_tasks``; offline planners (e.g.
    #: spatial clustering, storage affinity's initial distribution)
    #: leave it False — the limitation the paper calls out.
    supports_dynamic_release = False

    def __init__(self, job: Job):
        self.job = job
        self._completed: Set[int] = set()
        self._job_done: Optional[Event] = None

    # -- GridScheduler -----------------------------------------------------
    def bind(self, grid: "Grid") -> None:
        if self._job_done is not None:
            raise RuntimeError("scheduler already bound to a grid")
        self.grid = grid
        self._job_done = Event(grid.env)
        if len(self.job) == 0:
            self._job_done.succeed()
        self._on_bound()

    def _on_bound(self) -> None:
        """Policy hook: called once the grid is attached."""

    @property
    def job_done(self) -> Event:
        if self._job_done is None:
            raise RuntimeError("scheduler is not bound yet")
        return self._job_done

    @property
    def tasks_remaining(self) -> int:
        return len(self.job) - len(self._completed)

    def is_completed(self, task_id: int) -> bool:
        return task_id in self._completed

    def notify_complete(self, worker: "Worker", task: Task) -> None:
        if task.task_id in self._completed:
            self._on_duplicate_completion(worker, task)
            return
        self._completed.add(task.task_id)
        self._on_first_completion(worker, task)
        if len(self._completed) == len(self.job):
            self._job_done.succeed()

    # -- policy hooks ------------------------------------------------------
    def _on_first_completion(self, worker: "Worker", task: Task) -> None:
        """Policy hook: first completion of ``task``."""

    def _on_duplicate_completion(self, worker: "Worker",
                                 task: Task) -> None:
        """Policy hook: a replica finished after the task completed."""

    # -- helpers -----------------------------------------------------------
    def _trace_assignment(self, worker: "Worker", task: Task) -> None:
        self.grid.trace.emit(TaskAssigned(
            time=self.grid.env.now, task_id=task.task_id,
            worker=worker.name, site=worker.site.site_id))
