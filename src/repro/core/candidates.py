"""Integer-keyed candidate buckets for sublinear ChooseTask(n).

The ``overlap`` and ``rest`` metrics weigh a task by a *monotone*
function of one small integer — the overlap cardinality ``|F_t|`` or
the missing-file count ``|t| - |F_t|`` — so the top-n candidates at a
site are exactly the first n task ids found by walking the buckets of
that integer in weight order (best key first, ascending task id within
a key, since equal keys mean bit-equal weights and the engine breaks
ties by lowest id).

:class:`CandidateBuckets` maintains key -> ordered-task-id buckets
under the overlap index's O(1)-per-event update discipline:

* ``add`` / ``move`` / ``remove`` cost O(log b) in the bucket size
  (one heap push plus set/dict updates) — effectively constant;
* ``top(n)`` walks the non-empty keys in sorted order and pops the n
  smallest *live* ids using per-bucket lazy-deletion heaps, touching
  O(n + stale entries + buckets visited) entries instead of every
  candidate.  Stale heap entries (ids that moved or left) are dropped
  permanently when encountered, so each costs O(log b) once, amortized
  against the mutation that created it.

The number of distinct keys is bounded by the largest per-task file
count (single digits for the paper's workloads), never by the pending
queue depth — which is what makes the decision kernel sublinear in T.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional, Set, Tuple


class CandidateBuckets:
    """Mutable key -> ordered set of task ids, with ranked retrieval."""

    __slots__ = ("_key_of", "_live", "_heaps")

    def __init__(self) -> None:
        self._key_of: Dict[int, int] = {}       # task id -> current key
        self._live: Dict[int, Set[int]] = {}    # key -> live task ids
        self._heaps: Dict[int, List[int]] = {}  # key -> lazy min-heap

    # -- mutation --------------------------------------------------------
    def add(self, task_id: int, key: int) -> None:
        """Track ``task_id`` under ``key``; it must not be tracked yet."""
        if task_id in self._key_of:
            raise ValueError(f"task {task_id} already bucketed "
                             f"(key {self._key_of[task_id]})")
        self._key_of[task_id] = key
        live = self._live.get(key)
        if live is None:
            live = self._live[key] = set()
            self._heaps[key] = []
        live.add(task_id)
        heapq.heappush(self._heaps[key], task_id)

    def remove(self, task_id: int) -> None:
        """Stop tracking ``task_id`` (its heap entry dies lazily)."""
        key = self._key_of.pop(task_id)  # KeyError if not tracked
        live = self._live[key]
        live.discard(task_id)
        if not live:
            # Dropping the whole bucket also discards any stale heap
            # entries in one go; a future add rebuilds it fresh.
            del self._live[key]
            del self._heaps[key]

    def move(self, task_id: int, key: int) -> None:
        """Re-bucket ``task_id`` under a new key (overlap changed)."""
        self.remove(task_id)
        self.add(task_id, key)

    # -- queries ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self._key_of)

    def __contains__(self, task_id: int) -> bool:
        return task_id in self._key_of

    def key_of(self, task_id: int) -> Optional[int]:
        return self._key_of.get(task_id)

    def keys(self, reverse: bool = False) -> List[int]:
        """Non-empty bucket keys, sorted (count, not queue-sized)."""
        return sorted(self._live, reverse=reverse)

    def smallest(self, key: int, count: int) -> List[int]:
        """The ``count`` smallest live ids under ``key``, ascending.

        Pops the bucket's lazy heap: stale entries (removed or moved
        ids) and duplicates are dropped permanently, live ids that were
        merely inspected are pushed back, so repeated retrievals stay
        cheap and the heap never grows beyond total inserts.
        """
        live = self._live.get(key)
        if not live or count <= 0:
            return []
        heap = self._heaps[key]
        taken: List[int] = []
        seen: Set[int] = set()
        while heap and len(taken) < count:
            task_id = heapq.heappop(heap)
            if task_id in live and task_id not in seen:
                taken.append(task_id)
                seen.add(task_id)
            # else: stale (moved/removed) or a duplicate entry from a
            # remove-then-re-add cycle — drop it for good.
        for task_id in taken:
            heapq.heappush(heap, task_id)
        return taken

    def top(self, count: int, reverse: bool = False
            ) -> List[Tuple[int, int]]:
        """The best ``count`` candidates as ``(key, task_id)`` pairs.

        ``reverse=False`` ranks the *smallest* key best (missing-count
        buckets for ``rest``); ``reverse=True`` ranks the largest key
        best (overlap-count buckets for ``overlap``).  Within a key,
        ascending task id.  The result is sorted best-first.
        """
        out: List[Tuple[int, int]] = []
        for key in sorted(self._live, reverse=reverse):
            for task_id in self.smallest(key, count - len(out)):
                out.append((key, task_id))
            if len(out) >= count:
                break
        return out

    # -- verification ----------------------------------------------------
    def as_dict(self) -> Dict[int, int]:
        """``{task_id: key}`` snapshot (invariant checks in tests)."""
        return dict(self._key_of)

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(self._key_of.items())

    def check(self) -> None:
        """Raise AssertionError if internal structures disagree."""
        rebuilt: Dict[int, Set[int]] = {}
        for task_id, key in self._key_of.items():
            rebuilt.setdefault(key, set()).add(task_id)
        assert rebuilt == self._live, (rebuilt, self._live)
        assert set(self._heaps) == set(self._live)
        for key, live in self._live.items():
            assert live <= set(self._heaps[key]), (
                f"live ids missing from heap for key {key}")
