"""CalculateWeight(): the paper's three scheduling metrics.

Terminology (Section 4.2):

* ``|t|`` — number of files task *t* needs,
* ``F_t`` — files of *t* currently resident at the requesting worker's
  site storage (``|F_t|`` is the *overlap cardinality*),
* ``r_i`` — past references of file *i* at that site,
* ``ref_t = Σ_{i ∈ F_t} r_i``,
* ``rest_t = 1 / (|t| - |F_t|)``,
* ``totalRef = Σ_{t ∈ T} ref_t`` and ``totalRest = Σ_{t ∈ T} rest_t``
  over the pending task set *T*.

Metrics:

* **overlap** — ``w(t) = |F_t|``; maximize reuse of resident data.
* **rest** — ``w(t) = rest_t``; minimize the files still to transfer.
* **combined** — the paper's printed formula is
  ``ref_t/totalRef + totalRest/rest_t``, whose second term *grows* with
  the number of missing files, contradicting the stated goal
  ("minimizes the number of files that need to be transferred as well
  as to prefer workers that accessed the same files in the past").  We
  implement the intent-consistent normalization
  ``w(t) = ref_t/totalRef + rest_t/totalRest`` as ``combined`` and keep
  the literal printed formula as ``combined-literal`` for comparison.

Tasks whose inputs are all resident have ``|t| - |F_t| = 0``; the paper
leaves ``rest_t`` undefined there.  We cap the denominator at 1/2, so a
fully-resident task scores twice as high as a one-missing task and is
always preferred, preserving the metric's ordering intent.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

#: Denominator floor for ``rest`` when a task has no missing files.
_REST_FLOOR = 0.5


def rest_weight(missing: int) -> float:
    """``rest_t`` for a task with ``missing`` non-resident files."""
    if missing < 0:
        raise ValueError(f"missing must be >= 0, got {missing}")
    return 1.0 / max(missing, _REST_FLOOR)


def rest_weight_exact(missing: int) -> Fraction:
    """``rest_t`` as an exact rational.

    Aggregates like ``totalRest`` are maintained incrementally by the
    scheduler; in floating point the accumulation order would leave
    last-bit drift, and mathematically *tied* tasks would then break
    ties differently than a direct recomputation (observed in
    equivalence testing).  Summing exact rationals makes the aggregate
    — and therefore tie-breaking — well-defined everywhere; the final
    weight is still computed in floats from identical ingredients.
    """
    if missing < 0:
        raise ValueError(f"missing must be >= 0, got {missing}")
    if missing == 0:
        return Fraction(2)  # 1 / REST_FLOOR
    return Fraction(1, missing)


@dataclass(frozen=True)
class TaskView:
    """Everything a metric may look at for one (task, site) pair.

    Produced by the scheduler from its incremental
    :class:`~repro.core.overlap_index.OverlapIndex`; all fields are O(1)
    reads.
    """

    task_id: int
    num_files: int     #: |t|
    overlap: int       #: |F_t|
    refsum: float      #: ref_t
    total_refsum: float    #: totalRef over pending tasks at this site
    total_rest: float      #: totalRest over pending tasks at this site

    @property
    def missing(self) -> int:
        return self.num_files - self.overlap

    @property
    def rest(self) -> float:
        return rest_weight(self.missing)


def overlap_metric(view: TaskView) -> float:
    """The *overlap* metric: ``w(t) = |F_t|``."""
    return float(view.overlap)


def rest_metric(view: TaskView) -> float:
    """The *rest* metric: ``w(t) = 1 / (|t| - |F_t|)``."""
    return view.rest


def combined_metric(view: TaskView) -> float:
    """The *combined* metric, intent-consistent normalization.

    ``w(t) = ref_t / totalRef + rest_t / totalRest``; the first term is
    0 when no file was ever referenced (totalRef == 0).
    """
    ref_term = (view.refsum / view.total_refsum
                if view.total_refsum > 0 else 0.0)
    rest_term = (view.rest / view.total_rest
                 if view.total_rest > 0 else 0.0)
    return ref_term + rest_term


def combined_literal_metric(view: TaskView) -> float:
    """The *combined* metric exactly as printed in the paper.

    ``w(t) = ref_t / totalRef + totalRest / rest_t``.  Kept for the
    ablation study; see the module docstring.
    """
    ref_term = (view.refsum / view.total_refsum
                if view.total_refsum > 0 else 0.0)
    return ref_term + view.total_rest / view.rest


#: Metric name -> weight function.
METRICS = {
    "overlap": overlap_metric,
    "rest": rest_metric,
    "combined": combined_metric,
    "combined-literal": combined_literal_metric,
}


# -- allocation-free fast-path scorers ---------------------------------------
#
# The TaskView dataclass is the right interface for correctness code,
# but building one frozen dataclass per task scored dominates the
# decision loop at large queue depths.  These scorers compute the same
# weights from the raw integers/floats the overlap index already holds
# — the arithmetic is expression-for-expression identical to the
# TaskView metrics above, so the resulting floats are bit-equal (the
# differential suite in tests/test_policy_fast_path.py pins this).

def fast_overlap(num_files: int, overlap: int, refsum: float,
                 total_refsum: float, total_rest: float) -> float:
    """``overlap_metric`` without the TaskView."""
    return float(overlap)


def fast_rest(num_files: int, overlap: int, refsum: float,
              total_refsum: float, total_rest: float) -> float:
    """``rest_metric`` without the TaskView."""
    missing = num_files - overlap
    return 1.0 / max(missing, _REST_FLOOR)


def fast_combined(num_files: int, overlap: int, refsum: float,
                  total_refsum: float, total_rest: float) -> float:
    """``combined_metric`` without the TaskView."""
    missing = num_files - overlap
    ref_term = refsum / total_refsum if total_refsum > 0 else 0.0
    rest = 1.0 / max(missing, _REST_FLOOR)
    rest_term = rest / total_rest if total_rest > 0 else 0.0
    return ref_term + rest_term


def fast_combined_literal(num_files: int, overlap: int, refsum: float,
                          total_refsum: float,
                          total_rest: float) -> float:
    """``combined_literal_metric`` without the TaskView."""
    missing = num_files - overlap
    ref_term = refsum / total_refsum if total_refsum > 0 else 0.0
    rest = 1.0 / max(missing, _REST_FLOOR)
    return ref_term + total_rest / rest


#: Metric name -> raw-argument scorer (fast path).  Signature:
#: ``scorer(num_files, overlap, refsum, total_refsum, total_rest)``.
FAST_SCORERS = {
    "overlap": fast_overlap,
    "rest": fast_rest,
    "combined": fast_combined,
    "combined-literal": fast_combined_literal,
}

#: Metrics whose weight is a monotone function of one small integer
#: (the bucket key), so unscoped top-n retrieval can walk the
#: candidate buckets instead of scoring every candidate:
#:   * ``overlap`` — w = |F_t|, increasing in the overlap count;
#:   * ``rest`` — w = 1/max(|t|-|F_t|, 1/2), strictly decreasing in
#:     the missing count.
#: ``combined``/``combined-literal`` mix in the global normalizers
#: totalRef/totalRest, so no order-preserving per-task integer key
#: exists and they stay on the scoring loop.
BUCKETED_METRICS = frozenset({"overlap", "rest"})

#: How zero-overlap tasks rank under each metric.  All zero-overlap
#: tasks share ``refsum = 0`` and ``overlap = 0``, so their relative
#: order depends only on |t|:
#:   * ``overlap`` — all weigh 0: order by task id (FIFO).
#:   * ``rest`` / ``combined`` — fewest files wins ("min_files").
#:   * ``combined-literal`` — most files wins ("max_files"), because the
#:     printed second term grows with the missing-file count.
ZERO_OVERLAP_ORDER = {
    "overlap": "fifo",
    "rest": "min_files",
    "combined": "min_files",
    "combined-literal": "max_files",
}
