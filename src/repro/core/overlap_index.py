"""Incremental overlap/reference bookkeeping per (site, pending task).

The basic algorithm scores every pending task on every worker request —
O(T·I) as the paper notes.  A naive rescan is quadratic over the whole
run and dominates simulation time, so the scheduler instead maintains,
per site:

* ``overlap[t] = |F_t|`` for every pending task with nonzero overlap,
* ``refsum[t] = ref_t = Σ_{i ∈ F_t} r_i`` for the same tasks,
* the aggregates ``totalRef`` and ``totalRest`` over *all* pending
  tasks,

updated from storage insert/evict/touch notifications through an
inverted file → pending-tasks index.  Each storage change costs
O(tasks referencing that file) — about 9 for Coadd — instead of O(T·I)
per request.

:meth:`OverlapIndex.view` then assembles the O(1)
:class:`~repro.core.metrics.TaskView` a metric needs, and the naive
recomputation (:meth:`naive_overlap`, :meth:`naive_refsum`) is kept for
cross-checking in tests and the index-vs-rescan ablation benchmark.

On top of the per-task counters each site keeps two
:class:`~repro.core.candidates.CandidateBuckets` — overlap-count →
task ids and missing-count → task ids — maintained in step with
``overlap[t]``.  They give the policy engine's fast path ranked
candidate retrieval without scanning (``overlap``/``rest`` weights are
monotone in those integer keys); see ``docs/performance.md``.

``totalRest`` decomposes as::

    totalRest = Σ_{t pending} rest(|t| - ov_t)
              = Σ_{t pending} rest(|t|)                   # site-independent
              + Σ_{t: ov_t > 0} rest(|t| - ov_t) - rest(|t|)   # per site

The first sum (``rest_base``) changes only when the pending set
changes; the per-site correction changes only when an overlap count
changes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from ..grid.job import Job, Task
from ..grid.storage import SiteStorage
from fractions import Fraction

from .candidates import CandidateBuckets
from .metrics import TaskView, rest_weight, rest_weight_exact


class _SiteState:
    """Per-site incremental counters."""

    __slots__ = ("storage", "overlap", "refsum", "total_refsum",
                 "rest_correction", "by_overlap", "by_missing")

    def __init__(self, storage: SiteStorage):
        self.storage = storage
        self.overlap: Dict[int, int] = {}
        self.refsum: Dict[int, float] = {}
        self.total_refsum = 0.0
        #: Exact rational: Sum over overlapped tasks of
        #: rest(missing) - rest(|t|).  See metrics.rest_weight_exact.
        self.rest_correction = Fraction(0)
        #: Candidate buckets over the *nonzero-overlap* tasks (exactly
        #: the key set of ``overlap``), keyed two ways for the two
        #: bucketable metrics: overlap count (``overlap`` metric walks
        #: them descending) and missing count (``rest`` walks them
        #: ascending).  Zero-overlap tasks stay on the engine's shared
        #: zero-candidate heap, as before.
        self.by_overlap = CandidateBuckets()
        self.by_missing = CandidateBuckets()

    def bucket_add(self, tid: int, size: int, ov: int) -> None:
        self.by_overlap.add(tid, ov)
        self.by_missing.add(tid, size - ov)

    def bucket_move(self, tid: int, size: int, ov: int) -> None:
        self.by_overlap.move(tid, ov)
        self.by_missing.move(tid, size - ov)

    def bucket_remove(self, tid: int) -> None:
        self.by_overlap.remove(tid)
        self.by_missing.remove(tid)


class OverlapIndex:
    """Maintains overlap cardinalities and reference sums incrementally."""

    def __init__(self, job: Job, tasks: Optional[Iterable[Task]] = None):
        """Track ``tasks`` (default: every task of ``job``) as pending."""
        self.job = job
        self._file_to_tasks: Dict[int, Set[int]] = {}
        self._pending: Set[int] = set()
        self._sites: Dict[int, _SiteState] = {}
        self._rest_base = Fraction(0)
        for task in (job if tasks is None else tasks):
            self.add_task(task)

    # -- wiring ------------------------------------------------------------
    def watch_site(self, site_id: int, storage: SiteStorage) -> None:
        """Track ``storage`` as site ``site_id`` (subscribes listeners).

        Any files already resident are folded in immediately.
        """
        if site_id in self._sites:
            raise ValueError(f"site {site_id} already watched")
        state = _SiteState(storage)
        self._sites[site_id] = state
        storage.on_insert(lambda fid, s=state: self._on_insert(s, fid))
        storage.on_evict(lambda fid, s=state: self._on_evict(s, fid))
        storage.on_touch(lambda fid, s=state: self._on_touch(s, fid))
        for fid in storage.resident_files:
            self._on_insert(state, fid)

    # -- pending-set management --------------------------------------------
    @property
    def pending_tasks(self) -> Set[int]:
        """Ids of tasks currently tracked (read-only view by convention)."""
        return self._pending

    def add_task(self, task: Task) -> None:
        """Track a pending task (initial load, or a requeue)."""
        tid = task.task_id
        if tid in self._pending:
            raise ValueError(f"task {tid} already pending")
        self._pending.add(tid)
        self._rest_base += rest_weight_exact(task.num_files)
        for fid in task.files:
            self._file_to_tasks.setdefault(fid, set()).add(tid)
        # Fold in any storage that already holds some of its files.
        for state in self._sites.values():
            ov = state.storage.overlap(task.files)
            if ov:
                state.overlap[tid] = ov
                state.bucket_add(tid, task.num_files, ov)
                ref = sum(state.storage.reference_count(fid)
                          for fid in task.files if fid in state.storage)
                state.refsum[tid] = ref
                state.total_refsum += ref
                state.rest_correction += (
                    rest_weight_exact(task.num_files - ov)
                    - rest_weight_exact(task.num_files))

    def remove_task(self, task: Task) -> None:
        """Stop tracking a task (it was assigned or completed)."""
        tid = task.task_id
        if tid not in self._pending:
            raise KeyError(f"task {tid} is not pending")
        self._pending.remove(tid)
        self._rest_base -= rest_weight_exact(task.num_files)
        for fid in task.files:
            referers = self._file_to_tasks.get(fid)
            if referers is not None:
                referers.discard(tid)
                if not referers:
                    del self._file_to_tasks[fid]
        for state in self._sites.values():
            ov = state.overlap.pop(tid, 0)
            if ov:
                state.bucket_remove(tid)
                state.total_refsum -= state.refsum.pop(tid, 0.0)
                state.rest_correction -= (
                    rest_weight_exact(task.num_files - ov)
                    - rest_weight_exact(task.num_files))

    # -- storage listeners ---------------------------------------------
    def _on_insert(self, state: _SiteState, fid: int) -> None:
        tasks = self._file_to_tasks.get(fid)
        if not tasks:
            return
        ref = state.storage.reference_count(fid)
        for tid in tasks:
            size = self.job[tid].num_files
            old = state.overlap.get(tid, 0)
            state.overlap[tid] = old + 1
            if old:
                state.bucket_move(tid, size, old + 1)
            else:
                state.bucket_add(tid, size, 1)
            state.rest_correction += (rest_weight_exact(size - old - 1)
                                      - rest_weight_exact(size - old))
            if ref:
                state.refsum[tid] = state.refsum.get(tid, 0.0) + ref
                state.total_refsum += ref
            elif tid not in state.refsum:
                state.refsum[tid] = 0.0

    def _on_evict(self, state: _SiteState, fid: int) -> None:
        tasks = self._file_to_tasks.get(fid)
        if not tasks:
            return
        ref = state.storage.reference_count(fid)
        for tid in tasks:
            size = self.job[tid].num_files
            old = state.overlap[tid]
            state.rest_correction += (rest_weight_exact(size - old + 1)
                                      - rest_weight_exact(size - old))
            if old == 1:
                del state.overlap[tid]
                state.bucket_remove(tid)
                state.total_refsum -= state.refsum.pop(tid, 0.0)
            else:
                state.overlap[tid] = old - 1
                state.bucket_move(tid, size, old - 1)
                if ref:
                    state.refsum[tid] -= ref
                    state.total_refsum -= ref

    def _on_touch(self, state: _SiteState, fid: int) -> None:
        if fid not in state.storage:
            return
        tasks = self._file_to_tasks.get(fid)
        if not tasks:
            return
        for tid in tasks:
            # The file is resident, so every pending referer overlaps it.
            state.refsum[tid] = state.refsum.get(tid, 0.0) + 1
            state.total_refsum += 1

    # -- queries -----------------------------------------------------------
    def nonzero_overlaps(self, site_id: int) -> Dict[int, int]:
        """task id -> |F_t| for pending tasks with overlap > 0."""
        return self._sites[site_id].overlap

    def candidates_by_overlap(self, site_id: int) -> CandidateBuckets:
        """Nonzero-overlap candidates bucketed by overlap count |F_t|.

        ``top(n, reverse=True)`` is the site's top-n under the
        ``overlap`` metric among nonzero-overlap tasks, in O(n +
        buckets touched) instead of a full candidate scan.
        """
        return self._sites[site_id].by_overlap

    def candidates_by_missing(self, site_id: int) -> CandidateBuckets:
        """Nonzero-overlap candidates bucketed by missing count
        ``|t| - |F_t|``; ``top(n)`` is the ``rest`` metric's top-n
        among nonzero-overlap tasks."""
        return self._sites[site_id].by_missing

    def refsums(self, site_id: int) -> Dict[int, float]:
        """task id -> ref_t for pending tasks with overlap > 0.

        Tasks absent from the map have ``ref_t = 0`` (callers use
        ``.get(task_id, 0.0)``); both views are read-only by convention.
        """
        return self._sites[site_id].refsum

    def total_rest(self, site_id: int) -> float:
        """totalRest over the pending set for this site.

        Maintained exactly (rationals) and rounded once here, so the
        value never depends on update order.
        """
        return float(self._rest_base
                     + self._sites[site_id].rest_correction)

    def total_refsum(self, site_id: int) -> float:
        """totalRef over the pending set for this site."""
        return self._sites[site_id].total_refsum

    def view(self, site_id: int, task: Task) -> TaskView:
        """O(1) :class:`TaskView` for one (site, pending task) pair."""
        state = self._sites[site_id]
        return TaskView(
            task_id=task.task_id,
            num_files=task.num_files,
            overlap=state.overlap.get(task.task_id, 0),
            refsum=state.refsum.get(task.task_id, 0.0),
            total_refsum=state.total_refsum,
            total_rest=self.total_rest(site_id),
        )

    # -- reference (naive) implementations, for verification ----------------
    def naive_overlap(self, site_id: int, task: Task) -> int:
        """|F_t| by direct storage scan (cross-check / ablation)."""
        return self._sites[site_id].storage.overlap(task.files)

    def naive_refsum(self, site_id: int, task: Task) -> float:
        """ref_t by direct storage scan (cross-check / ablation)."""
        storage = self._sites[site_id].storage
        return float(sum(storage.reference_count(fid)
                         for fid in task.files if fid in storage))

    def naive_total_rest(self, site_id: int) -> float:
        """totalRest by rescanning every pending task."""
        storage = self._sites[site_id].storage
        return sum(
            rest_weight(self.job[tid].num_files
                        - storage.overlap(self.job[tid].files))
            for tid in self._pending)
