"""Sim-free decision core of the worker-centric scheduler.

:class:`PolicyEngine` is the paper's Figure-2 loop — a pending task
set, the incremental :class:`~repro.core.overlap_index.OverlapIndex`,
``CalculateWeight`` over one of the :mod:`~repro.core.metrics`, and
``ChooseTask(n)`` — with **no dependency on the simulator**.  It can be
driven two ways:

* **inside the simulator** — :meth:`watch_storage` subscribes the index
  to a live :class:`~repro.grid.storage.SiteStorage`, exactly as the
  scheduler always did.  :class:`~repro.core.worker_centric
  .WorkerCentricScheduler` is now a thin sim adapter around this class.
* **outside the simulator** — :meth:`attach_site` creates a
  :class:`SiteFileState` mirror that is updated through explicit
  file-state deltas (:meth:`file_added` / :meth:`file_removed` /
  :meth:`file_referenced`).  This is how the live
  :mod:`repro.serve` scheduler daemon runs the same policy over TCP:
  workers report what entered/left their site cache and the engine
  keeps score.

Both paths feed the same index through the same listener interface, so
a delta stream replayed from a simulation reproduces the simulator's
decisions bit-for-bit (property-tested via :mod:`repro.serve.replay`).
"""

from __future__ import annotations

import heapq
import random
from bisect import insort
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..grid.job import Task
from .metrics import (BUCKETED_METRICS, FAST_SCORERS, METRICS,
                      ZERO_OVERLAP_ORDER, TaskView, rest_weight)
from .overlap_index import OverlapIndex


def _offer(ranked: List[Tuple[float, int]], neg_weight: float,
           task_id: int, n: int) -> None:
    """Offer one candidate into a bounded ranked list.

    ``ranked`` is kept sorted ascending by ``(-weight, task_id)`` —
    best candidate first — and never grows beyond ``n`` entries.  The
    common case (candidate is no better than the current tail of a
    full list) is a single tuple comparison; an accepted candidate
    costs one ``bisect.insort`` into a list of at most ``n`` items,
    not a re-sort.
    """
    if len(ranked) >= n:
        tail = ranked[-1]
        if neg_weight > tail[0] or (neg_weight == tail[0]
                                    and task_id > tail[1]):
            return
        ranked.pop()
    insort(ranked, (neg_weight, task_id))


class SiteFileState:
    """A site's file state mirrored from explicit deltas.

    Duck-types the slice of :class:`~repro.grid.storage.SiteStorage`
    the :class:`OverlapIndex` consumes — membership, ``overlap``,
    ``reference_count``, ``resident_files`` and the
    insert/evict/touch listener hooks — but holds no eviction policy of
    its own: whoever feeds the deltas (a remote worker's cache, a
    replayed simulation) decides what is resident.
    """

    def __init__(self) -> None:
        self._resident: Dict[int, None] = {}
        self._references: Dict[int, int] = {}
        self._insert_listeners: List[Callable[[int], None]] = []
        self._evict_listeners: List[Callable[[int], None]] = []
        self._touch_listeners: List[Callable[[int], None]] = []

    # -- listener hooks (OverlapIndex.watch_site contract) ---------------
    def on_insert(self, listener: Callable[[int], None]) -> None:
        self._insert_listeners.append(listener)

    def on_evict(self, listener: Callable[[int], None]) -> None:
        self._evict_listeners.append(listener)

    def on_touch(self, listener: Callable[[int], None]) -> None:
        self._touch_listeners.append(listener)

    # -- queries (OverlapIndex read surface) -----------------------------
    def __contains__(self, fid: int) -> bool:
        return fid in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    @property
    def resident_files(self) -> Tuple[int, ...]:
        return tuple(self._resident)

    def reference_count(self, fid: int) -> int:
        """``r_i``: past references of ``fid``, surviving removal."""
        return self._references.get(fid, 0)

    def overlap(self, files: Iterable[int]) -> int:
        return sum(1 for fid in files if fid in self._resident)

    # -- deltas ----------------------------------------------------------
    def add(self, fid: int) -> bool:
        """A file became resident; False if it already was."""
        if fid in self._resident:
            return False
        self._resident[fid] = None
        for listener in self._insert_listeners:
            listener(fid)
        return True

    def remove(self, fid: int) -> bool:
        """A file left the site; False if it was not resident."""
        if fid not in self._resident:
            return False
        del self._resident[fid]
        for listener in self._evict_listeners:
            listener(fid)
        return True

    def reference(self, fid: int) -> int:
        """A task referenced ``fid`` (resident or not); returns r_i.

        Mirrors :meth:`SiteStorage.touch`: the counter is bumped and
        listeners fire regardless of residency — the index decides
        whether the reference contributes to a refsum.
        """
        self._references[fid] = self._references.get(fid, 0) + 1
        for listener in self._touch_listeners:
            listener(fid)
        return self._references[fid]

    # -- snapshot surface (repro.cluster durability) ---------------------
    def export(self) -> Dict[str, list]:
        """JSON-native dump of residency + reference counters."""
        return {"resident": sorted(self._resident),
                "references": sorted(
                    [fid, count]
                    for fid, count in self._references.items())}

    @classmethod
    def restore(cls, resident: Iterable[int],
                references: Iterable[Tuple[int, int]]) -> "SiteFileState":
        """Rebuild a mirror from :meth:`export` output.

        The dicts are prefilled directly — no listeners exist yet, so
        nothing fires.  Attach the restored state *afterwards*
        (``PolicyEngine.attach_site(site_id, state=...)``): the
        index's ``watch_site`` folds the already-resident files
        through its insert hook, reading the restored reference
        counts, which reproduces every per-site refsum exactly.
        """
        state = cls()
        for fid in resident:
            state._resident[fid] = None
        for fid, count in references:
            state._references[fid] = count
        return state


class PolicyEngine:
    """Pending set + overlap index + CalculateWeight + ChooseTask(n).

    Parameters
    ----------
    job:
        Task lookup: anything supporting ``job[task_id] -> Task``.  In
        the simulator this is a :class:`~repro.grid.job.Job`; the live
        service passes a growable task table.
    metric:
        One of ``overlap``, ``rest``, ``combined``, ``combined-literal``.
    n:
        ChooseTask(n) candidate-set size; ``1`` = deterministic.
    rng:
        Random stream for the randomized variants (``n >= 2``).
    """

    def __init__(self, job, metric: str = "rest", n: int = 1,
                 rng: Optional[random.Random] = None,
                 fast_path: bool = True):
        if metric not in METRICS:
            raise ValueError(f"unknown metric {metric!r}; "
                             f"choose from {sorted(METRICS)}")
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.job = job
        self.metric_name = metric
        self.n = n
        self._weight = METRICS[metric]
        self._scorer = FAST_SCORERS[metric]
        #: When True (the default), :meth:`choose` runs the sublinear
        #: kernel: bucketed top-n retrieval for the ``overlap``/``rest``
        #: metrics (unscoped pulls) and the allocation-free scoring
        #: loop otherwise.  ``fast_path=False`` keeps the original
        #: TaskView-per-task reference loop for differential testing
        #: and the ablation benchmark.  Both paths are
        #: decision-for-decision and RNG-identical.
        self.fast_path = fast_path
        self._rng = rng or random.Random(0)
        self._pending: Dict[int, Task] = {}
        self._index = OverlapIndex(job, tasks=())
        self._zero_heap: List[Tuple] = []
        self._sites: Dict[int, SiteFileState] = {}
        #: Instrumentation: scheduling decisions made and tasks scored
        #: (the paper's T·I term), for the complexity ablation.  The
        #: bucketed fast path counts only the ≤ 2n candidates it
        #: actually weighs — the whole point — so comparing
        #: ``tasks_scored`` across ``fast_path`` settings *is* the
        #: work-saved measurement.
        self.decisions = 0
        self.tasks_scored = 0
        #: Decision-trace hook: when set, :meth:`choose` calls it with
        #: one span dict per decision (site, metric, n, the ranked
        #: top-n candidates with weight/overlap/files_missing, the
        #: chosen task and the runner-up).  Pure observation — it
        #: fires after sampling, consumes no randomness, and adds
        #: zero decisions, so traced and untraced runs are
        #: bit-identical.  See :mod:`repro.obs.trace`.
        self.on_decision: Optional[Callable[[dict], None]] = None

    # -- site wiring -----------------------------------------------------
    def watch_storage(self, site_id: int, storage) -> None:
        """Track a simulator :class:`SiteStorage` (callback-driven)."""
        self._index.watch_site(site_id, storage)

    def attach_site(self, site_id: int,
                    state: Optional[SiteFileState] = None,
                    ) -> SiteFileState:
        """Track a delta-driven site; returns its mutable mirror.

        ``state`` lets crash recovery attach a pre-built
        :meth:`SiteFileState.restore` mirror; ``watch_site`` then
        folds its already-resident files into the index, so the
        restored site scores exactly like the original.
        """
        if state is None:
            state = SiteFileState()
        self._index.watch_site(site_id, state)
        self._sites[site_id] = state
        return state

    @property
    def rng(self) -> random.Random:
        """The ChooseTask(n) stream (snapshot/restore via
        ``getstate``/``setstate``; consumed only by sampling)."""
        return self._rng

    @property
    def site_ids(self) -> Tuple[int, ...]:
        """Delta-driven sites attached so far (not watched storages)."""
        return tuple(self._sites)

    def site_state(self, site_id: int) -> SiteFileState:
        return self._sites[site_id]

    # -- file-state deltas (delta-driven sites only) ---------------------
    def file_added(self, site_id: int, fid: int) -> bool:
        return self._sites[site_id].add(fid)

    def file_removed(self, site_id: int, fid: int) -> bool:
        return self._sites[site_id].remove(fid)

    def file_referenced(self, site_id: int, fid: int) -> int:
        return self._sites[site_id].reference(fid)

    # -- pending-set management ------------------------------------------
    @property
    def has_pending(self) -> bool:
        return bool(self._pending)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def pending(self) -> Dict[int, Task]:
        """The pending map (read-only by convention)."""
        return self._pending

    def is_pending(self, task_id: int) -> bool:
        return task_id in self._pending

    def add_task(self, task: Task) -> None:
        """Make a task schedulable (initial load, arrival, or requeue)."""
        if task.task_id in self._pending:
            raise ValueError(f"task {task.task_id} is already pending")
        self._pending[task.task_id] = task
        self._index.add_task(task)
        self._push_zero_candidate(task)

    def remove_task(self, task: Task) -> None:
        """Retire a task from the pending set (it was assigned)."""
        del self._pending[task.task_id]
        self._index.remove_task(task)

    def overlap(self, site_id: int, task_id: int) -> int:
        """|F_t| of a pending task at a site (0 if no overlap)."""
        return self._index.nonzero_overlaps(site_id).get(task_id, 0)

    def _push_zero_candidate(self, task: Task) -> None:
        order = ZERO_OVERLAP_ORDER[self.metric_name]
        if order == "min_files":
            entry = (task.num_files, task.task_id)
        elif order == "max_files":
            entry = (-task.num_files, task.task_id)
        else:  # fifo
            entry = (task.task_id,)
        heapq.heappush(self._zero_heap, entry)

    # -- the decision ----------------------------------------------------
    def choose(self, site_id: int, eligible=None) -> Task:
        """CalculateWeight over candidates + ChooseTask(n).

        ``eligible`` (a container of task ids, or None for all pending)
        restricts the candidate set — the live service uses it for
        job-scoped pulls.  With the default None the decision is
        bit-identical to the unscoped algorithm, which is what the
        replay-equivalence suite pins down.

        Three kernels build the same ranked top-n list (higher weight
        first, lower task id breaking ties; identical floats, so the
        winner and the RNG consumption are bit-identical across all of
        them — pinned by tests/test_policy_fast_path.py):

        * **bucketed** (fast path, unscoped ``overlap``/``rest``) —
          walk the overlap index's candidate buckets best-key-first,
          O(n + buckets touched) instead of scanning every candidate;
        * **scored** (fast path otherwise) — the scan, but through the
          allocation-free raw-argument scorers instead of a TaskView
          per task;
        * **reference** (``fast_path=False``) — the original TaskView
          loop, kept for differential testing and the ablation
          benchmark.

        Does *not* retire the chosen task; callers decide whether the
        assignment sticks and then call :meth:`remove_task`.
        """
        self.decisions += 1
        if not self.fast_path:
            ranked = self._rank_reference(site_id, eligible)
        elif eligible is None and self.metric_name in BUCKETED_METRICS:
            ranked = self._rank_bucketed(site_id)
        else:
            ranked = self._rank_scored(site_id, eligible)
        best = [(-neg_weight, task_id) for neg_weight, task_id in ranked]
        chosen_id = self._sample(best)
        if self.on_decision is not None:
            overlaps = self._index.nonzero_overlaps(site_id)
            self.on_decision(self._build_span(site_id, overlaps, best,
                                              chosen_id))
        return self._pending[chosen_id]

    def _rank_reference(self, site_id: int,
                        eligible) -> List[Tuple[float, int]]:
        """The original scan: one TaskView per candidate scored."""
        index = self._index
        total_rest = index.total_rest(site_id)
        total_ref = index.total_refsum(site_id)
        overlaps = index.nonzero_overlaps(site_id)
        refsums = index.refsums(site_id)
        n = self.n
        ranked: List[Tuple[float, int]] = []  # (-weight, id), len <= n

        for task_id, overlap in overlaps.items():
            if eligible is not None and task_id not in eligible:
                continue
            task = self._pending.get(task_id)
            if task is None:  # defensive; index tracks pending only
                continue
            view = TaskView(task_id=task_id, num_files=task.num_files,
                            overlap=overlap,
                            refsum=refsums.get(task_id, 0.0),
                            total_refsum=total_ref, total_rest=total_rest)
            _offer(ranked, -self._weight(view), task_id, n)
            self.tasks_scored += 1

        for task_id in self.zero_overlap_candidates(site_id, eligible):
            task = self._pending[task_id]
            view = TaskView(task_id=task_id, num_files=task.num_files,
                            overlap=0, refsum=0.0,
                            total_refsum=total_ref, total_rest=total_rest)
            _offer(ranked, -self._weight(view), task_id, n)
            self.tasks_scored += 1
        return ranked

    def _rank_bucketed(self, site_id: int) -> List[Tuple[float, int]]:
        """Sublinear top-n for the monotone-integer metrics.

        The nonzero-overlap top-n comes straight off the candidate
        buckets (weight is a monotone function of the bucket key, and
        equal keys give bit-equal weights, so bucket order == weight
        order with the id tie-break); it is then merged with the up-to
        ``n`` zero-overlap candidates from the shared heap.  Only the
        ≤ 2n merged candidates are ever scored.
        """
        index = self._index
        n = self.n
        if self.metric_name == "overlap":
            top = index.candidates_by_overlap(site_id).top(n, reverse=True)
            # Bucket walk yields descending keys, ascending ids: that
            # is exactly ascending (-weight, id) order already.
            ranked = [(-float(key), task_id) for key, task_id in top]
            for task_id in self.zero_overlap_candidates(site_id, None):
                _offer(ranked, -0.0, task_id, n)
        else:  # rest
            top = index.candidates_by_missing(site_id).top(n)
            ranked = [(-rest_weight(key), task_id) for key, task_id in top]
            for task_id in self.zero_overlap_candidates(site_id, None):
                weight = rest_weight(self._pending[task_id].num_files)
                _offer(ranked, -weight, task_id, n)
        self.tasks_scored += len(ranked)
        return ranked

    def _rank_scored(self, site_id: int,
                     eligible) -> List[Tuple[float, int]]:
        """Allocation-free scan: raw-argument scorers, no TaskView.

        Used for the normalizer-coupled metrics (``combined``/
        ``combined-literal``) and for every job-scoped pull.  A scoped
        pull iterates whichever of the eligible set and the candidate
        map is smaller — the candidate set is their intersection
        either way.
        """
        index = self._index
        total_rest = index.total_rest(site_id)
        total_ref = index.total_refsum(site_id)
        overlaps = index.nonzero_overlaps(site_id)
        refsums = index.refsums(site_id)
        scorer = self._scorer
        pending = self._pending
        n = self.n
        ranked: List[Tuple[float, int]] = []
        scored = 0

        if eligible is None:
            for task_id, overlap in overlaps.items():
                task = pending.get(task_id)
                if task is None:
                    continue
                weight = scorer(task.num_files, overlap,
                                refsums.get(task_id, 0.0),
                                total_ref, total_rest)
                _offer(ranked, -weight, task_id, n)
                scored += 1
        elif (isinstance(eligible, (set, frozenset))
              and len(eligible) < len(overlaps)):
            for task_id in eligible:
                overlap = overlaps.get(task_id)
                if not overlap:
                    continue
                task = pending.get(task_id)
                if task is None:
                    continue
                weight = scorer(task.num_files, overlap,
                                refsums.get(task_id, 0.0),
                                total_ref, total_rest)
                _offer(ranked, -weight, task_id, n)
                scored += 1
        else:
            for task_id, overlap in overlaps.items():
                if task_id not in eligible:
                    continue
                task = pending.get(task_id)
                if task is None:
                    continue
                weight = scorer(task.num_files, overlap,
                                refsums.get(task_id, 0.0),
                                total_ref, total_rest)
                _offer(ranked, -weight, task_id, n)
                scored += 1

        for task_id in self.zero_overlap_candidates(site_id, eligible):
            weight = scorer(pending[task_id].num_files, 0, 0.0,
                            total_ref, total_rest)
            _offer(ranked, -weight, task_id, n)
            scored += 1
        self.tasks_scored += scored
        return ranked

    def choose_many(self, site_id: int, k: int,
                    eligible=None) -> List[Task]:
        """Draw up to ``k`` tasks by iterated ChooseTask(n) sampling
        *without replacement*.

        Each draw runs the full CalculateWeight + ChooseTask(n)
        decision and then **retires** the winner (unlike
        :meth:`choose`), so the next draw's weights are recomputed
        against the site's storage with the already-drawn tasks gone —
        batch members never double-count the same cached files.  Stops
        early when the (eligible) pending set runs dry, so the result
        holds between 0 and ``k`` tasks.

        ``k == 1`` is decision-for-decision identical to one
        :meth:`choose` call followed by :meth:`remove_task` — same
        winner, same RNG consumption — which is what keeps the batched
        protocol path bit-compatible with single-task assignment.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        drawn: List[Task] = []
        if eligible is None:
            while len(drawn) < k and self._pending:
                task = self.choose(site_id)
                self.remove_task(task)
                drawn.append(task)
            return drawn
        # Intersect the scope with the pending set once per batch and
        # keep it live by removing each winner; re-scanning the whole
        # eligible container before every draw made a k-task batch
        # O(k·|eligible|).  ``choose(eligible=remaining)`` is
        # bit-identical to passing the original container because the
        # candidate set is (eligible ∩ pending) either way.
        remaining = {task_id for task_id in eligible
                     if task_id in self._pending}
        while len(drawn) < k and remaining:
            task = self.choose(site_id, eligible=remaining)
            self.remove_task(task)
            remaining.discard(task.task_id)
            drawn.append(task)
        return drawn

    def _build_span(self, site_id: int, overlaps: Dict[int, int],
                    best: List[Tuple[float, int]],
                    chosen_id: int) -> dict:
        """The trace span for one decision (``on_decision`` payload)."""
        candidates = []
        for weight, task_id in best:
            overlap = overlaps.get(task_id, 0)
            num_files = self._pending[task_id].num_files
            candidates.append({"task_id": task_id, "weight": weight,
                               "overlap": overlap,
                               "num_files": num_files,
                               "files_missing": num_files - overlap})
        runner_up = next((task_id for _weight, task_id in best
                          if task_id != chosen_id), None)
        return {"site": site_id, "metric": self.metric_name,
                "n": self.n, "chosen": chosen_id,
                "runner_up": runner_up, "candidates": candidates,
                "pending": len(self._pending)}

    def zero_overlap_candidates(self, site_id: int,
                                eligible=None) -> List[int]:
        """Up to ``n`` best pending tasks with zero overlap at the site.

        Pops dead heap entries permanently; live entries that are merely
        inspected are pushed back for future requests.  ``eligible``
        restricts the search to a task-id subset (job-scoped pulls); an
        ineligible entry is skipped but kept, which can make a scoped
        scan walk the whole heap — acceptable, since scoped pulls are
        the exception and the unscoped path is untouched.
        """
        overlaps = self._index.nonzero_overlaps(site_id)
        chosen: List[int] = []
        skipped: List[Tuple] = []
        while self._zero_heap and len(chosen) < self.n:
            entry = heapq.heappop(self._zero_heap)
            task_id = entry[-1] if len(entry) > 1 else entry[0]
            if task_id not in self._pending:
                continue  # stale: task was assigned; drop permanently
            skipped.append(entry)
            if eligible is not None and task_id not in eligible:
                continue
            if task_id not in overlaps:
                chosen.append(task_id)
        for entry in skipped:
            heapq.heappush(self._zero_heap, entry)
        return chosen

    def _sample(self, best: List[Tuple[float, int]]) -> int:
        """ChooseTask(n): weight-proportional pick among the best."""
        if not best:
            raise RuntimeError("no candidate tasks to choose from")
        if len(best) == 1 or self.n == 1:
            return best[0][1]
        total = sum(weight for weight, _tid in best)
        if total <= 0:
            # All candidate weights are zero (e.g. cold-start overlap
            # metric): uniform random among the candidate set.
            return self._rng.choice(best)[1]
        point = self._rng.random() * total
        acc = 0.0
        for weight, task_id in best:
            acc += weight
            if point <= acc:
                return task_id
        return best[-1][1]
