"""Reference implementation: the paper's Figure 2, taken literally.

On every request it loops over *every* pending task, recomputing
``|F_t|``, ``ref_t``, ``totalRef`` and ``totalRest`` directly against
the requesting site's storage — the O(T·I) walk of Section 4.4, with
no index and no caching.  ChooseTask(n) then samples the top-n.

This exists for verification, not speed: the production
:class:`~repro.core.worker_centric.WorkerCentricScheduler` must make
*identical* decisions (property-tested in the suite), and the
index-vs-rescan benchmark quantifies the cost difference.
"""

from __future__ import annotations

import random
import typing
from typing import Dict, List, Optional, Tuple

from ..grid.job import Job, Task
from ..sim.events import Event
from .base import BaseScheduler
from .metrics import METRICS, TaskView, rest_weight_exact

if typing.TYPE_CHECKING:  # pragma: no cover
    from ..grid.worker import Worker


class NaiveWorkerCentricScheduler(BaseScheduler):
    """Figure 2 verbatim: full rescan per request."""

    supports_dynamic_release = True

    def __init__(self, job: Job, metric: str = "rest", n: int = 1,
                 rng: Optional[random.Random] = None,
                 initial_task_ids=None):
        super().__init__(job)
        if metric not in METRICS:
            raise ValueError(f"unknown metric {metric!r}")
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.metric_name = metric
        self.n = n
        self._weight = METRICS[metric]
        self._rng = rng or random.Random(0)
        wanted = None if initial_task_ids is None else set(initial_task_ids)
        self._pending: Dict[int, Task] = {
            task.task_id: task for task in job
            if wanted is None or task.task_id in wanted}
        self._parked: List[Tuple["Worker", Event]] = []
        self.decisions = 0
        self.tasks_scored = 0

    # -- GridScheduler -----------------------------------------------------
    def next_task(self, worker: "Worker") -> Event:
        event = Event(self.grid.env)
        if not self._pending:
            if self.tasks_remaining == 0:
                event.succeed(None)
            else:
                self._parked.append((worker, event))
                self.job_done.add_callback(lambda _e: self._drain())
            return event
        task = self._choose(worker)
        del self._pending[task.task_id]
        self._trace_assignment(worker, task)
        event.succeed(task)
        return event

    def notify_cancelled(self, worker: "Worker", task: Task) -> None:
        if not self.is_completed(task.task_id):
            self.release_tasks([task])

    def release_tasks(self, tasks) -> None:
        for task in tasks:
            if task.task_id in self._pending:
                raise ValueError(f"task {task.task_id} already pending")
            self._pending[task.task_id] = task
        while self._parked and self._pending:
            worker, event = self._parked.pop(0)
            if event.triggered:
                continue
            task = self._choose(worker)
            del self._pending[task.task_id]
            self._trace_assignment(worker, task)
            event.succeed(task)

    def _drain(self) -> None:
        parked, self._parked = self._parked, []
        for _worker, event in parked:
            if not event.triggered:
                event.succeed(None)

    # -- the verbatim algorithm -------------------------------------------
    def _choose(self, worker: "Worker") -> Task:
        """for each task t in taskQueue: CalculateWeight(t); ChooseTask."""
        self.decisions += 1
        storage = worker.site.storage

        # One full pass for the aggregate normalizers.
        overlaps: Dict[int, int] = {}
        refsums: Dict[int, float] = {}
        total_ref = 0.0
        # exact rational, like the indexed scheduler (tie stability)
        from fractions import Fraction
        total_rest_exact = Fraction(0)
        for task in self._pending.values():
            overlap = 0
            refsum = 0.0
            for fid in task.files:
                if fid in storage:
                    overlap += 1
                    refsum += storage.reference_count(fid)
            overlaps[task.task_id] = overlap
            refsums[task.task_id] = refsum
            total_ref += refsum
            total_rest_exact += rest_weight_exact(task.num_files - overlap)
            self.tasks_scored += 1
        total_rest = float(total_rest_exact)

        # Second pass: weights, keeping the best n.
        best: List[Tuple[float, int]] = []
        for task in self._pending.values():
            view = TaskView(task_id=task.task_id,
                            num_files=task.num_files,
                            overlap=overlaps[task.task_id],
                            refsum=refsums[task.task_id],
                            total_refsum=total_ref,
                            total_rest=total_rest)
            weight = self._weight(view)
            entry = (weight, task.task_id)
            best.append(entry)
        best.sort(key=lambda pair: (-pair[0], pair[1]))
        best = best[:self.n]

        if len(best) == 1 or self.n == 1:
            return self._pending[best[0][1]]
        total = sum(weight for weight, _tid in best)
        if total <= 0:
            return self._pending[self._rng.choice(best)[1]]
        point = self._rng.random() * total
        acc = 0.0
        for weight, task_id in best:
            acc += weight
            if point <= acc:
                return self._pending[task_id]
        return self._pending[best[-1][1]]
