"""Scheduler registry: the paper's algorithm names -> factories.

Section 5.3 compares six algorithms; this registry exposes them (plus
our extra baselines and the combined-literal variant) under their paper
names so experiment configs are one string:

==========================  ==============================================
name                        policy
==========================  ==============================================
``storage-affinity``        task-centric storage affinity (deterministic)
``overlap``                 worker-centric, overlap metric, n = 1
``rest``                    worker-centric, rest metric, n = 1
``combined``                worker-centric, combined metric, n = 1
``rest.2``                  worker-centric, rest metric, n = 2
``combined.2``              worker-centric, combined metric, n = 2
``combined-literal``        combined exactly as printed in the paper
``combined-literal.2``      the same, randomized (n = 2)
``workqueue``               FIFO pull dispatch, data-blind
``random``                  uniform random pull dispatch
``xsufferage``              XSufferage [5]: push by site-level sufferage
``minmin`` / ``maxmin``     classic MCT heuristics (same estimator)
``spatial-clustering``      offline overlap clustering + site pinning [10]
==========================  ==============================================

Note: the paper's Section 5.3 describes ``rest.2``/``combined.2`` as
"the basic algorithm with the *overlap* metric, n = 2" — an obvious
editing slip given their names and the surrounding analysis; they are
implemented (as named) as the rest/combined metrics with n = 2.

Names also accept a generic ``wc:<metric>:<n>`` form, e.g. ``wc:rest:4``
for the ChooseTask(n) ablation, and ``naive-wc:<metric>:<n>`` for the
verbatim Figure-2 full-rescan reference implementation.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from ..grid.job import Job
from ..grid.scheduler_api import GridScheduler
from .metrics import METRICS
from .reference import NaiveWorkerCentricScheduler
from .spatial_clustering import SpatialClusteringScheduler
from .storage_affinity import StorageAffinityScheduler
from .worker_centric import WorkerCentricScheduler
from .workqueue import WorkqueueScheduler
from .xsufferage import XSufferageScheduler

SchedulerFactory = Callable[[Job, Optional[random.Random]], GridScheduler]

#: Algorithms of the paper's evaluation (Section 5.3), in figure order.
PAPER_ALGORITHMS = (
    "storage-affinity",
    "overlap",
    "rest",
    "combined",
    "rest.2",
    "combined.2",
)

_FIXED: Dict[str, SchedulerFactory] = {
    "storage-affinity":
        lambda job, rng: StorageAffinityScheduler(job, rng=rng),
    "overlap":
        lambda job, rng: WorkerCentricScheduler(job, "overlap", 1, rng),
    "rest":
        lambda job, rng: WorkerCentricScheduler(job, "rest", 1, rng),
    "combined":
        lambda job, rng: WorkerCentricScheduler(job, "combined", 1, rng),
    "rest.2":
        lambda job, rng: WorkerCentricScheduler(job, "rest", 2, rng),
    "combined.2":
        lambda job, rng: WorkerCentricScheduler(job, "combined", 2, rng),
    "combined-literal":
        lambda job, rng: WorkerCentricScheduler(job, "combined-literal", 1,
                                                rng),
    "combined-literal.2":
        lambda job, rng: WorkerCentricScheduler(job, "combined-literal", 2,
                                                rng),
    "workqueue":
        lambda job, rng: WorkqueueScheduler(job, randomize=False, rng=rng),
    "random":
        lambda job, rng: WorkqueueScheduler(job, randomize=True, rng=rng),
    # Related-work baselines (Section 6 of the paper):
    "xsufferage":
        lambda job, rng: XSufferageScheduler(job, rng=rng),
    "minmin":
        lambda job, rng: XSufferageScheduler(job, rng=rng,
                                             policy="minmin"),
    "maxmin":
        lambda job, rng: XSufferageScheduler(job, rng=rng,
                                             policy="maxmin"),
    "spatial-clustering":
        lambda job, rng: SpatialClusteringScheduler(job, rng=rng),
}


def available_schedulers() -> List[str]:
    """All fixed registry names (excluding the ``wc:...`` generic form)."""
    return sorted(_FIXED)


def create_scheduler(name: str, job: Job,
                     rng: Optional[random.Random] = None,
                     initial_task_ids=None) -> GridScheduler:
    """Instantiate the scheduler registered as ``name`` for ``job``.

    ``initial_task_ids`` defers the remaining tasks for asynchronous
    release (multi-job campaigns); only policies with
    ``supports_dynamic_release`` accept it.
    """
    scheduler = _instantiate(name, job, rng)
    if initial_task_ids is None:
        return scheduler
    if not scheduler.supports_dynamic_release:
        raise ValueError(
            f"scheduler {name!r} cannot defer tasks (offline planner)")
    # Rebuild with the deferral baked in (policies take it at
    # construction so their indexes start consistent).
    if isinstance(scheduler, (WorkerCentricScheduler,
                              NaiveWorkerCentricScheduler)):
        return type(scheduler)(job, scheduler.metric_name, scheduler.n,
                               rng, initial_task_ids=initial_task_ids)
    if isinstance(scheduler, WorkqueueScheduler):
        return WorkqueueScheduler(job, randomize=scheduler.randomize,
                                  rng=rng,
                                  initial_task_ids=initial_task_ids)
    raise ValueError(f"scheduler {name!r} declares dynamic release "
                     f"support but has no deferral constructor")


def _instantiate(name: str, job: Job,
                 rng: Optional[random.Random]) -> GridScheduler:
    factory = _FIXED.get(name)
    if factory is not None:
        return factory(job, rng)
    if name.startswith("wc:") or name.startswith("naive-wc:"):
        parts = name.split(":")
        if len(parts) != 3:
            raise ValueError(f"bad generic scheduler name {name!r}; "
                             f"expected wc:<metric>:<n> or "
                             f"naive-wc:<metric>:<n>")
        prefix, metric, n_text = parts
        if metric not in METRICS:
            raise ValueError(f"unknown metric {metric!r} in {name!r}")
        try:
            n = int(n_text)
        except ValueError:
            raise ValueError(f"bad n in {name!r}") from None
        cls = (NaiveWorkerCentricScheduler if prefix == "naive-wc"
               else WorkerCentricScheduler)
        return cls(job, metric, n, rng)
    raise ValueError(f"unknown scheduler {name!r}; "
                     f"available: {available_schedulers()} or wc:<metric>:<n>")
