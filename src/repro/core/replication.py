"""Proactive data replication (Ranganathan & Foster, HPDC 2002).

Task-centric schedulers *need* extra mechanisms against unbalanced
assignments; the paper argues they are merely orthogonal for
worker-centric scheduling.  This module provides that mechanism so the
claim can be tested (the data-replication ablation benchmark):

a :class:`DataReplicator` watches file fetches at the global file
server, and once a file's popularity crosses a threshold, pushes a copy
to the site holding the fewest replicas-of-popular-files (a
"least-loaded" stand-in), at most once per file per site.

Replication shares the network with regular traffic, so aggressive
settings can hurt — as Ranganathan & Foster themselves observe for
non-skewed popularity distributions.
"""

from __future__ import annotations

import typing
from typing import Dict, Optional, Set

from ..analysis.trace import FileTransferred
from ..grid.files import FileId

if typing.TYPE_CHECKING:  # pragma: no cover
    from ..grid.cluster import Grid


class DataReplicator:
    """Popularity-threshold push replication of hot files.

    Parameters
    ----------
    grid:
        The grid to watch (must already have sites built).
    popularity_threshold:
        Number of fetches after which a file is considered hot.
    max_replicas:
        Cap on proactive copies pushed per file.
    """

    def __init__(self, grid: "Grid", popularity_threshold: int = 3,
                 max_replicas: int = 2):
        if popularity_threshold < 1:
            raise ValueError("popularity_threshold must be >= 1")
        if max_replicas < 1:
            raise ValueError("max_replicas must be >= 1")
        self.grid = grid
        self.popularity_threshold = popularity_threshold
        self.max_replicas = max_replicas
        self._fetch_counts: Dict[FileId, int] = {}
        self._pushed: Dict[FileId, Set[int]] = {}
        #: Number of proactive pushes performed.
        self.replications = 0
        grid.trace.subscribe(FileTransferred, self._on_fetch)

    def _on_fetch(self, record: FileTransferred) -> None:
        fid = record.file_id
        count = self._fetch_counts.get(fid, 0) + 1
        self._fetch_counts[fid] = count
        if count < self.popularity_threshold:
            return
        pushed = self._pushed.setdefault(fid, set())
        if len(pushed) >= self.max_replicas:
            return
        target = self._pick_target(fid, exclude=record.site)
        if target is None:
            return
        pushed.add(target)
        self.replications += 1
        self.grid.env.process(self._push(fid, target),
                              name=f"replicate-{fid}-to-{target}")

    def _pick_target(self, fid: FileId,
                     exclude: int) -> Optional[int]:
        """Least-loaded site that lacks the file and wasn't pushed yet."""
        pushed = self._pushed.get(fid, set())
        candidates = [
            site for site in self.grid.sites
            if site.site_id != exclude
            and site.site_id not in pushed
            and fid not in site.storage
        ]
        if not candidates:
            return None
        return min(candidates,
                   key=lambda s: (len(s.storage), s.site_id)).site_id

    def _push(self, fid: FileId, site_id: int):
        site = self.grid.sites[site_id]
        yield self.grid.file_server.fetch(site.gateway, fid)
        # The file may have arrived through a regular batch meanwhile;
        # insert() is idempotent for resident files.
        site.storage.insert(fid)
