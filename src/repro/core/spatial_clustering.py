"""Spatial Clustering (Meyer et al., GriPhyN 2005) — workflow baseline.

The related-work planner the paper discusses: tasks are clustered by
input-set overlap *before* execution, and each cluster is pinned to one
site, "improving data reuse and diminishing file transfers".  Its two
known drawbacks — no support for asynchronously arriving jobs, and
application specificity — do not matter for a single Bag-of-Tasks run,
making it a strong locality anchor to compare the online schedulers
against.

Clustering is greedy: seed a cluster with the lowest-id unclustered
task, repeatedly add the unclustered task sharing the largest fraction
of the cluster's file set (above ``min_share``), stop at
``cluster_size`` and start the next cluster.  Clusters go to sites
round-robin; workers pull their site's tasks FIFO and steal from the
largest remaining site queue when idle.
"""

from __future__ import annotations

import typing
from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..grid.job import Job, Task
from ..sim.events import Event
from .base import BaseScheduler

if typing.TYPE_CHECKING:  # pragma: no cover
    from ..grid.worker import Worker


def cluster_tasks(job: Job, cluster_size: int,
                  min_share: float = 0.0) -> List[List[Task]]:
    """Greedy overlap clustering of a job's tasks.

    Returns clusters in creation order; every task appears exactly once.
    """
    if cluster_size < 1:
        raise ValueError("cluster_size must be >= 1")
    file_to_tasks: Dict[int, Set[int]] = {}
    for task in job:
        for fid in task.files:
            file_to_tasks.setdefault(fid, set()).add(task.task_id)

    unclustered: Dict[int, Task] = {t.task_id: t for t in job}
    clusters: List[List[Task]] = []
    while unclustered:
        seed_id = min(unclustered)
        seed = unclustered.pop(seed_id)
        cluster = [seed]
        cluster_files = set(seed.files)
        # candidate share counts against the growing cluster file set
        shares: Dict[int, int] = {}
        for fid in seed.files:
            for tid in file_to_tasks[fid]:
                if tid in unclustered:
                    shares[tid] = shares.get(tid, 0) + 1
        while len(cluster) < cluster_size and shares:
            best_id = max(
                shares,
                key=lambda tid: (shares[tid]
                                 / unclustered[tid].num_files, -tid))
            share = shares[best_id] / unclustered[best_id].num_files
            if share < min_share:
                break
            task = unclustered.pop(best_id)
            del shares[best_id]
            cluster.append(task)
            for fid in task.files:
                if fid in cluster_files:
                    continue
                cluster_files.add(fid)
                for tid in file_to_tasks[fid]:
                    if tid in unclustered:
                        shares[tid] = shares.get(tid, 0) + 1
            # drop stale entries of tasks clustered meanwhile
            shares = {tid: count for tid, count in shares.items()
                      if tid in unclustered}
        clusters.append(cluster)
    return clusters


class SpatialClusteringScheduler(BaseScheduler):
    """Pre-clustered, site-pinned execution with idle stealing."""

    def __init__(self, job: Job, cluster_size: Optional[int] = None,
                 min_share: float = 0.05, rng=None):
        super().__init__(job)
        self.cluster_size = cluster_size
        self.min_share = min_share
        self._site_queues: List[Deque[Task]] = []
        self._parked: List[Tuple["Worker", Event]] = []

    def _on_bound(self) -> None:
        num_sites = len(self.grid.sites)
        size = self.cluster_size or max(1, -(-len(self.job)
                                             // (num_sites * 2)))
        clusters = cluster_tasks(self.job, size, self.min_share)
        self._site_queues = [deque() for _ in range(num_sites)]
        for index, cluster in enumerate(clusters):
            queue = self._site_queues[index % num_sites]
            queue.extend(cluster)

    def next_task(self, worker: "Worker") -> Event:
        event = Event(self.grid.env)
        task = self._take(worker.site.site_id)
        if task is not None:
            self._trace_assignment(worker, task)
            event.succeed(task)
        elif self.tasks_remaining == 0:
            event.succeed(None)
        else:
            self._parked.append((worker, event))
        return event

    def _take(self, site_id: int) -> Optional[Task]:
        queue = self._site_queues[site_id]
        if queue:
            return queue.popleft()
        donor = max(self._site_queues, key=len)
        if donor:
            return donor.popleft()
        return None

    def _on_first_completion(self, worker: "Worker", task: Task) -> None:
        if self.tasks_remaining == 0:
            parked, self._parked = self._parked, []
            for _worker, event in parked:
                if not event.triggered:
                    event.succeed(None)

    def notify_cancelled(self, worker: "Worker", task: Task) -> None:
        # Failure injection: return the task to the worker's own site.
        if not self.is_completed(task.task_id):
            self._site_queues[worker.site.site_id].append(task)
            parked, self._parked = self._parked, []
            for parked_worker, event in parked:
                if event.triggered:
                    continue
                retry = self._take(parked_worker.site.site_id)
                if retry is not None:
                    self._trace_assignment(parked_worker, retry)
                    event.succeed(retry)
                else:
                    self._parked.append((parked_worker, event))
