"""Task-centric *storage affinity* baseline (Santos-Neto et al., 2004).

The paper's comparison point: a push scheduler with data reuse and task
replication.  Per Section 3.1:

1. **Initial distribution** — every task is assigned up front to a
   worker queue "according to the overlap cardinality".
2. **Replication** — once everything is assigned, whenever a worker
   becomes idle the scheduler picks a task already assigned elsewhere
   and replicates it to the idle worker; the first finished copy wins
   and the others are cancelled.

Because the original JSSPP'04 implementation is unavailable, two
under-specified points are resolved as follows (documented in
DESIGN.md):

* Initial distribution is greedy on affinity against a per-site
  *expected view*: the files of tasks already queued at a site (LRU-
  truncated at storage capacity), since the real storages are cold at
  time zero.  This reproduces the phenomenon the paper attributes to
  task-centric scheduling — popular files attract more tasks — while a
  fairness cap (``balance_factor`` × fair share per site) keeps the
  greedy from collapsing onto one site, mirroring the partial imbalance
  Ranganathan & Foster describe.
* The affinity of a replica candidate is its overlap with the idle
  worker's *real* storage at replication time (bytes == files here,
  assumption 8).

Both the queue wait between assignment and execution and the eviction
of queued tasks' files (the "premature scheduling decision") emerge
naturally from this design — they are exactly the behaviours the
worker-centric strategies are measured against.
"""

from __future__ import annotations

import heapq
import random
import typing
from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..grid.job import Job, Task
from ..sim.events import Event
from .base import BaseScheduler
from .overlap_index import OverlapIndex

if typing.TYPE_CHECKING:  # pragma: no cover
    from ..grid.worker import Worker


class StorageAffinityScheduler(BaseScheduler):
    """Push scheduling by max overlap + task replication on idleness.

    Parameters
    ----------
    job:
        The bag of tasks.
    balance_factor:
        A site may receive at most ``balance_factor`` times its fair
        share of the initial distribution (>= 1.0).
    rng:
        Accepted for registry symmetry; the policy is deterministic.
    """

    def __init__(self, job: Job, balance_factor: float = 2.0,
                 rng: Optional[random.Random] = None):
        super().__init__(job)
        if balance_factor < 1.0:
            raise ValueError(
                f"balance_factor must be >= 1.0, got {balance_factor}")
        self.balance_factor = balance_factor
        self._queues: Dict[str, Deque[Task]] = {}
        #: task id -> worker names currently holding a copy (queued or
        #: running).
        self._holders: Dict[int, Set[str]] = {}
        self._running: Dict[int, Set["Worker"]] = {}
        self._replica_index: Optional[OverlapIndex] = None
        self._incomplete: Dict[int, Task] = {}
        self._parked: List[Tuple["Worker", Event]] = []
        #: Initial queue length per site (imbalance statistic).
        self.initial_site_load: List[int] = []

    # -- lifecycle -------------------------------------------------------
    def _on_bound(self) -> None:
        for worker in self.grid.workers:
            self._queues[worker.name] = deque()
        self._incomplete = {task.task_id: task for task in self.job}
        self._replica_index = OverlapIndex(self.job)
        for site in self.grid.sites:
            self._replica_index.watch_site(site.site_id, site.storage)
        self._distribute_initial()

    # -- initial distribution ------------------------------------------
    def _distribute_initial(self) -> None:
        """Greedy max-affinity assignment of every task to a worker queue."""
        grid = self.grid
        num_sites = len(grid.sites)
        fair_share = max(1, -(-len(self.job) // num_sites))  # ceil
        site_cap = int(self.balance_factor * fair_share)

        # Expected view per site: an LRU of the files queued tasks will
        # pull, truncated at storage capacity.
        views: List[OrderedDict] = [OrderedDict() for _ in range(num_sites)]
        capacities = [site.storage.capacity_files for site in grid.sites]
        # affinity[s][t]: overlap of unassigned task t with views[s].
        affinities: List[Dict[int, int]] = [{} for _ in range(num_sites)]
        file_to_tasks: Dict[int, Set[int]] = {}
        for task in self.job:
            for fid in task.files:
                file_to_tasks.setdefault(fid, set()).add(task.task_id)
        unassigned: Dict[int, Task] = {t.task_id: t for t in self.job}
        site_load = [0] * num_sites
        # Lazy max-heap of (-affinity, task_id, site_id).
        heap: List[Tuple[int, int, int]] = []

        def add_file(site_id: int, fid: int) -> None:
            view = views[site_id]
            if fid in view:
                view.move_to_end(fid)
                return
            if len(view) >= capacities[site_id]:
                old, _ = view.popitem(last=False)
                for tid in file_to_tasks.get(old, ()):
                    if tid in unassigned:
                        affinities[site_id][tid] -= 1
            view[fid] = None
            aff = affinities[site_id]
            for tid in file_to_tasks.get(fid, ()):
                if tid in unassigned:
                    value = aff.get(tid, 0) + 1
                    aff[tid] = value
                    heapq.heappush(heap, (-value, tid, site_id))

        def pop_best() -> Tuple[Optional[int], Optional[int]]:
            while heap:
                neg, tid, site_id = heap[0]
                if (tid not in unassigned
                        or affinities[site_id].get(tid, 0) != -neg
                        or site_load[site_id] >= site_cap):
                    heapq.heappop(heap)
                    continue
                return tid, site_id
            return None, None

        order = sorted(unassigned)  # FIFO fallback order
        fifo_pos = 0
        while unassigned:
            tid, site_id = pop_best()
            if tid is None:
                # No positive affinity anywhere (cold start or caps):
                # FIFO task to the least-loaded eligible site.
                while order[fifo_pos] not in unassigned:
                    fifo_pos += 1
                tid = order[fifo_pos]
                site_id = min(range(num_sites),
                              key=lambda s: (site_load[s], s))
            task = unassigned.pop(tid)
            worker = min(grid.sites[site_id].workers,
                         key=lambda w: len(self._queues[w.name]))
            self._queues[worker.name].append(task)
            self._holders.setdefault(tid, set()).add(worker.name)
            site_load[site_id] += 1
            self._trace_assignment(worker, task)
            for fid in task.files:
                add_file(site_id, fid)
        self.initial_site_load = site_load

    # -- GridScheduler -----------------------------------------------------
    def next_task(self, worker: "Worker") -> Event:
        event = Event(self.grid.env)
        task = self._dispatch(worker)
        if task is not None:
            event.succeed(task)
        elif self.tasks_remaining == 0:
            event.succeed(None)
        else:
            self._parked.append((worker, event))
        return event

    def _dispatch(self, worker: "Worker") -> Optional[Task]:
        """Next queued task for ``worker``, or a replica, or None."""
        queue = self._queues[worker.name]
        while queue:
            task = queue.popleft()
            if self.is_completed(task.task_id):
                self._drop_holder(task.task_id, worker.name)
                continue
            self._start(worker, task)
            return task
        replica = self._pick_replica(worker)
        if replica is not None:
            self._holders.setdefault(replica.task_id, set()).add(worker.name)
            self._trace_assignment(worker, replica)
            self._start(worker, replica)
        return replica

    def notify_cancelled(self, worker: "Worker", task: Task) -> None:
        self._running.get(task.task_id, set()).discard(worker)
        self._drop_holder(task.task_id, worker.name)
        # A failure (rather than a first-copy-won cancellation) can
        # orphan a task: no queued or running copy remains anywhere.
        # Push it back onto the shortest queue so it completes.
        tid = task.task_id
        if (not self.is_completed(tid) and tid not in self._holders
                and not self._running.get(tid)):
            target = min(self.grid.workers,
                         key=lambda w: (len(self._queues[w.name]), w.name))
            self._queues[target.name].append(task)
            self._holders.setdefault(tid, set()).add(target.name)
            self._serve_parked()

    # -- hooks -------------------------------------------------------------
    def _on_first_completion(self, worker: "Worker", task: Task) -> None:
        tid = task.task_id
        self._incomplete.pop(tid, None)
        if tid in self._replica_index.pending_tasks:
            self._replica_index.remove_task(task)
        self._drop_holder(tid, worker.name)
        self._running.get(tid, set()).discard(worker)
        # First finished copy wins: cancel every other running replica.
        for other in list(self._running.get(tid, ())):
            other.cancel_task(tid)
        # Idle (parked) workers may now find a replica — or learn that
        # the job is done.
        self._serve_parked()

    def _on_duplicate_completion(self, worker: "Worker",
                                 task: Task) -> None:
        self._drop_holder(task.task_id, worker.name)
        self._running.get(task.task_id, set()).discard(worker)

    # -- internals -------------------------------------------------------
    def _start(self, worker: "Worker", task: Task) -> None:
        self._running.setdefault(task.task_id, set()).add(worker)

    def _drop_holder(self, task_id: int, worker_name: str) -> None:
        holders = self._holders.get(task_id)
        if holders is not None:
            holders.discard(worker_name)
            if not holders:
                del self._holders[task_id]

    def _pick_replica(self, worker: "Worker") -> Optional[Task]:
        """Highest-affinity incomplete task not already on this worker.

        Affinity is overlap with the worker's site storage *now*; with
        no positive affinity anywhere, falls back to the lowest-id
        eligible incomplete task.
        """
        if not self._incomplete:
            return None
        overlaps = self._replica_index.nonzero_overlaps(worker.site.site_id)
        best_id: Optional[int] = None
        best_key: Tuple[int, int] = (0, 0)
        for tid, overlap in overlaps.items():
            if tid not in self._incomplete:
                continue
            if worker.name in self._holders.get(tid, ()):
                continue
            key = (overlap, -tid)
            if best_id is None or key > best_key:
                best_id, best_key = tid, key
        if best_id is None:
            for tid in sorted(self._incomplete):
                if worker.name not in self._holders.get(tid, ()):
                    best_id = tid
                    break
        return self._incomplete.get(best_id) if best_id is not None else None

    def _serve_parked(self) -> None:
        parked, self._parked = self._parked, []
        for worker, event in parked:
            if event.triggered:
                continue
            if self.tasks_remaining == 0:
                event.succeed(None)
                continue
            task = self._dispatch(worker)
            if task is not None:
                event.succeed(task)
            else:
                self._parked.append((worker, event))
