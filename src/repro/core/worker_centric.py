"""The paper's worker-centric scheduling algorithm (Figure 2).

Each worker asks the global scheduler for a task whenever it is idle.
The scheduler scores every pending task for the requesting worker with
``CalculateWeight`` (one of the metrics in :mod:`repro.core.metrics`)
and picks one with ``ChooseTask(n)``:

1. take the ``n`` highest-weighted tasks,
2. pick among them with probability proportional to their weights
   (``n = 1`` is the deterministic argmax; ``n = 2`` is the paper's
   randomized ``rest.2`` / ``combined.2`` variants).

The decision machinery itself — pending set, incremental
:class:`~repro.core.overlap_index.OverlapIndex`, candidate heaps,
weight ranking and sampling — lives in the sim-free
:class:`~repro.core.policy_engine.PolicyEngine`; this class is the
simulator adapter around it (event plumbing, parked idle workers,
storage subscriptions, assignment traces).  The same engine powers the
live :mod:`repro.serve` scheduler daemon, and the equivalence suite
proves both drive it to identical decisions.
"""

from __future__ import annotations

import random
import typing
from typing import List, Optional, Tuple

from ..grid.job import Job, Task
from ..sim.events import Event
from .base import BaseScheduler
from .policy_engine import PolicyEngine

if typing.TYPE_CHECKING:  # pragma: no cover
    from ..grid.worker import Worker


class WorkerCentricScheduler(BaseScheduler):
    """Pull scheduler with pluggable data-locality metric.

    Parameters
    ----------
    job:
        The bag of tasks to schedule.
    metric:
        One of ``overlap``, ``rest``, ``combined``, ``combined-literal``.
    n:
        ChooseTask(n) candidate-set size; ``1`` = deterministic.
    rng:
        Random stream used by the randomized variants (``n >= 2``).
    fast_path:
        Passed through to :class:`PolicyEngine`; ``False`` pins the
        engine to the reference TaskView scan (decision-identical, for
        the decision-latency ablation — see docs/performance.md).
    """

    #: Worker-centric scheduling handles asynchronously arriving work
    #: natively — new tasks simply join the pending set.
    supports_dynamic_release = True

    def __init__(self, job: Job, metric: str = "rest", n: int = 1,
                 rng: Optional[random.Random] = None,
                 initial_task_ids: Optional[typing.Iterable[int]] = None,
                 fast_path: bool = True):
        super().__init__(job)
        self._engine = PolicyEngine(job, metric=metric, n=n, rng=rng,
                                    fast_path=fast_path)
        self._initial_ids = (None if initial_task_ids is None
                             else set(initial_task_ids))
        self._parked: List[Tuple["Worker", Event]] = []

    # -- engine views ----------------------------------------------------
    @property
    def engine(self) -> PolicyEngine:
        """The sim-free decision core this scheduler drives."""
        return self._engine

    @property
    def metric_name(self) -> str:
        return self._engine.metric_name

    @property
    def n(self) -> int:
        return self._engine.n

    @property
    def decisions(self) -> int:
        return self._engine.decisions

    @property
    def tasks_scored(self) -> int:
        return self._engine.tasks_scored

    @property
    def _pending(self):
        return self._engine.pending

    # -- lifecycle -------------------------------------------------------
    def _on_bound(self) -> None:
        for site in self.grid.sites:
            self._engine.watch_storage(site.site_id, site.storage)
        for task in self.job:
            if self._initial_ids is None or task.task_id in self._initial_ids:
                self._engine.add_task(task)

    # -- GridScheduler -----------------------------------------------------
    def next_task(self, worker: "Worker") -> Event:
        event = Event(self.grid.env)
        if not self._engine.has_pending:
            if self.tasks_remaining == 0:
                event.succeed(None)
            else:
                # Everything is assigned but not yet complete; park until
                # the job finishes (or a failure requeues a task).
                self._parked.append((worker, event))
                self.job_done.add_callback(
                    lambda _e: self._drain_parked())
            return event
        task = self._choose(worker)
        self._retire(task)
        self._trace_assignment(worker, task)
        event.succeed(task)
        return event

    def notify_cancelled(self, worker: "Worker", task: Task) -> None:
        # Worker-centric scheduling never replicates, so a cancellation
        # can only come from failure injection: put the task back.
        if not self.is_completed(task.task_id):
            self.requeue(task)

    # -- internals -------------------------------------------------------
    def _choose(self, worker: "Worker") -> Task:
        return self._engine.choose(worker.site.site_id)

    def _retire(self, task: Task) -> None:
        self._engine.remove_task(task)

    def _zero_overlap_candidates(self, site_id: int) -> List[int]:
        return self._engine.zero_overlap_candidates(site_id)

    def requeue(self, task: Task) -> None:
        """Return an assigned-but-unfinished task to the pending set."""
        self.release_tasks([task])

    def release_tasks(self, tasks: typing.Iterable[Task]) -> None:
        """Make deferred tasks schedulable (asynchronous job arrival).

        Tasks must belong to the job this scheduler was built with and
        not be pending already.  Parked idle workers are dispatched
        immediately.
        """
        for task in tasks:
            self._engine.add_task(task)
        while self._parked and self._engine.has_pending:
            worker, event = self._parked.pop(0)
            if event.triggered:
                continue
            chosen = self._choose(worker)
            self._retire(chosen)
            self._trace_assignment(worker, chosen)
            event.succeed(chosen)

    def _drain_parked(self) -> None:
        parked, self._parked = self._parked, []
        for _worker, event in parked:
            if not event.triggered:
                event.succeed(None)
