"""The paper's worker-centric scheduling algorithm (Figure 2).

Each worker asks the global scheduler for a task whenever it is idle.
The scheduler scores every pending task for the requesting worker with
``CalculateWeight`` (one of the metrics in :mod:`repro.core.metrics`)
and picks one with ``ChooseTask(n)``:

1. take the ``n`` highest-weighted tasks,
2. pick among them with probability proportional to their weights
   (``n = 1`` is the deterministic argmax; ``n = 2`` is the paper's
   randomized ``rest.2`` / ``combined.2`` variants).

Scoring is incremental: tasks with nonzero overlap come from the
:class:`~repro.core.overlap_index.OverlapIndex`; the best zero-overlap
candidates come from a lazily-pruned heap ordered per the metric (see
``ZERO_OVERLAP_ORDER``).  The result is equivalent to the paper's
O(T·I) full rescan — property-tested in the suite — at a fraction of
the cost.
"""

from __future__ import annotations

import heapq
import random
import typing
from typing import Dict, List, Optional, Tuple

from ..grid.job import Job, Task
from ..sim.events import Event
from .base import BaseScheduler
from .metrics import METRICS, ZERO_OVERLAP_ORDER, TaskView
from .overlap_index import OverlapIndex

if typing.TYPE_CHECKING:  # pragma: no cover
    from ..grid.worker import Worker


class WorkerCentricScheduler(BaseScheduler):
    """Pull scheduler with pluggable data-locality metric.

    Parameters
    ----------
    job:
        The bag of tasks to schedule.
    metric:
        One of ``overlap``, ``rest``, ``combined``, ``combined-literal``.
    n:
        ChooseTask(n) candidate-set size; ``1`` = deterministic.
    rng:
        Random stream used by the randomized variants (``n >= 2``).
    """

    #: Worker-centric scheduling handles asynchronously arriving work
    #: natively — new tasks simply join the pending set.
    supports_dynamic_release = True

    def __init__(self, job: Job, metric: str = "rest", n: int = 1,
                 rng: Optional[random.Random] = None,
                 initial_task_ids: Optional[typing.Iterable[int]] = None):
        super().__init__(job)
        if metric not in METRICS:
            raise ValueError(f"unknown metric {metric!r}; "
                             f"choose from {sorted(METRICS)}")
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        self.metric_name = metric
        self.n = n
        self._initial_ids = (None if initial_task_ids is None
                             else set(initial_task_ids))
        self._weight = METRICS[metric]
        self._rng = rng or random.Random(0)
        self._pending: Dict[int, Task] = {}
        self._index: Optional[OverlapIndex] = None
        self._zero_heap: List[Tuple] = []
        self._parked: List[Tuple["Worker", Event]] = []
        #: Instrumentation: scheduling decisions made and tasks scored
        #: (the paper's T·I term), for the complexity ablation.
        self.decisions = 0
        self.tasks_scored = 0

    # -- lifecycle -------------------------------------------------------
    def _on_bound(self) -> None:
        initial = [task for task in self.job
                   if self._initial_ids is None
                   or task.task_id in self._initial_ids]
        self._index = OverlapIndex(self.job, tasks=initial)
        for site in self.grid.sites:
            self._index.watch_site(site.site_id, site.storage)
        for task in initial:
            self._pending[task.task_id] = task
            self._push_zero_candidate(task)

    def _push_zero_candidate(self, task: Task) -> None:
        order = ZERO_OVERLAP_ORDER[self.metric_name]
        if order == "min_files":
            entry = (task.num_files, task.task_id)
        elif order == "max_files":
            entry = (-task.num_files, task.task_id)
        else:  # fifo
            entry = (task.task_id,)
        heapq.heappush(self._zero_heap, entry)

    # -- GridScheduler -----------------------------------------------------
    def next_task(self, worker: "Worker") -> Event:
        event = Event(self.grid.env)
        if not self._pending:
            if self.tasks_remaining == 0:
                event.succeed(None)
            else:
                # Everything is assigned but not yet complete; park until
                # the job finishes (or a failure requeues a task).
                self._parked.append((worker, event))
                self.job_done.add_callback(
                    lambda _e: self._drain_parked())
            return event
        task = self._choose(worker)
        self._retire(task)
        self._trace_assignment(worker, task)
        event.succeed(task)
        return event

    def notify_cancelled(self, worker: "Worker", task: Task) -> None:
        # Worker-centric scheduling never replicates, so a cancellation
        # can only come from failure injection: put the task back.
        if not self.is_completed(task.task_id):
            self.requeue(task)

    # -- internals -------------------------------------------------------
    def _retire(self, task: Task) -> None:
        del self._pending[task.task_id]
        self._index.remove_task(task)

    def requeue(self, task: Task) -> None:
        """Return an assigned-but-unfinished task to the pending set."""
        self.release_tasks([task])

    def release_tasks(self, tasks: typing.Iterable[Task]) -> None:
        """Make deferred tasks schedulable (asynchronous job arrival).

        Tasks must belong to the job this scheduler was built with and
        not be pending already.  Parked idle workers are dispatched
        immediately.
        """
        for task in tasks:
            if task.task_id in self._pending:
                raise ValueError(
                    f"task {task.task_id} is already pending")
            self._pending[task.task_id] = task
            self._index.add_task(task)
            self._push_zero_candidate(task)
        while self._parked and self._pending:
            worker, event = self._parked.pop(0)
            if event.triggered:
                continue
            chosen = self._choose(worker)
            self._retire(chosen)
            self._trace_assignment(worker, chosen)
            event.succeed(chosen)

    def _drain_parked(self) -> None:
        parked, self._parked = self._parked, []
        for _worker, event in parked:
            if not event.triggered:
                event.succeed(None)

    def _choose(self, worker: "Worker") -> Task:
        """CalculateWeight over candidates + ChooseTask(n)."""
        self.decisions += 1
        site_id = worker.site.site_id
        index = self._index
        total_rest = index.total_rest(site_id)
        total_ref = index.total_refsum(site_id)
        overlaps = index.nonzero_overlaps(site_id)
        refsums = index._sites[site_id].refsum

        # Rank: higher weight first, lower task id breaks ties.
        best: List[Tuple[float, int]] = []  # (weight, task_id), len <= n

        def offer(weight: float, task_id: int) -> None:
            if len(best) < self.n:
                best.append((weight, task_id))
                best.sort(key=lambda pair: (-pair[0], pair[1]))
                return
            tail_weight, tail_id = best[-1]
            if weight > tail_weight or (weight == tail_weight
                                        and task_id < tail_id):
                best[-1] = (weight, task_id)
                best.sort(key=lambda pair: (-pair[0], pair[1]))

        for task_id, overlap in overlaps.items():
            task = self._pending.get(task_id)
            if task is None:  # defensive; index tracks pending only
                continue
            view = TaskView(task_id=task_id, num_files=task.num_files,
                            overlap=overlap,
                            refsum=refsums.get(task_id, 0.0),
                            total_refsum=total_ref, total_rest=total_rest)
            offer(self._weight(view), task_id)
            self.tasks_scored += 1

        for task_id in self._zero_overlap_candidates(site_id):
            task = self._pending[task_id]
            view = TaskView(task_id=task_id, num_files=task.num_files,
                            overlap=0, refsum=0.0,
                            total_refsum=total_ref, total_rest=total_rest)
            offer(self._weight(view), task_id)
            self.tasks_scored += 1

        return self._pending[self._sample(best)]

    def _zero_overlap_candidates(self, site_id: int) -> List[int]:
        """Up to ``n`` best pending tasks with zero overlap at the site.

        Pops dead heap entries permanently; live entries that are merely
        inspected are pushed back for future requests.
        """
        overlaps = self._index.nonzero_overlaps(site_id)
        chosen: List[int] = []
        skipped: List[Tuple] = []
        while self._zero_heap and len(chosen) < self.n:
            entry = heapq.heappop(self._zero_heap)
            task_id = entry[-1] if len(entry) > 1 else entry[0]
            if task_id not in self._pending:
                continue  # stale: task was assigned; drop permanently
            skipped.append(entry)
            if task_id not in overlaps:
                chosen.append(task_id)
        for entry in skipped:
            heapq.heappush(self._zero_heap, entry)
        return chosen

    def _sample(self, best: List[Tuple[float, int]]) -> int:
        """ChooseTask(n): weight-proportional pick among the best."""
        if not best:
            raise RuntimeError("no candidate tasks to choose from")
        if len(best) == 1 or self.n == 1:
            return best[0][1]
        total = sum(weight for weight, _tid in best)
        if total <= 0:
            # All candidate weights are zero (e.g. cold-start overlap
            # metric): uniform random among the candidate set.
            return self._rng.choice(best)[1]
        point = self._rng.random() * total
        acc = 0.0
        for weight, task_id in best:
            acc += weight
            if point <= acc:
                return task_id
        return best[-1][1]
