"""Locality-blind baselines: FIFO workqueue and random dispatch.

The traditional *workqueue* algorithm (Cirne et al.) dispatches tasks
in FIFO order to idle workers — worker-centric by the paper's
definition, but ignoring data location entirely.  ``random`` dispatches
a uniformly random pending task instead.  Both serve as sanity anchors
in benchmarks: every data-aware strategy should beat them on
data-intensive workloads.
"""

from __future__ import annotations

import random
import typing
from collections import OrderedDict
from typing import Iterable, List, Optional, Tuple

from ..grid.job import Job, Task
from ..sim.events import Event
from .base import BaseScheduler

if typing.TYPE_CHECKING:  # pragma: no cover
    from ..grid.worker import Worker


class WorkqueueScheduler(BaseScheduler):
    """FIFO (or uniformly random) pull dispatch without data awareness.

    Parameters
    ----------
    job:
        The bag of tasks.
    randomize:
        Dispatch a uniformly random pending task instead of the oldest.
    rng:
        Random stream for the randomized variant.
    """

    supports_dynamic_release = True

    def __init__(self, job: Job, randomize: bool = False,
                 rng: Optional[random.Random] = None,
                 initial_task_ids: Optional[Iterable[int]] = None):
        super().__init__(job)
        self.randomize = randomize
        self._rng = rng or random.Random(0)
        wanted = None if initial_task_ids is None else set(initial_task_ids)
        self._pending: "OrderedDict[int, Task]" = OrderedDict(
            (task.task_id, task) for task in job
            if wanted is None or task.task_id in wanted)
        self._parked: List[Tuple["Worker", Event]] = []

    def _on_bound(self) -> None:
        pass

    def release_tasks(self, tasks: Iterable[Task]) -> None:
        """Asynchronous arrival: append tasks and wake parked workers."""
        for task in tasks:
            if task.task_id in self._pending:
                raise ValueError(f"task {task.task_id} already pending")
            self._pending[task.task_id] = task
        while self._parked and self._pending:
            worker, event = self._parked.pop(0)
            if event.triggered:
                continue
            if self.randomize:
                task_id = self._rng.choice(list(self._pending))
                task = self._pending.pop(task_id)
            else:
                _tid, task = self._pending.popitem(last=False)
            self._trace_assignment(worker, task)
            event.succeed(task)

    def next_task(self, worker: "Worker") -> Event:
        event = Event(self.grid.env)
        if not self._pending:
            if self.tasks_remaining == 0:
                event.succeed(None)
            else:
                self._parked.append((worker, event))
                self.job_done.add_callback(lambda _e: self._drain_parked())
            return event
        if self.randomize:
            task_id = self._rng.choice(list(self._pending))
            task = self._pending.pop(task_id)
        else:
            _tid, task = self._pending.popitem(last=False)
        self._trace_assignment(worker, task)
        event.succeed(task)
        return event

    def notify_cancelled(self, worker: "Worker", task: Task) -> None:
        if not self.is_completed(task.task_id):
            self._pending[task.task_id] = task

    def _drain_parked(self) -> None:
        parked, self._parked = self._parked, []
        for _worker, event in parked:
            if not event.triggered:
                event.succeed(None)
