"""XSufferage (Casanova et al., HCW 2000) — extra task-centric baseline.

The storage-affinity paper [14] positions itself against XSufferage, so
a faithful reproduction of the lineage includes it: a push heuristic
built on per-*site* minimum estimated completion times (MCT).

For each scheduling event:

1. for every pending task, estimate its completion time on every site
   (transfer estimate for the files missing from the site's storage,
   over the site's uplink bottleneck, plus the site's queued backlog,
   plus compute on the site's fastest idle-or-soonest worker);
2. the task's *sufferage* is (second-best site MCT) - (best site MCT) —
   how much the task suffers if denied its best site;
3. dispatch the max-sufferage task to its best site.

Driven from the pull interface the same way storage affinity is: a
worker going idle triggers scheduling events until a task lands on it
(tasks routed to other sites join those workers' queues), which is
push-with-queues semantics.

Estimates use static information only (topology bandwidths, worker
speeds, storage contents at decision time) — like the original, they go
stale, which is precisely the weakness the worker-centric paper
exploits.
"""

from __future__ import annotations

import typing
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..grid.job import Job, Task
from ..sim.events import Event
from .base import BaseScheduler

if typing.TYPE_CHECKING:  # pragma: no cover
    from ..grid.worker import Worker


class XSufferageScheduler(BaseScheduler):
    """Task-centric MCT dispatch with per-worker queues.

    ``policy`` selects the classic heuristic family member:

    * ``"xsufferage"`` (default) — dispatch the task that *suffers*
      most if denied its best site (second-best MCT − best MCT);
    * ``"minmin"`` — dispatch the task with the smallest best-site MCT
      (fast, locality-friendly tasks first; starves big ones);
    * ``"maxmin"`` — dispatch the task with the *largest* best-site MCT
      (big tasks first; good tail behaviour, weak locality).
    """

    POLICIES = ("xsufferage", "minmin", "maxmin")

    def __init__(self, job: Job, rng=None, policy: str = "xsufferage"):
        super().__init__(job)
        if policy not in self.POLICIES:
            raise ValueError(f"unknown MCT policy {policy!r}; "
                             f"choose from {self.POLICIES}")
        self.policy = policy
        self._pending: Dict[int, Task] = {}
        self._queues: Dict[str, Deque[Task]] = {}
        self._parked: List[Tuple["Worker", Event]] = []
        #: Estimated queued backlog (seconds) per site.
        self._site_backlog: List[float] = []
        self._site_bandwidth: List[float] = []
        self._site_speed: List[float] = []

    # -- lifecycle -------------------------------------------------------
    def _on_bound(self) -> None:
        grid = self.grid
        self._pending = {task.task_id: task for task in self.job}
        for worker in grid.workers:
            self._queues[worker.name] = deque()
        self._site_backlog = [0.0] * len(grid.sites)
        topology = grid.network.topology
        for site in grid.sites:
            route = topology.route(grid.file_server.node, site.gateway)
            self._site_bandwidth.append(route.bottleneck_bandwidth)
            self._site_speed.append(max(w.flops_per_second
                                        for w in site.workers))

    # -- estimation --------------------------------------------------------
    def _site_mct(self, task: Task, site_index: int) -> float:
        """Estimated completion time of ``task`` at the site."""
        site = self.grid.sites[site_index]
        catalog = self.job.catalog
        missing_bytes = sum(catalog.size(fid) for fid in task.files
                            if fid not in site.storage)
        transfer = missing_bytes / self._site_bandwidth[site_index]
        compute = task.flops / self._site_speed[site_index]
        return self._site_backlog[site_index] + transfer + compute


    def _estimate_cost(self, task: Task, site_index: int) -> float:
        """Backlog contribution of ``task`` once dispatched to the site."""
        site = self.grid.sites[site_index]
        catalog = self.job.catalog
        missing_bytes = sum(catalog.size(fid) for fid in task.files
                            if fid not in site.storage)
        return (missing_bytes / self._site_bandwidth[site_index]
                + task.flops / self._site_speed[site_index])

    def _pick_by_sufferage(self) -> Tuple[Optional[Task], int]:
        """(the policy's chosen pending task, its best site index)."""
        best_task: Optional[Task] = None
        best_site = 0
        best_score = None
        num_sites = len(self.grid.sites)
        for task in self._pending.values():
            mcts = sorted(
                (self._site_mct(task, s), s) for s in range(num_sites))
            first_mct, first_site = mcts[0]
            if self.policy == "xsufferage":
                score = (mcts[1][0] - first_mct) if len(mcts) > 1 else 0.0
            elif self.policy == "maxmin":
                score = first_mct
            else:  # minmin: smaller is better -> negate for max-compare
                score = -first_mct
            if best_score is None or score > best_score or (
                    score == best_score and best_task is not None
                    and task.task_id < best_task.task_id):
                best_task, best_site = task, first_site
                best_score = score
        return best_task, best_site

    # -- dispatch ----------------------------------------------------------
    def _dispatch_one(self) -> Optional[Tuple[Task, "Worker"]]:
        """Run one scheduling event; returns (task, chosen worker)."""
        task, site_index = self._pick_by_sufferage()
        if task is None:
            return None
        del self._pending[task.task_id]
        site = self.grid.sites[site_index]
        worker = min(site.workers,
                     key=lambda w: (len(self._queues[w.name]), w.name))
        self._queues[worker.name].append(task)
        self._site_backlog[site_index] += self._estimate_cost(task,
                                                              site_index)
        self._trace_assignment(worker, task)
        return task, worker

    def next_task(self, worker: "Worker") -> Event:
        event = Event(self.grid.env)
        queue = self._queues[worker.name]
        # Run scheduling events until this worker's queue is non-empty
        # or the pending set drains.
        while not queue and self._pending:
            dispatched = self._dispatch_one()
            if dispatched is None:
                break
            _task, target = dispatched
            # a task routed elsewhere may unblock a parked worker there
            if target is not worker:
                self._serve_parked()
        if queue:
            event.succeed(queue.popleft())
        elif self.tasks_remaining == 0:
            event.succeed(None)
        else:
            self._parked.append((worker, event))
        return event

    # -- hooks -------------------------------------------------------------
    def _on_first_completion(self, worker: "Worker", task: Task) -> None:
        site_index = worker.site.site_id
        self._site_backlog[site_index] = max(
            0.0, self._site_backlog[site_index]
            - self._estimate_cost(task, site_index))
        self._serve_parked()

    def notify_cancelled(self, worker: "Worker", task: Task) -> None:
        # Only failure injection cancels here (no replication): requeue.
        if not self.is_completed(task.task_id) \
                and task.task_id not in self._pending:
            self._pending[task.task_id] = task
            self._serve_parked()

    def _serve_parked(self) -> None:
        # Loop to a fixed point: dispatching for one parked worker can
        # queue a task onto another parked worker that was already
        # re-parked this pass.
        progress = True
        while progress:
            progress = False
            parked, self._parked = self._parked, []
            for worker, event in parked:
                if event.triggered:
                    progress = True
                    continue
                queue = self._queues[worker.name]
                if not queue and self._pending:
                    self._dispatch_one()
                if queue:
                    event.succeed(queue.popleft())
                    progress = True
                elif self.tasks_remaining == 0:
                    event.succeed(None)
                    progress = True
                else:
                    self._parked.append((worker, event))
