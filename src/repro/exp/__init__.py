"""Experiment harness: configs, runner, sweeps, per-figure definitions."""

from .campaign import CampaignResult, PassResult, run_campaign
from .config import ExperimentConfig
from .figures import (BENCH, PAPER, SCALES, SMALL, Scale,
                      ablation_choose_n, ablation_combined_formula,
                      ablation_data_replication, ablation_task_order,
                      fig4_fig5, fig6, fig7, fig8, table2_fig3, table3)
from .reproduce import reproduce_all
from .report import (format_series, format_site_summaries, format_sweep_table,
                     format_table3)
from .runner import (AveragedResult, ExperimentResult, build_grid,
                     build_job, run_averaged, run_experiment)
from .store import ResultRecord, ResultStore
from .sweep import SweepResult, run_sweep
from .validate import GridValidator, InvariantViolation

__all__ = [
    "AveragedResult",
    "BENCH",
    "CampaignResult",
    "PassResult",
    "run_campaign",
    "ExperimentConfig",
    "ExperimentResult",
    "GridValidator",
    "InvariantViolation",
    "PAPER",
    "ResultRecord",
    "ResultStore",
    "SCALES",
    "SMALL",
    "Scale",
    "SweepResult",
    "ablation_choose_n",
    "ablation_combined_formula",
    "ablation_data_replication",
    "ablation_task_order",
    "build_grid",
    "build_job",
    "fig4_fig5",
    "fig6",
    "fig7",
    "fig8",
    "format_series",
    "format_site_summaries",
    "format_sweep_table",
    "format_table3",
    "reproduce_all",
    "run_averaged",
    "run_experiment",
    "run_sweep",
    "table2_fig3",
    "table3",
]
