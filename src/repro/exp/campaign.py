"""Running multi-job campaigns.

A campaign (see :mod:`repro.workload.campaign`) is a sequence of jobs
over one file universe.  :func:`run_campaign` executes it on one grid
with warm storage carried across jobs, in one of two arrival modes:

* ``sequential`` — job *k+1*'s tasks are released the moment job *k*
  completes (a back-to-back observing campaign);
* ``immediate`` — every job is available from time zero (the offline
  bound).

Inter-job data reuse is the point: later passes find most of their
field files already cached at the sites, so their per-pass makespans
and transfer counts drop — the effect the storage-affinity paper [14]
built its evaluation around, measured here under worker-centric
scheduling.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..analysis.trace import TaskCompleted
from ..core.registry import create_scheduler
from ..sim.rng import RngRegistry, derive_seed
from ..workload.campaign import Campaign
from .config import ExperimentConfig
from .runner import build_grid


@dataclass(frozen=True)
class PassResult:
    """Outcome of one job of a campaign."""

    name: str
    num_tasks: int
    released_at: float
    completed_at: float
    #: File transfers that happened while this pass was the newest
    #: released one (attribution is by period, not by task).
    transfers_in_period: int

    @property
    def duration(self) -> float:
        return self.completed_at - self.released_at

    @property
    def duration_minutes(self) -> float:
        return self.duration / 60.0


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of a whole campaign run."""

    passes: Tuple[PassResult, ...]
    makespan: float
    file_transfers: int

    @property
    def makespan_minutes(self) -> float:
        return self.makespan / 60.0


class _SequentialReleaser:
    """Releases pass k+1 when the last task of pass k completes."""

    def __init__(self, grid, campaign: Campaign):
        self.grid = grid
        self.campaign = campaign
        self._starts = [m.first_task_id for m in campaign.members]
        self._remaining = [m.num_tasks for m in campaign.members]
        self._released_at = [0.0] + [None] * (len(campaign.members) - 1)
        self._completed_at: List[Optional[float]] = \
            [None] * len(campaign.members)
        self._transfer_marks: List[Optional[int]] = \
            [None] * len(campaign.members)
        self._next = 1
        grid.trace.subscribe(TaskCompleted, self._on_complete)

    def _member_of(self, task_id: int) -> int:
        return bisect.bisect_right(self._starts, task_id) - 1

    def _on_complete(self, record: TaskCompleted) -> None:
        member = self._member_of(record.task_id)
        self._remaining[member] -= 1
        if self._remaining[member] > 0:
            return
        self._completed_at[member] = record.time
        self._transfer_marks[member] = \
            self.grid.file_server.transfers_served
        if self._next < len(self.campaign.members) \
                and member == self._next - 1:
            index = self._next
            self._next += 1
            self._released_at[index] = self.grid.env.now
            self.grid.scheduler.release_tasks(
                self.campaign.member_tasks(index))

    def results(self) -> List[PassResult]:
        out = []
        previous_mark = 0
        for index, member in enumerate(self.campaign.members):
            mark = self._transfer_marks[index]
            out.append(PassResult(
                name=member.name,
                num_tasks=member.num_tasks,
                released_at=self._released_at[index],
                completed_at=self._completed_at[index],
                transfers_in_period=mark - previous_mark,
            ))
            previous_mark = mark
        return out


def run_campaign(config: ExperimentConfig, campaign: Campaign,
                 mode: str = "sequential") -> CampaignResult:
    """Execute ``campaign`` under ``config`` (scheduler, topology, ...).

    ``config.num_tasks`` is ignored (the campaign defines the tasks);
    everything else applies.
    """
    if mode not in ("sequential", "immediate"):
        raise ValueError(f"unknown mode {mode!r}")
    grid = build_grid(config, campaign.job)
    rng = RngRegistry(derive_seed(config.seed,
                                  f"sched:{config.topology_seed}"))
    if mode == "sequential" and len(campaign.members) > 1:
        initial = frozenset(campaign.members[0].task_ids)
        scheduler = create_scheduler(config.scheduler, campaign.job,
                                     rng.stream("scheduler"),
                                     initial_task_ids=initial)
        grid.attach_scheduler(scheduler)
        releaser = _SequentialReleaser(grid, campaign)
        grid.run()
        passes = releaser.results()
    else:
        scheduler = create_scheduler(config.scheduler, campaign.job,
                                     rng.stream("scheduler"))
        grid.attach_scheduler(scheduler)
        tracker = _SequentialReleaser(grid, campaign)
        tracker._next = len(campaign.members)  # nothing to release
        grid.run()
        passes = tracker.results()
    return CampaignResult(
        passes=tuple(passes),
        makespan=max(p.completed_at for p in passes),
        file_transfers=grid.file_server.transfers_served,
    )
