"""Experiment configuration.

:class:`ExperimentConfig` captures one simulated run of one scheduling
algorithm — the paper's Table 1 defaults are the field defaults:

===========================  =================
capacity of each data server 6000 files
number of workers per site   1
number of sites              10
file size                    25 MB
===========================  =================

Workload, topology shape, and mechanism toggles are all here so a
config is a complete, hashable description of a run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..grid.files import MB
from ..net.tiers import TiersParams
from ..workload.coadd import CoaddParams


@dataclass(frozen=True)
class ExperimentConfig:
    """Complete description of one simulation run.

    Attributes
    ----------
    scheduler:
        Registry name (see :mod:`repro.core.registry`), e.g.
        ``"combined.2"`` or ``"storage-affinity"``.
    workload:
        ``"coadd"`` (the paper's), ``"uniform"``, ``"zipf"`` or
        ``"window"``.
    task_order:
        Presentation order of the task queue: ``"shuffled"`` (default;
        see :mod:`repro.workload.ordering`), ``"natural"`` (sorted by
        stripe position) or ``"striped"``.
    num_tasks:
        Tasks in the job (the paper uses the first 6,000 of Coadd).
    num_sites / workers_per_site / capacity_files / file_size_mb:
        The four swept parameters (Table 1 defaults).
    seed:
        Master seed; workload, topology, speeds, and scheduler
        randomness all derive from it (plus ``topology_seed``).
    topology_seed:
        Extra seed for the topology/speeds draw, so the paper's
        "5 different topologies, results averaged" protocol is
        ``run_averaged(config, topology_seeds=range(5))``.
    flops_per_file:
        Compute cost per input file (workers' speeds come from the
        Top500 sampler).
    replicate_data:
        Enable the orthogonal proactive data-replication mechanism.
    worker_mtbf:
        When set, inject worker failures with this mean time between
        attempts (seconds); ``worker_repair_time`` is the downtime.
    background_load:
        Enable PlanetLab-style background CPU load: workers alternate
        free/loaded states (``load_fraction`` of time loaded, compute
        stretched by ``load_slowdown``, mean loaded dwell
        ``load_dwell`` seconds).
    cross_traffic:
        Inject Poisson background flows between site gateways (mean
        interarrival ``cross_traffic_interarrival`` seconds, mean size
        ``cross_traffic_mean_mb`` MB), squeezing the grid's transfers.
    keep_trace:
        Store full trace records (memory-heavy; per-record analysis).
    """

    scheduler: str = "combined.2"
    workload: str = "coadd"
    task_order: str = "shuffled"
    num_tasks: int = 6000
    num_sites: int = 10
    workers_per_site: int = 1
    capacity_files: int = 6000
    file_size_mb: float = 25.0
    seed: int = 0
    topology_seed: int = 0
    flops_per_file: float = 6.0e9
    replicate_data: bool = False
    replication_threshold: int = 3
    replication_max_replicas: int = 2
    worker_mtbf: Optional[float] = None
    worker_repair_time: float = 300.0
    data_server_parallelism: int = 1
    background_load: bool = False
    load_slowdown: float = 4.0
    load_fraction: float = 0.3
    load_dwell: float = 600.0
    cross_traffic: bool = False
    cross_traffic_interarrival: float = 60.0
    cross_traffic_mean_mb: float = 25.0
    keep_trace: bool = False
    tiers: Optional[TiersParams] = None

    def __post_init__(self):
        if self.num_tasks < 1:
            raise ValueError("num_tasks must be >= 1")
        if self.num_sites < 1:
            raise ValueError("num_sites must be >= 1")
        if self.workers_per_site < 1:
            raise ValueError("workers_per_site must be >= 1")
        if self.capacity_files < 1:
            raise ValueError("capacity_files must be >= 1")
        if self.file_size_mb <= 0:
            raise ValueError("file_size_mb must be positive")
        if self.task_order not in ("natural", "shuffled", "striped"):
            raise ValueError(f"unknown task_order {self.task_order!r}")
        if self.data_server_parallelism < 1:
            raise ValueError("data_server_parallelism must be >= 1")
        if self.background_load:
            if self.load_slowdown <= 1.0:
                raise ValueError("load_slowdown must be > 1")
            if not 0.0 < self.load_fraction < 1.0:
                raise ValueError("load_fraction must be in (0, 1)")
        if self.cross_traffic:
            if self.cross_traffic_interarrival <= 0:
                raise ValueError(
                    "cross_traffic_interarrival must be positive")
            if self.cross_traffic_mean_mb <= 0:
                raise ValueError("cross_traffic_mean_mb must be positive")

    @property
    def file_size_bytes(self) -> float:
        return self.file_size_mb * MB

    def with_changes(self, **changes) -> "ExperimentConfig":
        """A copy with the given fields replaced (sweep helper)."""
        return replace(self, **changes)

    def tiers_params(self) -> TiersParams:
        """The topology generator parameters for this config."""
        if self.tiers is not None:
            if self.tiers.num_sites < self.num_sites:
                raise ValueError(
                    f"custom tiers has {self.tiers.num_sites} sites but "
                    f"config needs {self.num_sites}")
            return self.tiers
        return TiersParams(num_sites=self.num_sites)

    def coadd_params(self) -> CoaddParams:
        """Coadd generator parameters for this config's scale."""
        return CoaddParams(num_tasks=self.num_tasks,
                           file_size=self.file_size_bytes,
                           flops_per_file=self.flops_per_file)
