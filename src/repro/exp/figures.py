"""Per-figure experiment definitions for every table and figure.

Each of the paper's evaluation artifacts (Figures 3-8, Tables 2-3) has
a function here that runs the corresponding experiment and returns its
data; the benchmark harness calls these and prints the paper-shaped
tables.  Experiments accept a :class:`Scale`:

* ``SMALL`` — seconds; used by integration tests.
* ``BENCH`` — a 1/10-scale Coadd (600 tasks) with capacities and sweep
  ranges scaled accordingly; minutes for the whole suite.
* ``PAPER`` — the paper's full protocol (6,000 tasks, 5 topologies);
  hours of wall time, for offline reproduction runs.

Scaling keeps the *ratios* the paper's effects depend on — capacity
versus total files, working-set size versus capacity — so the shapes
(who wins, where curves flatten or cross) are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..analysis.metrics import aggregate_sites
from ..core.registry import PAPER_ALGORITHMS
from ..workload.stats import WorkloadStats, characterize
from .config import ExperimentConfig
from .runner import build_job, run_averaged
from .sweep import SweepResult, run_sweep

Progress = Optional[Callable[[str], None]]


@dataclass(frozen=True)
class Scale:
    """Experiment sizing preset."""

    name: str
    num_tasks: int
    capacity_default: int
    capacities: Tuple[int, ...]        # Figure 4/5 sweep
    workers: Tuple[int, ...]           # Figure 6 sweep
    table3_workers: Tuple[int, ...]    # Table 3 rows
    sites: Tuple[int, ...]             # Figure 7 sweep
    file_sizes_mb: Tuple[float, ...]   # Figure 8 sweep
    topology_seeds: Tuple[int, ...]

    def base_config(self, **overrides) -> ExperimentConfig:
        defaults = dict(num_tasks=self.num_tasks,
                        capacity_files=self.capacity_default)
        defaults.update(overrides)
        return ExperimentConfig(**defaults)


SMALL = Scale(
    name="small", num_tasks=120, capacity_default=400,
    capacities=(150, 400, 800), workers=(2, 3), table3_workers=(2, 3),
    sites=(3, 5), file_sizes_mb=(5.0, 25.0), topology_seeds=(0,),
)

BENCH = Scale(
    name="bench", num_tasks=600, capacity_default=600,
    capacities=(300, 600, 1500, 3000), workers=(2, 4, 6, 8, 10),
    table3_workers=(2, 4, 6, 8), sites=(10, 14, 18, 22, 26),
    file_sizes_mb=(5.0, 25.0, 50.0), topology_seeds=(0, 1),
)

PAPER = Scale(
    name="paper", num_tasks=6000, capacity_default=6000,
    capacities=(3000, 6000, 15000, 30000),
    workers=(2, 3, 4, 5, 6, 7, 8, 9, 10), table3_workers=(2, 4, 6, 8),
    sites=(10, 14, 18, 22, 26), file_sizes_mb=(5.0, 25.0, 50.0),
    topology_seeds=(0, 1, 2, 3, 4),
)

SCALES = {scale.name: scale for scale in (SMALL, BENCH, PAPER)}


def _workers_capacity(scale: Scale, max_workers: int) -> int:
    """Capacity for the workers sweep: concurrent pinned batches of up
    to ``max_workers + 1`` tasks must fit, or the run deadlocks by
    design (a single site's working set exceeding storage)."""
    return max(scale.capacity_default, (max_workers + 1) * 130)


# -- workload characterization (Table 2, Figures 1 & 3) -------------------

def table2_fig3(scale: Scale = BENCH, seed: int = 0) -> WorkloadStats:
    """Workload statistics of the (scaled) Coadd instance."""
    config = scale.base_config(seed=seed)
    return characterize(build_job(config))


# -- the evaluation figures ---------------------------------------------

def fig4_fig5(scale: Scale = BENCH,
              schedulers: Sequence[str] = PAPER_ALGORITHMS,
              progress: Progress = None) -> SweepResult:
    """Makespan (Fig 4) and transfer counts (Fig 5) vs capacity.

    One sweep feeds both figures, like the paper's shared runs.
    """
    return run_sweep(scale.base_config(), "capacity_files",
                     scale.capacities, schedulers,
                     topology_seeds=scale.topology_seeds,
                     progress=progress)


def fig6(scale: Scale = BENCH,
         schedulers: Sequence[str] = PAPER_ALGORITHMS,
         progress: Progress = None) -> SweepResult:
    """Makespan vs number of workers per site."""
    capacity = _workers_capacity(scale, max(scale.workers))
    return run_sweep(scale.base_config(capacity_files=capacity),
                     "workers_per_site", scale.workers, schedulers,
                     topology_seeds=scale.topology_seeds,
                     progress=progress)


def table3(scale: Scale = BENCH, scheduler: str = "rest",
           progress: Progress = None) -> List[Tuple[int, float, float, float]]:
    """Table 3: data-server service statistics for the rest metric.

    Returns rows (workers, avg waiting hours, avg transfer hours, avg
    transfers per *worker*).  Two reading notes versus the paper:
    the paper reports one hand-picked site, we report the
    request-weighted average over all data servers (same behaviour,
    less single-site noise); and its transfer column must be per worker
    — at 8 workers/site its 906 average implies ~72k transfers in
    total, consistent with the 53,390-file dataset, whereas a
    per-server reading (9k total) would be below the unique-file floor.
    """
    capacity = _workers_capacity(scale, max(scale.table3_workers))
    base = scale.base_config(capacity_files=capacity, scheduler=scheduler)
    job = build_job(base)
    rows: List[Tuple[int, float, float, float]] = []
    for workers in scale.table3_workers:
        if progress:
            progress(f"table3 workers={workers}")
        averaged = run_averaged(base.with_changes(workers_per_site=workers),
                                topology_seeds=scale.topology_seeds, job=job)
        waits: List[float] = []
        xfers: List[float] = []
        counts: List[float] = []
        for run in averaged.runs:
            pooled = aggregate_sites(run.site_stats)
            waits.append(pooled.avg_waiting_hours)
            xfers.append(pooled.avg_transfer_hours)
            counts.append(run.file_transfers
                          / (run.config.num_sites * workers))
        n = len(averaged.runs)
        rows.append((workers, sum(waits) / n, sum(xfers) / n,
                     sum(counts) / n))
    return rows


def fig7(scale: Scale = BENCH,
         schedulers: Sequence[str] = PAPER_ALGORITHMS,
         progress: Progress = None) -> SweepResult:
    """Makespan vs number of sites."""
    return run_sweep(scale.base_config(), "num_sites", scale.sites,
                     schedulers, topology_seeds=scale.topology_seeds,
                     progress=progress)


def fig8(scale: Scale = BENCH,
         schedulers: Sequence[str] = PAPER_ALGORITHMS,
         progress: Progress = None) -> SweepResult:
    """Makespan vs file size (5 / 25 / 50 MB)."""
    return run_sweep(scale.base_config(), "file_size_mb",
                     scale.file_sizes_mb, schedulers,
                     topology_seeds=scale.topology_seeds,
                     progress=progress)


# -- ablations (ours) ----------------------------------------------------

def ablation_choose_n(scale: Scale = BENCH, metric: str = "rest",
                      n_values: Sequence[int] = (1, 2, 4, 8),
                      progress: Progress = None) -> SweepResult:
    """ChooseTask(n) sensitivity: the paper reports only n in {1, 2}."""
    schedulers = [f"wc:{metric}:{n}" for n in n_values]
    return run_sweep(scale.base_config(), "capacity_files",
                     (scale.capacity_default,), schedulers,
                     topology_seeds=scale.topology_seeds,
                     progress=progress)


def ablation_combined_formula(scale: Scale = BENCH,
                              progress: Progress = None) -> SweepResult:
    """Intent-consistent vs literal printed `combined` formula."""
    return run_sweep(scale.base_config(), "capacity_files",
                     scale.capacities,
                     ("combined", "combined-literal",
                      "combined.2", "combined-literal.2"),
                     topology_seeds=scale.topology_seeds,
                     progress=progress)


def ablation_data_replication(scale: Scale = BENCH,
                              schedulers: Sequence[str] = ("rest.2",
                                                           "storage-affinity"),
                              progress: Progress = None
                              ) -> SweepResult:
    """Proactive data replication on/off (orthogonal-mechanism claim)."""
    return run_sweep(scale.base_config(), "replicate_data",
                     (False, True), schedulers,
                     topology_seeds=scale.topology_seeds,
                     progress=progress)


def ablation_data_server_parallelism(scale: Scale = BENCH,
                                     scheduler: str = "rest.2",
                                     parallelism: Sequence[int] = (1, 2, 4),
                                     workers: int = 4,
                                     progress: Progress = None
                                     ) -> SweepResult:
    """Serial vs parallel data-server service (paper assumption 3).

    Needs multiple workers per site — with one worker a site never has
    two outstanding batches, and parallelism is a no-op.
    """
    capacity = _workers_capacity(scale, workers)
    return run_sweep(
        scale.base_config(workers_per_site=workers,
                          capacity_files=capacity),
        "data_server_parallelism", tuple(parallelism), (scheduler,),
        topology_seeds=scale.topology_seeds, progress=progress)


def ablation_background_load(scale: Scale = BENCH,
                             schedulers: Sequence[str] = ("rest.2",
                                                          "storage-affinity"),
                             slowdown: float = 8.0,
                             load_fraction: float = 0.4,
                             progress: Progress = None) -> SweepResult:
    """PlanetLab-style worker overload (the paper's motivation).

    Runs in a compute-heavy regime (otherwise the network-bound Coadd
    hides CPU churn entirely) and toggles the background load on/off.
    """
    base = scale.base_config(workers_per_site=2,
                             capacity_files=_workers_capacity(scale, 2),
                             flops_per_file=2.0e11,
                             load_slowdown=slowdown,
                             load_fraction=load_fraction)
    return run_sweep(base, "background_load", (False, True), schedulers,
                     topology_seeds=scale.topology_seeds,
                     progress=progress)


def ablation_cross_traffic(scale: Scale = BENCH,
                           schedulers: Sequence[str] = ("rest.2",
                                                        "storage-affinity",
                                                        "workqueue"),
                           progress: Progress = None) -> SweepResult:
    """Network weather: Poisson background flows between sites.

    The offered load stays below link capacity (see
    :mod:`repro.net.crosstraffic`); what changes is the headroom the
    grid's own transfers get.
    """
    return run_sweep(scale.base_config(), "cross_traffic",
                     (False, True), schedulers,
                     topology_seeds=scale.topology_seeds,
                     progress=progress)


def ablation_task_order(scale: Scale = BENCH,
                        schedulers: Sequence[str] = ("rest", "overlap",
                                                     "workqueue"),
                        progress: Progress = None) -> SweepResult:
    """Task presentation order sensitivity (natural/shuffled/striped)."""
    return run_sweep(scale.base_config(), "task_order",
                     ("natural", "shuffled", "striped"), schedulers,
                     topology_seeds=scale.topology_seeds,
                     progress=progress)
