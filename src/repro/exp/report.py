"""ASCII rendering of sweep results in the paper's figure/table layout.

Figures in the paper are line plots (x = swept parameter, one line per
algorithm); here each becomes an aligned table with one column per
algorithm, which is what the benchmark harness prints and what
EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..analysis.metrics import SiteServiceSummary
from .runner import AveragedResult
from .sweep import SweepResult


def format_sweep_table(sweep: SweepResult, metric: str = "makespan_minutes",
                       title: Optional[str] = None,
                       value_format: str = "{:>12.1f}",
                       transform: Optional[Callable[[AveragedResult], float]]
                       = None) -> str:
    """Render one metric of a sweep as an aligned ASCII table.

    ``transform`` overrides ``metric`` extraction when a derived value
    is wanted (e.g. per-server transfer counts).
    """
    header_cells = [f"{sweep.field:>16s}"]
    header_cells += [f"{name:>18s}" for name in sweep.schedulers]
    lines = []
    if title:
        lines.append(title)
    lines.append(" ".join(header_cells))
    for value in sweep.values:
        row = [f"{str(value):>16s}"]
        for scheduler in sweep.schedulers:
            cell = sweep.cells[(scheduler, value)]
            number = (transform(cell) if transform is not None
                      else getattr(cell, metric))
            row.append(f"{value_format.format(number):>18s}")
        lines.append(" ".join(row))
    return "\n".join(lines)


def format_series(points: Sequence, label: str = "",
                  value_format: str = "{:.1f}") -> str:
    """One (x, y) series as `x y` lines, gnuplot-style."""
    lines = [f"# {label}"] if label else []
    for x, y in points:
        lines.append(f"{x} {value_format.format(y)}")
    return "\n".join(lines)


def format_table3(rows: Sequence[tuple], ) -> str:
    """Render Table 3: (workers, waiting h, transfer h, transfers)."""
    lines = [f"{'':>12s} {'waiting':>12s} {'transfer':>12s} {'# of file':>12s}",
             f"{'':>12s} {'time (hrs)':>12s} {'time (hrs)':>12s} {'transfers':>12s}"]
    for workers, waiting_h, transfer_h, transfers in rows:
        lines.append(f"{str(workers) + ' workers':>12s} "
                     f"{waiting_h:>12.2f} {transfer_h:>12.2f} "
                     f"{transfers:>12.2f}")
    return "\n".join(lines)


def format_site_summaries(summaries: Sequence[SiteServiceSummary]) -> str:
    """Per-site service statistics as an aligned table."""
    lines = [f"{'site':>6s} {'requests':>9s} {'wait (h)':>10s} "
             f"{'xfer (h)':>10s} {'transfers':>10s}"]
    for s in summaries:
        lines.append(f"{s.site:>6d} {s.requests:>9d} "
                     f"{s.avg_waiting_hours:>10.3f} "
                     f"{s.avg_transfer_hours:>10.3f} "
                     f"{s.avg_transfers:>10.2f}")
    return "\n".join(lines)
