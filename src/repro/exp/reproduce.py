"""One-shot reproduction: every table and figure into a single report.

``reproduce_all`` runs the full evaluation (Table 2/Figure 3, Figures
4-8, Table 3, and optionally the ablations) at a chosen scale and
renders one markdown report, mirroring the paper's evaluation section.
Exposed as ``python -m repro reproduce``.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..workload.stats import reference_cdf_series
from . import figures
from .figures import Scale
from .report import format_sweep_table, format_table3

Progress = Optional[Callable[[str], None]]


def _section(title: str, body: str) -> str:
    return f"## {title}\n\n```\n{body}\n```\n"


def reproduce_all(scale: Scale, include_ablations: bool = False,
                  progress: Progress = None) -> str:
    """Run the whole evaluation at ``scale``; returns a markdown report."""

    def note(message: str) -> None:
        if progress:
            progress(message)

    sections: List[str] = [
        f"# Reproduction report (scale={scale.name}, "
        f"{scale.num_tasks} tasks, "
        f"{len(scale.topology_seeds)} topologies)\n",
    ]

    note("Table 2 / Figure 3: workload characterization")
    stats = figures.table2_fig3(scale)
    cdf_lines = "\n".join(
        f"  >= {refs:2d} refs: {percent:5.1f}%"
        for refs, percent in reference_cdf_series(stats))
    sections.append(_section(
        "Table 2 + Figure 3 - workload",
        stats.as_table() + "\n\nreference CDF:\n" + cdf_lines))

    note("Figures 4 & 5: capacity sweep")
    sweep45 = figures.fig4_fig5(scale, progress=progress)
    sections.append(_section(
        "Figure 4 - makespan (minutes) vs capacity",
        format_sweep_table(sweep45, metric="makespan_minutes")))
    sections.append(_section(
        "Figure 5 - file transfers per data server vs capacity",
        format_sweep_table(
            sweep45,
            transform=lambda cell: cell.file_transfers
            / sweep45.base.num_sites)))

    note("Figure 6: workers sweep")
    sweep6 = figures.fig6(scale, progress=progress)
    sections.append(_section(
        "Figure 6 - makespan (minutes) vs workers per site",
        format_sweep_table(sweep6, metric="makespan_minutes")))

    note("Table 3: data-server statistics")
    rows = figures.table3(scale, progress=progress)
    sections.append(_section(
        "Table 3 - rest metric data-server statistics "
        "(transfers per worker)",
        format_table3(rows)))

    note("Figure 7: sites sweep")
    sweep7 = figures.fig7(scale, progress=progress)
    sections.append(_section(
        "Figure 7 - makespan (minutes) vs number of sites",
        format_sweep_table(sweep7, metric="makespan_minutes")))

    note("Figure 8: file-size sweep")
    sweep8 = figures.fig8(scale, progress=progress)
    sections.append(_section(
        "Figure 8 - makespan (minutes) vs file size (MB)",
        format_sweep_table(sweep8, metric="makespan_minutes")))

    if include_ablations:
        note("Ablation: ChooseTask(n)")
        sections.append(_section(
            "Ablation - ChooseTask(n)",
            format_sweep_table(figures.ablation_choose_n(scale),
                               metric="makespan_minutes")))
        note("Ablation: combined formula")
        sections.append(_section(
            "Ablation - combined vs combined-literal",
            format_sweep_table(figures.ablation_combined_formula(scale),
                               metric="makespan_minutes")))
        note("Ablation: data replication")
        sections.append(_section(
            "Ablation - proactive data replication",
            format_sweep_table(figures.ablation_data_replication(scale),
                               metric="makespan_minutes")))
        note("Ablation: task order")
        sections.append(_section(
            "Ablation - task presentation order",
            format_sweep_table(figures.ablation_task_order(scale),
                               metric="makespan_minutes")))

    return "\n".join(sections)
