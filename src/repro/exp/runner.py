"""Build-and-run glue: config -> grid -> scheduler -> result.

:func:`run_experiment` executes one config; :func:`run_averaged`
repeats it over several topologies (the paper's protocol: "each
experiment is performed with 5 different topologies and the results
are averaged over the 5 runs").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..analysis.trace import TraceBus
from ..core.registry import create_scheduler
from ..core.replication import DataReplicator
from ..grid.cluster import Grid, GridRunResult
from ..grid.data_server import DataServerStats
from ..grid.failures import WorkerFailureInjector
from ..grid.load import BackgroundLoad
from ..net.crosstraffic import CrossTraffic
from ..grid.job import Job
from ..net.tiers import generate as generate_tiers
from ..sim.engine import Environment
from ..sim.rng import RngRegistry, derive_seed
from ..workload import coadd, ordering, synthetic, top500
from .config import ExperimentConfig


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one simulated run, with the paper's reporting units."""

    config: ExperimentConfig
    makespan: float            #: seconds of simulated time
    file_transfers: int        #: Figure 5's metric
    bytes_transferred: float
    tasks_cancelled: int
    evictions: int
    data_replications: int
    worker_failures: int
    #: One entry per site (Table 3's inputs).
    site_stats: Tuple[DataServerStats, ...]
    #: Scheduling decisions / tasks scored (complexity instrumentation;
    #: zero for policies that don't report them).
    decisions: int
    tasks_scored: int
    #: The trace bus (records kept only when config.keep_trace).
    trace: TraceBus

    @property
    def makespan_minutes(self) -> float:
        return self.makespan / 60.0


@dataclass(frozen=True)
class AveragedResult:
    """Mean over several topology seeds of the same config."""

    config: ExperimentConfig
    topology_seeds: Tuple[int, ...]
    makespan: float
    makespan_minutes: float
    file_transfers: float
    tasks_cancelled: float
    evictions: float
    runs: Tuple[ExperimentResult, ...]


def build_job(config: ExperimentConfig) -> Job:
    """Construct the workload a config describes (deterministic)."""
    seed = derive_seed(config.seed, "workload")
    job = _build_raw_job(config, seed)
    return ordering.reorder_job(job, config.task_order,
                                seed=derive_seed(config.seed, "order"))


def _build_raw_job(config: ExperimentConfig, seed: int) -> Job:
    if config.workload == "coadd":
        return coadd.generate(config.coadd_params(), seed=seed)
    if config.workload == "uniform":
        return synthetic.uniform_random(
            config.num_tasks, num_files=max(10, config.num_tasks * 9),
            files_per_task=78, seed=seed,
            file_size=config.file_size_bytes,
            flops_per_file=config.flops_per_file)
    if config.workload == "zipf":
        return synthetic.zipf_popularity(
            config.num_tasks, num_files=max(10, config.num_tasks * 9),
            files_per_task=78, seed=seed,
            file_size=config.file_size_bytes,
            flops_per_file=config.flops_per_file)
    if config.workload == "window":
        return synthetic.sliding_window(
            config.num_tasks, span=78, step=9, seed=seed,
            file_size=config.file_size_bytes,
            flops_per_file=config.flops_per_file)
    raise ValueError(f"unknown workload {config.workload!r}")


def build_grid(config: ExperimentConfig, job: Job,
               env: Optional[Environment] = None) -> Grid:
    """Construct the grid (topology, sites, workers) for a config."""
    env = env or Environment()
    rngs = RngRegistry(derive_seed(config.seed,
                                   f"topology:{config.topology_seed}"))
    grid_topology = generate_tiers(config.tiers_params(),
                                   seed=rngs.stream("tiers").randrange(2**31))
    speeds_rng = rngs.stream("speeds")
    worker_speeds = [
        top500.sample_speeds(speeds_rng, config.workers_per_site)
        for _ in range(config.num_sites)
    ]
    trace = TraceBus(keep=config.keep_trace)
    return Grid(env, grid_topology, job, config.capacity_files,
                worker_speeds, trace=trace,
                data_server_parallelism=config.data_server_parallelism)


def run_experiment(config: ExperimentConfig,
                   job: Optional[Job] = None) -> ExperimentResult:
    """Run one config to completion and collect its metrics.

    ``job`` short-circuits workload generation when the caller sweeps a
    parameter that does not affect the workload (topology seed, site
    count, ...).
    """
    if job is None:
        job = build_job(config)
    grid = build_grid(config, job)
    rng = RngRegistry(derive_seed(config.seed,
                                  f"sched:{config.topology_seed}"))
    scheduler = create_scheduler(config.scheduler, job,
                                 rng.stream("scheduler"))
    replicator = None
    if config.replicate_data:
        replicator = DataReplicator(
            grid, popularity_threshold=config.replication_threshold,
            max_replicas=config.replication_max_replicas)
    grid.attach_scheduler(scheduler)
    if config.cross_traffic:
        CrossTraffic(
            grid.env, grid.network,
            endpoints=[site.gateway for site in grid.sites],
            mean_interarrival=config.cross_traffic_interarrival,
            mean_size=config.cross_traffic_mean_mb * 1024 * 1024,
            rng=rng.stream("cross-traffic"),
            until=lambda: scheduler.tasks_remaining == 0)
    if config.background_load:
        BackgroundLoad(grid, slowdown=config.load_slowdown,
                       loaded_fraction=config.load_fraction,
                       mean_dwell=config.load_dwell,
                       rng=rng.stream("load"))
    injector = None
    if config.worker_mtbf is not None:
        injector = WorkerFailureInjector(
            grid, mtbf=config.worker_mtbf,
            repair_time=config.worker_repair_time,
            rng=rng.stream("failures"))
    outcome: GridRunResult = grid.run()
    return ExperimentResult(
        config=config,
        makespan=outcome.makespan,
        file_transfers=outcome.file_transfers,
        bytes_transferred=outcome.bytes_transferred,
        tasks_cancelled=outcome.tasks_cancelled,
        evictions=outcome.evictions,
        data_replications=replicator.replications if replicator else 0,
        worker_failures=injector.failures if injector else 0,
        site_stats=tuple(site.data_server.stats for site in grid.sites),
        decisions=getattr(scheduler, "decisions", 0),
        tasks_scored=getattr(scheduler, "tasks_scored", 0),
        trace=grid.trace,
    )


def run_averaged(config: ExperimentConfig,
                 topology_seeds: Sequence[int] = (0, 1, 2, 3, 4),
                 job: Optional[Job] = None) -> AveragedResult:
    """The paper's protocol: same workload, averaged over topologies."""
    if not topology_seeds:
        raise ValueError("need at least one topology seed")
    if job is None:
        job = build_job(config)
    runs: List[ExperimentResult] = []
    for topo_seed in topology_seeds:
        runs.append(run_experiment(
            config.with_changes(topology_seed=topo_seed), job=job))

    def mean(values: Iterable[float]) -> float:
        values = list(values)
        return sum(values) / len(values)

    return AveragedResult(
        config=config,
        topology_seeds=tuple(topology_seeds),
        makespan=mean(r.makespan for r in runs),
        makespan_minutes=mean(r.makespan_minutes for r in runs),
        file_transfers=mean(r.file_transfers for r in runs),
        tasks_cancelled=mean(r.tasks_cancelled for r in runs),
        evictions=mean(r.evictions for r in runs),
        runs=tuple(runs),
    )
