"""Persisting experiment results.

Campaign runs are expensive; this module archives their outcomes as
JSON-lines so reports (EXPERIMENTS.md tables, charts) can be rebuilt
without re-simulating.  A stored record is a flat, schema-versioned
snapshot of (config fields, headline metrics); traces are deliberately
not stored.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Sequence, Union

from .config import ExperimentConfig
from .runner import ExperimentResult

FORMAT_VERSION = 1


@dataclass(frozen=True)
class ResultRecord:
    """A reloaded experiment outcome (config + headline metrics)."""

    config: ExperimentConfig
    makespan: float
    file_transfers: int
    bytes_transferred: float
    tasks_cancelled: int
    evictions: int
    data_replications: int
    worker_failures: int

    @property
    def makespan_minutes(self) -> float:
        return self.makespan / 60.0


def result_to_dict(result: Union[ExperimentResult, ResultRecord]) -> dict:
    """Serialize a result (live or reloaded) to a JSON-compatible dict."""
    config = dataclasses.asdict(result.config)
    tiers = config.get("tiers")
    if tiers is not None:
        config["tiers"] = dict(tiers)
    config.pop("keep_trace", None)
    return {
        "version": FORMAT_VERSION,
        "config": config,
        "metrics": {
            "makespan": result.makespan,
            "file_transfers": result.file_transfers,
            "bytes_transferred": result.bytes_transferred,
            "tasks_cancelled": result.tasks_cancelled,
            "evictions": result.evictions,
            "data_replications": result.data_replications,
            "worker_failures": result.worker_failures,
        },
    }


def result_from_dict(data: dict) -> ResultRecord:
    """Rebuild a :class:`ResultRecord` from :func:`result_to_dict`."""
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported result format version {version!r}")
    config_data = dict(data["config"])
    tiers = config_data.get("tiers")
    if tiers is not None:
        from ..net.tiers import TiersParams
        config_data["tiers"] = TiersParams(**{
            key: (tuple(value) if isinstance(value, list) else value)
            for key, value in tiers.items()})
    config = ExperimentConfig(**config_data)
    metrics = data["metrics"]
    return ResultRecord(
        config=config,
        makespan=metrics["makespan"],
        file_transfers=metrics["file_transfers"],
        bytes_transferred=metrics["bytes_transferred"],
        tasks_cancelled=metrics["tasks_cancelled"],
        evictions=metrics["evictions"],
        data_replications=metrics.get("data_replications", 0),
        worker_failures=metrics.get("worker_failures", 0),
    )


class ResultStore:
    """Append-only JSON-lines archive of experiment results."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def append(self, result: Union[ExperimentResult, ResultRecord]) -> None:
        """Append one result."""
        with self.path.open("a") as handle:
            handle.write(json.dumps(result_to_dict(result)) + "\n")

    def append_many(self, results: Sequence) -> None:
        for result in results:
            self.append(result)

    def __iter__(self) -> Iterator[ResultRecord]:
        if not self.path.exists():
            return
        with self.path.open() as handle:
            for line in handle:
                line = line.strip()
                if line:
                    yield result_from_dict(json.loads(line))

    def load(self) -> List[ResultRecord]:
        """All stored records, in append order."""
        return list(self)

    def query(self, **config_fields) -> List[ResultRecord]:
        """Records whose config matches every given field exactly."""
        out = []
        for record in self:
            if all(getattr(record.config, field) == value
                   for field, value in config_fields.items()):
                out.append(record)
        return out

    def makespan_samples(self, scheduler: str,
                         **config_fields) -> List[float]:
        """Makespan minutes of matching runs (compare.py input)."""
        return [record.makespan_minutes
                for record in self.query(scheduler=scheduler,
                                         **config_fields)]
