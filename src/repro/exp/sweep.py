"""Parameter sweeps: one figure = one swept field x several algorithms.

A :class:`Sweep` runs a base config across a list of values for one
config field, for each algorithm, averaging each cell over topology
seeds — exactly the paper's experimental protocol.  Results come back
as a :class:`SweepResult` table keyed (algorithm, value).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..grid.job import Job
from .config import ExperimentConfig
from .runner import AveragedResult, build_job, run_averaged


@dataclass(frozen=True)
class SweepResult:
    """All cells of one sweep."""

    base: ExperimentConfig
    field: str
    values: Tuple[object, ...]
    schedulers: Tuple[str, ...]
    cells: Dict[Tuple[str, object], AveragedResult]

    def series(self, scheduler: str,
               metric: str = "makespan_minutes") -> List[Tuple[object, float]]:
        """(value, metric) points for one algorithm, in sweep order."""
        return [(value, getattr(self.cells[(scheduler, value)], metric))
                for value in self.values]

    def cell(self, scheduler: str, value: object) -> AveragedResult:
        return self.cells[(scheduler, value)]


#: Config fields whose change invalidates the generated workload; any
#: other swept field can reuse one Job across all cells.
_WORKLOAD_FIELDS = frozenset({
    "workload", "task_order", "num_tasks", "file_size_mb",
    "flops_per_file", "seed",
})


def run_sweep(base: ExperimentConfig, field: str,
              values: Sequence[object], schedulers: Sequence[str],
              topology_seeds: Sequence[int] = (0, 1, 2, 3, 4),
              progress: Optional[Callable[[str], None]] = None,
              ) -> SweepResult:
    """Run ``schedulers`` x ``values`` of ``field``, averaging topologies."""
    if not values:
        raise ValueError("need at least one sweep value")
    if not schedulers:
        raise ValueError("need at least one scheduler")
    shared_job: Optional[Job] = None
    if field not in _WORKLOAD_FIELDS:
        shared_job = build_job(base)
    cells: Dict[Tuple[str, object], AveragedResult] = {}
    for value in values:
        config = base.with_changes(**{field: value})
        job = shared_job if shared_job is not None else build_job(config)
        for scheduler in schedulers:
            if progress:
                progress(f"{field}={value} scheduler={scheduler}")
            cells[(scheduler, value)] = run_averaged(
                config.with_changes(scheduler=scheduler),
                topology_seeds=topology_seeds, job=job)
    return SweepResult(base=base, field=field, values=tuple(values),
                       schedulers=tuple(schedulers), cells=cells)
