"""Runtime invariant checking for simulations.

Attach a :class:`GridValidator` to a grid before running and every
violation of the system model is collected (or raised eagerly):

* a task starting without all its inputs resident (assumption 5),
* storage exceeding its capacity,
* a pinned file that is not resident,
* a task completing more than once,
* file-transfer accounting drifting from the trace.

Tests use it as belt and braces on top of targeted assertions; it is
also handy while developing a new scheduling policy (`strict=True`
turns the first violation into an exception at its simulated time,
with the offending record attached).
"""

from __future__ import annotations

import typing
from dataclasses import dataclass
from typing import List, Optional, Set

from ..analysis.trace import (FileTransferred, TaskCompleted, TaskStarted,
                              TraceRecord)

if typing.TYPE_CHECKING:  # pragma: no cover
    from ..grid.cluster import Grid


class InvariantViolation(AssertionError):
    """Raised in strict mode on the first violated invariant."""


@dataclass
class Violation:
    """One recorded violation."""

    time: float
    rule: str
    detail: str
    record: Optional[TraceRecord] = None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[t={self.time:.1f}] {self.rule}: {self.detail}"


class GridValidator:
    """Subscribes to a grid's trace and checks the system model live."""

    def __init__(self, grid: "Grid", strict: bool = False,
                 expect_single_completion: bool = False):
        """``expect_single_completion`` additionally forbids any task
        completing twice — valid only for non-replicating policies
        (replicas can legitimately finish before cancellation lands)."""
        self.grid = grid
        self.strict = strict
        self.expect_single_completion = expect_single_completion
        self.violations: List[Violation] = []
        self._completed: Set[int] = set()
        self._completed_pairs: Set[tuple] = set()
        self._transfer_count = 0
        grid.trace.subscribe(TaskStarted, self._on_start)
        grid.trace.subscribe(TaskCompleted, self._on_complete)
        grid.trace.subscribe(FileTransferred, self._on_transfer)

    # -- checks ------------------------------------------------------------
    def _on_start(self, record: TaskStarted) -> None:
        storage = self.grid.sites[record.site].storage
        task = self.grid.job[record.task_id]
        missing = [fid for fid in task.files if fid not in storage]
        if missing:
            self._report("task-start-files-resident",
                         f"task {record.task_id} started on "
                         f"{record.worker} with {len(missing)} missing "
                         f"files (e.g. {missing[:3]})", record)
        self._check_storage(record)

    def _on_complete(self, record: TaskCompleted) -> None:
        pair = (record.worker, record.task_id)
        if pair in self._completed_pairs:
            self._report("task-completes-once-per-worker",
                         f"task {record.task_id} completed twice on "
                         f"{record.worker}", record)
        elif self.expect_single_completion \
                and record.task_id in self._completed:
            self._report("task-completes-once",
                         f"task {record.task_id} completed again on "
                         f"{record.worker} (replication not expected)",
                         record)
        self._completed_pairs.add(pair)
        self._completed.add(record.task_id)

    def _on_transfer(self, record: FileTransferred) -> None:
        self._transfer_count += 1
        self._check_storage(record)

    def _check_storage(self, record: TraceRecord) -> None:
        for site in self.grid.sites:
            storage = site.storage
            if len(storage) > storage.capacity_files:
                self._report("storage-capacity",
                             f"site {site.site_id} holds {len(storage)} "
                             f"> {storage.capacity_files} files", record)
            for fid, count in list(storage._pins.items()):
                if count > 0 and fid not in storage:
                    self._report("pinned-files-resident",
                                 f"site {site.site_id} pins evicted "
                                 f"file {fid}", record)

    # -- reporting ---------------------------------------------------------
    def _report(self, rule: str, detail: str,
                record: Optional[TraceRecord]) -> None:
        violation = Violation(time=self.grid.env.now, rule=rule,
                              detail=detail, record=record)
        self.violations.append(violation)
        if self.strict:
            raise InvariantViolation(str(violation))

    def assert_clean(self) -> None:
        """Raise with a digest if anything was violated."""
        if self.violations:
            summary = "\n".join(str(v) for v in self.violations[:10])
            raise InvariantViolation(
                f"{len(self.violations)} invariant violations:\n{summary}")

    def final_check(self) -> None:
        """Post-run checks: completions and transfer accounting."""
        expected = {task.task_id for task in self.grid.job}
        if self._completed != expected:
            missing = sorted(expected - self._completed)[:5]
            self._report("all-tasks-complete",
                         f"{len(expected - self._completed)} tasks never "
                         f"completed (e.g. {missing})", None)
        counted = self.grid.file_server.transfers_served
        if self._transfer_count > counted:
            self._report("transfer-accounting",
                         f"trace saw {self._transfer_count} transfers, "
                         f"file server served {counted}", None)
        self.assert_clean()
