"""Grid system model: sites, workers, data servers, global file server.

Implements the paper's system model (Section 2.2) on top of the DES
kernel and the flow network:

* :class:`FileCatalog`, :class:`Task`, :class:`Job` — the application.
* :class:`SiteStorage` — capacity-bounded LRU cache with pinning and
  past-reference counters.
* :class:`DataServer` — serial batch-request service per site.
* :class:`FileServer` — the external global file store.
* :class:`Worker` — pull-driven compute host with replica cancellation.
* :class:`Site`, :class:`Grid`, :class:`GridRunResult` — composition.
* :class:`GridScheduler` — the policy interface implemented in
  :mod:`repro.core`.
"""

from .arrivals import (ArrivalSchedule, JobArrivalProcess,
                       batched_arrivals, jittered_arrivals)
from .cluster import Grid, GridRunResult
from .data_server import BatchRequest, DataServer, DataServerStats
from .file_server import FileServer
from .files import FileCatalog, FileId, MB
from .job import Job, Task, TaskId
from .scheduler_api import GridScheduler
from .site import Site
from .storage import SiteStorage, StorageFullError
from .worker import CONTROL_MESSAGE_BYTES, Worker

__all__ = [
    "ArrivalSchedule",
    "BatchRequest",
    "CONTROL_MESSAGE_BYTES",
    "DataServer",
    "DataServerStats",
    "FileCatalog",
    "FileId",
    "FileServer",
    "Grid",
    "GridRunResult",
    "JobArrivalProcess",
    "GridScheduler",
    "Job",
    "MB",
    "Site",
    "SiteStorage",
    "StorageFullError",
    "Task",
    "TaskId",
    "Worker",
    "batched_arrivals",
    "jittered_arrivals",
]
