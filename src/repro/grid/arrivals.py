"""Asynchronous job arrivals.

The paper criticizes offline planners (Spatial Clustering) for not
handling "new jobs arriving asynchronously"; worker-centric scheduling
handles them natively because a new task just joins the pending set.
This module provides the arrival machinery:

* :class:`ArrivalSchedule` — (time, task ids) release batches over one
  job's task set (the workload is generated up front; batches *release*
  tasks to the scheduler at their arrival times);
* :class:`JobArrivalProcess` — the simulation process that performs the
  releases against a scheduler with ``supports_dynamic_release``.

Helpers build common shapes: a fixed batch split at regular intervals,
or Poisson-ish jittered arrival times.
"""

from __future__ import annotations

import random
import typing
from dataclasses import dataclass
from typing import List, Tuple

from .job import Job

if typing.TYPE_CHECKING:  # pragma: no cover
    from .cluster import Grid


@dataclass(frozen=True)
class ArrivalSchedule:
    """Release plan: ``batches[i] = (time, task ids)``, times ascending.

    Tasks not covered by any batch are released at time zero.
    """

    batches: Tuple[Tuple[float, Tuple[int, ...]], ...]

    def __post_init__(self):
        last = -1.0
        seen = set()
        for time, task_ids in self.batches:
            if time < 0:
                raise ValueError(f"negative arrival time {time}")
            if time < last:
                raise ValueError("batches must be in ascending time order")
            last = time
            for tid in task_ids:
                if tid in seen:
                    raise ValueError(f"task {tid} in two batches")
                seen.add(tid)

    @property
    def deferred_task_ids(self) -> frozenset:
        """Every task id released later than time zero."""
        return frozenset(
            tid for time, ids in self.batches if time > 0 for tid in ids)

    def initial_task_ids(self, job: Job) -> frozenset:
        """Task ids available at simulation start."""
        deferred = self.deferred_task_ids
        return frozenset(t.task_id for t in job
                         if t.task_id not in deferred)


def batched_arrivals(job: Job, num_batches: int,
                     interval: float) -> ArrivalSchedule:
    """Split the job into ``num_batches`` equal waves, ``interval``
    seconds apart, first wave at time zero."""
    if num_batches < 1:
        raise ValueError("num_batches must be >= 1")
    if interval < 0:
        raise ValueError("interval must be >= 0")
    ids = [task.task_id for task in job]
    size = -(-len(ids) // num_batches)
    batches: List[Tuple[float, Tuple[int, ...]]] = []
    for index in range(num_batches):
        chunk = tuple(ids[index * size:(index + 1) * size])
        if chunk:
            batches.append((index * interval, chunk))
    return ArrivalSchedule(tuple(batches))


def jittered_arrivals(job: Job, num_batches: int, interval: float,
                      rng: random.Random,
                      jitter: float = 0.25) -> ArrivalSchedule:
    """Like :func:`batched_arrivals` with ±``jitter`` interval noise."""
    if not 0 <= jitter < 1:
        raise ValueError("jitter must be in [0, 1)")
    base = batched_arrivals(job, num_batches, interval)
    out: List[Tuple[float, Tuple[int, ...]]] = []
    clock = 0.0
    for index, (_time, ids) in enumerate(base.batches):
        if index > 0:
            clock += interval * rng.uniform(1 - jitter, 1 + jitter)
        out.append((clock, ids))
    return ArrivalSchedule(tuple(out))


class JobArrivalProcess:
    """Releases an :class:`ArrivalSchedule` against the grid's scheduler.

    Must be constructed after ``grid.attach_scheduler``; raises
    immediately if the policy cannot accept dynamic arrivals (the
    offline planners the paper criticizes).
    """

    def __init__(self, grid: "Grid", schedule: ArrivalSchedule):
        scheduler = grid.scheduler
        if scheduler is None:
            raise RuntimeError("attach a scheduler before arrivals")
        if not getattr(scheduler, "supports_dynamic_release", False):
            raise TypeError(
                f"{type(scheduler).__name__} cannot accept asynchronous "
                f"job arrivals (offline planner)")
        self.grid = grid
        self.schedule = schedule
        #: Batches released so far.
        self.released_batches = 0
        grid.env.process(self._run(), name="job-arrivals")

    def _run(self):
        env = self.grid.env
        scheduler = self.grid.scheduler
        job = self.grid.job
        for time, task_ids in self.schedule.batches:
            if time > env.now:
                yield env.timeout(time - env.now)
            if time == 0.0:
                # time-zero batches are part of the initial set
                self.released_batches += 1
                continue
            scheduler.release_tasks([job[tid] for tid in task_ids])
            self.released_batches += 1
