"""Grid assembly: wires network, sites, servers, and a scheduling policy.

:class:`Grid` is the composition root of one simulation.  Typical use::

    env = Environment()
    grid = Grid(env, grid_topology, job, capacity_files=6000,
                worker_speeds=[[2000.0]] * 10)
    grid.attach_scheduler(WorkerCentricScheduler(job, metric="rest", n=2,
                                                 rng=rngs.stream("sched")))
    result = grid.run()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..analysis.trace import FileEvicted, TaskCompleted, TraceBus
from ..net.flow import FlowNetwork
from ..net.tiers import GridTopology
from ..sim.engine import Environment
from .file_server import FileServer
from .job import Job
from .scheduler_api import GridScheduler
from .site import Site


@dataclass(frozen=True)
class GridRunResult:
    """Outcome of one simulated job execution."""

    makespan: float
    file_transfers: int
    bytes_transferred: float
    tasks_completed: int
    tasks_cancelled: int
    evictions: int

    @property
    def makespan_minutes(self) -> float:
        """Makespan in the paper's reporting unit."""
        return self.makespan / 60.0


class Grid:
    """A complete simulated grid for one job."""

    def __init__(self, env: Environment, grid_topology: GridTopology,
                 job: Job, capacity_files: int,
                 worker_speeds: Sequence[Sequence[float]],
                 trace: Optional[TraceBus] = None,
                 data_server_parallelism: int = 1):
        if len(worker_speeds) > grid_topology.num_sites:
            raise ValueError(
                f"{len(worker_speeds)} sites of speeds but topology has "
                f"only {grid_topology.num_sites} gateways")
        self.env = env
        self.job = job
        self.trace = trace if trace is not None else TraceBus(keep=False)
        self.network = FlowNetwork(env, grid_topology.topology)
        self.scheduler_node = grid_topology.scheduler_node
        self.file_server = FileServer(env, self.network,
                                      grid_topology.file_server_node,
                                      job.catalog)
        self.scheduler: GridScheduler = None  # type: ignore[assignment]
        self._last_completion_time = 0.0
        self.trace.subscribe(TaskCompleted, self._on_completion)

        self.sites: List[Site] = []
        for site_id, speeds in enumerate(worker_speeds):
            site = Site(self, site_id, grid_topology.site_gateways[site_id],
                        capacity_files, list(speeds),
                        data_server_parallelism=data_server_parallelism)
            site.storage.on_evict(
                lambda fid, sid=site_id: self.trace.emit(
                    FileEvicted(time=self.env.now, file_id=fid, site=sid)))
            self.sites.append(site)

    # -- wiring ------------------------------------------------------------
    def attach_scheduler(self, scheduler: GridScheduler) -> None:
        """Bind the scheduling policy (must happen before :meth:`run`)."""
        if self.scheduler is not None:
            raise RuntimeError("a scheduler is already attached")
        scheduler.bind(self)
        self.scheduler = scheduler

    # -- inspection --------------------------------------------------------
    @property
    def workers(self):
        """All workers across all sites, site-major order."""
        return [w for site in self.sites for w in site.workers]

    def _on_completion(self, record: TaskCompleted) -> None:
        self._last_completion_time = record.time

    # -- execution -------------------------------------------------------
    def run(self) -> GridRunResult:
        """Simulate until every task completes; drain shutdown traffic.

        Returns a :class:`GridRunResult`; ``makespan`` is the time the
        last task finished computing.
        """
        if self.scheduler is None:
            raise RuntimeError("attach a scheduler before run()")
        self.env.run_until_event(self.scheduler.job_done)
        # Let the final worker-shutdown handshakes play out so the event
        # queue drains cleanly (does not affect the makespan).
        self.env.run()
        from ..analysis.trace import TaskCancelled  # local: avoid cycle
        return GridRunResult(
            makespan=self._last_completion_time,
            file_transfers=self.file_server.transfers_served,
            bytes_transferred=self.file_server.bytes_served,
            tasks_completed=len(self.job),
            tasks_cancelled=self.trace.count(TaskCancelled),
            evictions=sum(s.storage.evictions for s in self.sites),
        )
