"""Per-site data servers.

System-model assumptions 3-5: the data server of a site receives every
file request from the site's workers, batches one request per task, and
serves requests **one by one** (serial service is deliberate — it avoids
redundant concurrent transfers of the same file and respects the shared
uplink).  A worker's task may start only when its whole batch is local.

The server also keeps the per-request statistics the paper reports in
Table 3: queue waiting time, transfer time, and transfer count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from ..analysis.trace import BatchServed, FileTransferred, TraceBus
from ..sim.engine import Environment
from ..sim.events import Event
from ..sim.resources import Store
from .file_server import FileServer
from .files import FileId
from .storage import SiteStorage

#: Request lifecycle states.
QUEUED = "queued"
SERVING = "serving"
DONE = "done"
CANCELLED = "cancelled"


@dataclass
class BatchRequest:
    """One task's batch file request, owned by a :class:`DataServer`.

    ``done`` succeeds when either the batch is fully resident and pinned
    (value ``True``) or the request was cancelled (value ``False``).
    """

    request_id: int
    worker_name: str
    files: Tuple[FileId, ...]
    done: Event
    submitted_at: float
    state: str = QUEUED
    pinned: List[FileId] = field(default_factory=list)
    #: Files actually fetched over the network for this request.
    transfers: int = 0
    service_started_at: Optional[float] = None
    finished_at: Optional[float] = None

    @property
    def waiting_time(self) -> float:
        """Time spent in the data server's queue before service."""
        if self.service_started_at is None:
            return 0.0
        return self.service_started_at - self.submitted_at

    @property
    def transfer_time(self) -> float:
        """Time from service start until the batch became fully local."""
        if self.service_started_at is None or self.finished_at is None:
            return 0.0
        return self.finished_at - self.service_started_at


@dataclass
class DataServerStats:
    """Aggregates for one data server (Table 3 inputs)."""

    requests_served: int = 0
    requests_cancelled: int = 0
    total_waiting_time: float = 0.0
    total_transfer_time: float = 0.0
    total_transfers: int = 0

    @property
    def avg_waiting_time(self) -> float:
        served = self.requests_served
        return self.total_waiting_time / served if served else 0.0

    @property
    def avg_transfer_time(self) -> float:
        served = self.requests_served
        return self.total_transfer_time / served if served else 0.0

    @property
    def avg_transfers(self) -> float:
        served = self.requests_served
        return self.total_transfers / served if served else 0.0


class DataServer:
    """Batch-request server in front of one site's storage.

    The paper's model (assumption 3) serves requests strictly one by
    one — ``parallelism=1``, the default.  Higher parallelism serves
    several batches concurrently with in-flight transfer deduplication
    (two batches needing the same missing file share one transfer);
    the serial-vs-parallel ablation benchmark quantifies the paper's
    claim that serial service is the better use of the shared uplink.
    """

    def __init__(self, env: Environment, site_id: int, gateway_node: str,
                 storage: SiteStorage, file_server: FileServer,
                 trace: TraceBus, parallelism: int = 1):
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        self.env = env
        self.site_id = site_id
        self.gateway_node = gateway_node
        self.storage = storage
        self.file_server = file_server
        self.trace = trace
        self.parallelism = parallelism
        self.stats = DataServerStats()
        self._queue: Store[BatchRequest] = Store(env)
        self._next_id = 0
        #: In-flight fetches: file id -> completion event (dedup).
        self._inflight: dict = {}
        self._processes = [
            env.process(self._serve_loop(),
                        name=f"dataserver-{site_id}.{lane}")
            for lane in range(parallelism)
        ]

    # -- worker-facing API -----------------------------------------------
    def submit(self, files: Iterable[FileId],
               worker_name: str = "?") -> BatchRequest:
        """Enqueue a batch request for ``files``."""
        request = BatchRequest(
            request_id=self._next_id,
            worker_name=worker_name,
            files=tuple(files),
            done=Event(self.env),
            submitted_at=self.env.now,
        )
        self._next_id += 1
        self._queue.put(request)
        return request

    def cancel(self, request: BatchRequest) -> None:
        """Cancel a request; takes effect before its next file fetch.

        Pins already taken are released here (for finished service) or
        by the serve loop (mid-service).  Cancelling a DONE request
        releases its pins, making it equivalent to :meth:`release`.
        """
        if request.state == CANCELLED:
            return
        if request.state == DONE:
            self.release(request)
            request.state = CANCELLED
            return
        previous = request.state
        request.state = CANCELLED
        if previous == QUEUED:
            # The serve loop will skip it; resolve the waiter now.
            request.done.succeed(False)

    def release(self, request: BatchRequest) -> None:
        """Unpin a completed request's files (task finished computing)."""
        self.storage.unpin_all(request.pinned)
        request.pinned = []

    # -- service loop ------------------------------------------------------
    def _serve_loop(self):
        while True:
            request = yield self._queue.get()
            if request.state == CANCELLED:
                self.stats.requests_cancelled += 1
                continue
            request.state = SERVING
            request.service_started_at = self.env.now
            yield from self._serve(request)

    def _serve(self, request: BatchRequest):
        """Pin resident files, fetch the rest one at a time."""
        for fid in request.files:
            if request.state == CANCELLED:
                break
            yield from self._acquire(request, fid)
        self._finish(request)

    def _acquire(self, request: BatchRequest, fid: FileId):
        """Make ``fid`` resident and pinned for ``request``.

        Loops because under parallel service another batch's insert can
        evict the file between an in-flight wait and our pin.
        """
        while fid not in self.storage:
            if request.state == CANCELLED:
                return
            pending = self._inflight.get(fid)
            if pending is not None:
                yield pending
                continue
            gate = Event(self.env)
            self._inflight[fid] = gate
            start = self.env.now
            try:
                yield self.file_server.fetch(self.gateway_node, fid)
            finally:
                del self._inflight[fid]
                gate.succeed()
            request.transfers += 1
            self.storage.insert(fid)
            self.trace.emit(FileTransferred(
                time=self.env.now, file_id=fid, site=self.site_id,
                size=self.file_server.catalog.size(fid),
                duration=self.env.now - start))
        if request.state != CANCELLED:
            self.storage.pin(fid)
            request.pinned.append(fid)

    def _finish(self, request: BatchRequest) -> None:
        request.finished_at = self.env.now
        cancelled = request.state == CANCELLED
        if cancelled:
            # Roll back pins; the waiter was already resolved by cancel().
            self.storage.unpin_all(request.pinned)
            request.pinned = []
            self.stats.requests_cancelled += 1
        else:
            request.state = DONE
            # Record past references (r_i) for every file of the batch.
            for fid in request.files:
                self.storage.touch(fid)
            self.stats.requests_served += 1
            self.stats.total_waiting_time += request.waiting_time
            self.stats.total_transfer_time += request.transfer_time
            self.stats.total_transfers += request.transfers
            request.done.succeed(True)
        self.trace.emit(BatchServed(
            time=self.env.now, site=self.site_id,
            worker=request.worker_name, num_files=len(request.files),
            num_transfers=request.transfers,
            waiting_time=request.waiting_time,
            transfer_time=request.transfer_time, cancelled=cancelled))
