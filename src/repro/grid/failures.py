"""Worker failure injection.

An extension beyond the paper's evaluation: workers crash mid-task with
exponentially distributed inter-failure times, lose their in-flight
task (replica-cancellation machinery doubles as the failure path), and
come back after a repair delay.  Schedulers must keep every task
eventually completing exactly once — the property tests drive this.

Failures strike only during the fetch/compute phase of a task (an idle
worker has nothing to lose; its request loop is unaffected), which is
where all the interesting scheduler state lives.
"""

from __future__ import annotations

import random
import typing
from dataclasses import dataclass

if typing.TYPE_CHECKING:  # pragma: no cover
    from .cluster import Grid
    from .worker import Worker


@dataclass(frozen=True)
class WorkerFailure:
    """Interrupt cause a failing worker receives.

    Attributes
    ----------
    repair_time:
        Seconds the worker stays down before requesting work again.
    """

    repair_time: float


class WorkerFailureInjector:
    """Crashes each worker independently at exponential intervals.

    Parameters
    ----------
    grid:
        The grid whose workers should suffer.
    mtbf:
        Mean time between failure *attempts* per worker, seconds.  An
        attempt only strikes if the worker is mid-task.
    repair_time:
        Downtime after a successful strike.
    rng:
        Randomness source (one stream for the whole injector).
    """

    def __init__(self, grid: "Grid", mtbf: float, repair_time: float,
                 rng: random.Random):
        if mtbf <= 0:
            raise ValueError(f"mtbf must be positive, got {mtbf}")
        if repair_time < 0:
            raise ValueError(f"repair_time must be >= 0, got {repair_time}")
        self.grid = grid
        self.mtbf = mtbf
        self.repair_time = repair_time
        self._rng = rng
        #: Strikes that actually interrupted a running task.
        self.failures = 0
        #: Attempts that found the worker idle (no effect).
        self.misses = 0
        for worker in grid.workers:
            grid.env.process(self._inject(worker),
                             name=f"failures-{worker.name}")

    def _inject(self, worker: "Worker"):
        env = self.grid.env
        scheduler = self.grid.scheduler
        while scheduler.tasks_remaining > 0:
            yield env.timeout(self._rng.expovariate(1.0 / self.mtbf))
            if scheduler.tasks_remaining == 0:
                return
            task = worker.current_task
            if task is not None and worker.process.is_alive:
                if worker.fail(self.repair_time):
                    self.failures += 1
                else:
                    self.misses += 1
            else:
                self.misses += 1
