"""The external (global) file server.

System-model assumption 6: one external file server stores every file of
the application and hands them out to site data servers on demand.  The
server itself is never a compute bottleneck here — contention happens on
the network links (notably its own uplink and each site's uplink), which
the flow model captures.
"""

from __future__ import annotations

from ..net.flow import FlowNetwork
from ..sim.engine import Environment
from ..sim.events import Event
from .files import FileCatalog, FileId


class FileServer:
    """Serves file transfers from the global store to site data servers."""

    def __init__(self, env: Environment, network: FlowNetwork, node: str,
                 catalog: FileCatalog):
        self.env = env
        self.network = network
        #: Topology node name the server sits on.
        self.node = node
        self.catalog = catalog
        #: Cumulative number of file transfers served.
        self.transfers_served = 0
        #: Cumulative bytes shipped.
        self.bytes_served = 0.0

    def fetch(self, dst_node: str, fid: FileId) -> Event:
        """Ship file ``fid`` to ``dst_node``.

        Returns the transfer-completion event (value:
        :class:`~repro.net.flow.TransferStats`).
        """
        size = self.catalog.size(fid)
        self.transfers_served += 1
        self.bytes_served += size
        return self.network.transfer(self.node, dst_node, size)
