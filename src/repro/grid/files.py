"""File identities and the global file catalog.

Files are identified by dense integer ids (``FileId``).  The catalog
maps ids to sizes in bytes.  The paper assumes equally-sized files
(assumption 8) but reasons in bytes, so the catalog supports per-file
size overrides; every consumer works in bytes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

FileId = int

MB = 1024.0 * 1024.0


class FileCatalog:
    """Sizes and existence of every file in the application's dataset.

    Parameters
    ----------
    num_files:
        Total number of files, ids ``0 .. num_files - 1``.
    default_size:
        Size in bytes for any file without an explicit override.
    sizes:
        Optional mapping of per-file size overrides.
    """

    def __init__(self, num_files: int, default_size: float = 5 * MB,
                 sizes: Optional[Mapping[FileId, float]] = None):
        if num_files < 0:
            raise ValueError(f"num_files must be >= 0, got {num_files}")
        if default_size <= 0:
            raise ValueError(f"default_size must be > 0, got {default_size}")
        self._num_files = num_files
        self._default_size = float(default_size)
        self._sizes: Dict[FileId, float] = {}
        if sizes:
            for fid, size in sizes.items():
                self._check(fid)
                if size <= 0:
                    raise ValueError(f"file {fid} has non-positive size")
                self._sizes[fid] = float(size)

    def _check(self, fid: FileId) -> None:
        if not 0 <= fid < self._num_files:
            raise KeyError(f"file id {fid} out of range "
                           f"[0, {self._num_files})")

    def __len__(self) -> int:
        return self._num_files

    def __contains__(self, fid: FileId) -> bool:
        return 0 <= fid < self._num_files

    @property
    def default_size(self) -> float:
        return self._default_size

    def size(self, fid: FileId) -> float:
        """Size of ``fid`` in bytes."""
        self._check(fid)
        return self._sizes.get(fid, self._default_size)

    def total_bytes(self, fids: Iterable[FileId]) -> float:
        """Sum of sizes over ``fids``."""
        return sum(self.size(fid) for fid in fids)
