"""Tasks and Bag-of-Tasks jobs.

A :class:`Task` is an independent unit of work with a set of input files
and a compute cost in floating-point operations.  A :class:`Job` is a
bag of such tasks plus the :class:`~repro.grid.files.FileCatalog`
describing their inputs (system-model assumption 1: tasks never
communicate with each other).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, Sequence, Tuple

from .files import FileCatalog, FileId

TaskId = int


@dataclass(frozen=True)
class Task:
    """One independent task of a Bag-of-Tasks job.

    Attributes
    ----------
    task_id:
        Dense integer id, unique within a job.
    files:
        Input files; the task can only start on a worker once every one
        of them is in the worker's site storage (assumption 5).
    flops:
        Compute cost in floating-point operations.
    """

    task_id: TaskId
    files: FrozenSet[FileId]
    flops: float = 0.0

    def __post_init__(self):
        if not self.files:
            raise ValueError(f"task {self.task_id} has no input files")
        if self.flops < 0:
            raise ValueError(f"task {self.task_id} has negative flops")

    @property
    def num_files(self) -> int:
        """|t| in the paper's notation."""
        return len(self.files)


class Job:
    """A bag of tasks over one file catalog."""

    def __init__(self, tasks: Sequence[Task], catalog: FileCatalog,
                 name: str = "job"):
        seen = set()
        for task in tasks:
            if task.task_id in seen:
                raise ValueError(f"duplicate task id {task.task_id}")
            seen.add(task.task_id)
            for fid in task.files:
                if fid not in catalog:
                    raise ValueError(
                        f"task {task.task_id} references unknown file {fid}")
        self._tasks: Tuple[Task, ...] = tuple(tasks)
        self._by_id: Dict[TaskId, Task] = {t.task_id: t for t in self._tasks}
        self.catalog = catalog
        self.name = name

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __getitem__(self, task_id: TaskId) -> Task:
        return self._by_id[task_id]

    @property
    def tasks(self) -> Tuple[Task, ...]:
        return self._tasks

    @property
    def referenced_files(self) -> FrozenSet[FileId]:
        """Union of all tasks' input sets."""
        out = set()
        for task in self._tasks:
            out.update(task.files)
        return frozenset(out)

    def reference_counts(self) -> Dict[FileId, int]:
        """How many tasks reference each file (Figure 1/3 statistic)."""
        counts: Dict[FileId, int] = {}
        for task in self._tasks:
            for fid in task.files:
                counts[fid] = counts.get(fid, 0) + 1
        return counts
