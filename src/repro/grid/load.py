"""Background CPU load on workers.

The paper's case for worker-centric scheduling starts from PlanetLab's
"seven deadly sins": resource suppliers are frequently overloaded, so
scheduling should be driven by the suppliers.  This module provides the
overload: each worker flips between a *free* state (full speed) and a
*loaded* state (compute stretched by ``slowdown``) with exponential
dwell times.  A task samples the state at compute start (task-grained
variation; mid-compute state flips are deliberately ignored — tasks
are short relative to dwell times in every shipped configuration).

Pull scheduling self-balances under this churn — a loaded worker simply
requests fewer tasks — while push assignment parks tasks behind loaded
workers; the background-load ablation measures exactly that.
"""

from __future__ import annotations

import random
import typing
from typing import Dict

if typing.TYPE_CHECKING:  # pragma: no cover
    from .cluster import Grid
    from .worker import Worker


class BackgroundLoad:
    """Two-state (free/loaded) Markov load per worker.

    Parameters
    ----------
    grid:
        The grid whose workers to burden.
    slowdown:
        Compute-time multiplier while loaded (> 1).
    loaded_fraction:
        Long-run fraction of time a worker spends loaded, in (0, 1).
    mean_dwell:
        Mean sojourn time of the *loaded* state, seconds.
    rng:
        Randomness source.
    """

    def __init__(self, grid: "Grid", slowdown: float = 4.0,
                 loaded_fraction: float = 0.3,
                 mean_dwell: float = 600.0,
                 rng: random.Random = None):
        if slowdown <= 1.0:
            raise ValueError(f"slowdown must be > 1, got {slowdown}")
        if not 0.0 < loaded_fraction < 1.0:
            raise ValueError("loaded_fraction must be in (0, 1)")
        if mean_dwell <= 0:
            raise ValueError("mean_dwell must be positive")
        self.grid = grid
        self.slowdown = slowdown
        self.loaded_fraction = loaded_fraction
        self.mean_loaded_dwell = mean_dwell
        self.mean_free_dwell = mean_dwell * (1 - loaded_fraction) \
            / loaded_fraction
        self._rng = rng or random.Random(0)
        self._loaded: Dict[str, bool] = {}
        #: Compute phases that sampled the loaded state.
        self.loaded_samples = 0
        self.total_samples = 0
        for worker in grid.workers:
            self._loaded[worker.name] = \
                self._rng.random() < loaded_fraction
            worker.compute_factor = self._factor_for(worker)
            grid.env.process(self._churn(worker),
                             name=f"load-{worker.name}")

    def _factor_for(self, worker: "Worker"):
        def factor() -> float:
            self.total_samples += 1
            if self._loaded[worker.name]:
                self.loaded_samples += 1
                return self.slowdown
            return 1.0
        return factor

    def is_loaded(self, worker: "Worker") -> bool:
        return self._loaded[worker.name]

    def _churn(self, worker: "Worker"):
        env = self.grid.env
        scheduler = self.grid.scheduler
        # Stop flipping once the job is done so the event queue drains.
        while scheduler is None or scheduler.tasks_remaining > 0:
            loaded = self._loaded[worker.name]
            dwell = (self.mean_loaded_dwell if loaded
                     else self.mean_free_dwell)
            yield env.timeout(self._rng.expovariate(1.0 / dwell))
            scheduler = self.grid.scheduler
            self._loaded[worker.name] = not self._loaded[worker.name]
