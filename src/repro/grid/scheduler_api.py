"""The contract between grid workers and scheduling policies.

Policies live in :mod:`repro.core`; the grid runtime only sees this
interface.  A policy is *pull-shaped*: a worker asks for its next task
via :meth:`GridScheduler.next_task` and reports completion via
:meth:`GridScheduler.notify_complete`.  Task-centric (push) policies fit
the same interface by resolving ``next_task`` from per-worker queues
they fill proactively — the paper itself notes that a scheduler tracking
idle workers and assigning on idleness "is semantically the same".

``next_task`` resolving to ``None`` tells the worker to shut down (no
tasks will ever arrive again).
"""

from __future__ import annotations

import abc
import typing

from ..sim.events import Event
from .job import Task

if typing.TYPE_CHECKING:  # pragma: no cover
    from .cluster import Grid
    from .worker import Worker


class GridScheduler(abc.ABC):
    """Base class every scheduling policy implements."""

    #: Set by :meth:`bind`.
    grid: "Grid" = None  # type: ignore[assignment]

    @abc.abstractmethod
    def bind(self, grid: "Grid") -> None:
        """Attach the policy to a built grid (called once by the runner).

        Implementations must set :attr:`grid` and create the
        ``job_done`` event on ``grid.env``.
        """

    @abc.abstractmethod
    def next_task(self, worker: "Worker") -> Event:
        """Event resolving to the worker's next :class:`Task` (or None).

        Called every time ``worker`` goes idle.  The event may resolve
        immediately (worker-centric policies choose a task on the spot)
        or later (push policies with empty queues).
        """

    @abc.abstractmethod
    def notify_complete(self, worker: "Worker", task: Task) -> None:
        """``worker`` finished ``task``.

        Policies must tolerate duplicate completions of the same task id
        (replicated execution can finish twice before cancellation wins).
        """

    def notify_cancelled(self, worker: "Worker", task: Task) -> None:
        """``worker`` aborted a replica of ``task`` after cancellation."""

    @property
    @abc.abstractmethod
    def job_done(self) -> Event:
        """Succeeds when every task of the job has completed once."""

    @property
    @abc.abstractmethod
    def tasks_remaining(self) -> int:
        """Tasks not yet completed (for progress inspection)."""
