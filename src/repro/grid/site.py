"""A grid site: one data server, local storage, and a set of workers.

System-model assumption 2: each site has at least one worker and exactly
one data server with one combined local storage.  Assumption 7 makes
intra-site communication free, so the whole site shares a single
topology node (its gateway) and the gateway's uplink is the shared
bottleneck for everything entering or leaving the site.
"""

from __future__ import annotations

import typing
from typing import List, Sequence

from .data_server import DataServer
from .storage import SiteStorage
from .worker import Worker

if typing.TYPE_CHECKING:  # pragma: no cover
    from .cluster import Grid


class Site:
    """One cluster of the grid."""

    def __init__(self, grid: "Grid", site_id: int, gateway: str,
                 capacity_files: int, worker_speeds: Sequence[float],
                 data_server_parallelism: int = 1):
        if not worker_speeds:
            raise ValueError(f"site {site_id} needs at least one worker")
        self.grid = grid
        self.site_id = site_id
        #: Topology node name of the site's shared gateway.
        self.gateway = gateway
        self.storage = SiteStorage(capacity_files)
        self.data_server = DataServer(grid.env, site_id, gateway,
                                      self.storage, grid.file_server,
                                      grid.trace,
                                      parallelism=data_server_parallelism)
        self.workers: List[Worker] = [
            Worker(grid, self, index, speed)
            for index, speed in enumerate(worker_speeds)
        ]

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Site {self.site_id} gateway={self.gateway} "
                f"workers={self.num_workers} "
                f"capacity={self.storage.capacity_files}>")
