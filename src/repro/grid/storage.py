"""Per-site storage: a capacity-bounded LRU file cache with pinning.

One :class:`SiteStorage` models the data server's local disk at a grid
site (system-model assumption 2: one combined storage per site).  It
tracks:

* **residency** — which files are currently local (LRU-ordered),
* **pins** — files that must not be evicted because a running task or an
  in-flight batch is using them,
* **past references** — ``r_i`` in the paper: how many times each file
  was referenced by tasks served at this site (input to the *combined*
  metric).  Reference counts survive eviction, matching the paper's
  definition of "past references ... from prior tasks".

Listeners can subscribe to insert/evict transitions; the scheduler's
incremental overlap index is driven entirely by these callbacks.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .files import FileId


class StorageFullError(RuntimeError):
    """Capacity exhausted and every resident file is pinned.

    Indicates a configuration where a single task's working set exceeds
    the site storage capacity — the simulation cannot make progress.
    """


ChangeListener = Callable[[FileId], None]


class SiteStorage:
    """LRU file cache of at most ``capacity_files`` files.

    Parameters
    ----------
    capacity_files:
        Maximum number of resident files (the paper sizes storage in
        files; byte-based accounting lives one level up, in the catalog).
    """

    def __init__(self, capacity_files: int):
        if capacity_files < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity_files}")
        self.capacity_files = capacity_files
        self._resident: "OrderedDict[FileId, None]" = OrderedDict()
        self._pins: Dict[FileId, int] = {}
        self._past_references: Dict[FileId, int] = {}
        self._insert_listeners: List[ChangeListener] = []
        self._evict_listeners: List[ChangeListener] = []
        self._touch_listeners: List[ChangeListener] = []
        #: Cumulative eviction count (analysis).
        self.evictions = 0

    # -- subscriptions ---------------------------------------------------
    def on_insert(self, listener: ChangeListener) -> None:
        """Call ``listener(fid)`` whenever a file becomes resident."""
        self._insert_listeners.append(listener)

    def on_evict(self, listener: ChangeListener) -> None:
        """Call ``listener(fid)`` whenever a file is evicted."""
        self._evict_listeners.append(listener)

    def on_touch(self, listener: ChangeListener) -> None:
        """Call ``listener(fid)`` whenever a file reference is recorded."""
        self._touch_listeners.append(listener)

    # -- inspection --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, fid: FileId) -> bool:
        return fid in self._resident

    @property
    def resident_files(self) -> Tuple[FileId, ...]:
        """Resident file ids, least-recently-used first."""
        return tuple(self._resident)

    @property
    def free_slots(self) -> int:
        return self.capacity_files - len(self._resident)

    def is_pinned(self, fid: FileId) -> bool:
        return self._pins.get(fid, 0) > 0

    def reference_count(self, fid: FileId) -> int:
        """``r_i``: past references of ``fid`` at this site."""
        return self._past_references.get(fid, 0)

    def overlap(self, files: Iterable[FileId]) -> int:
        """|F_t|: how many of ``files`` are resident here."""
        return sum(1 for fid in files if fid in self._resident)

    def missing(self, files: Iterable[FileId]) -> List[FileId]:
        """The subset of ``files`` not resident, in iteration order."""
        return [fid for fid in files if fid not in self._resident]

    # -- mutation ----------------------------------------------------------
    def insert(self, fid: FileId) -> Optional[FileId]:
        """Make ``fid`` resident, evicting the LRU unpinned file if full.

        Returns the evicted file id, or None.  Inserting an
        already-resident file refreshes its LRU position.
        """
        if fid in self._resident:
            self._resident.move_to_end(fid)
            return None
        evicted: Optional[FileId] = None
        if len(self._resident) >= self.capacity_files:
            evicted = self._evict_one()
        self._resident[fid] = None
        for listener in self._insert_listeners:
            listener(fid)
        return evicted

    def _evict_one(self) -> FileId:
        for candidate in self._resident:
            if self._pins.get(candidate, 0) == 0:
                del self._resident[candidate]
                self.evictions += 1
                for listener in self._evict_listeners:
                    listener(candidate)
                return candidate
        raise StorageFullError(
            f"all {len(self._resident)} resident files are pinned; "
            f"a task working set exceeds capacity {self.capacity_files}")

    def touch(self, fid: FileId) -> None:
        """Record a task reference: bump LRU position and ``r_i``."""
        if fid in self._resident:
            self._resident.move_to_end(fid)
        self._past_references[fid] = self._past_references.get(fid, 0) + 1
        for listener in self._touch_listeners:
            listener(fid)

    def pin(self, fid: FileId) -> None:
        """Protect a resident file from eviction (counted, re-entrant)."""
        if fid not in self._resident:
            raise KeyError(f"cannot pin non-resident file {fid}")
        self._pins[fid] = self._pins.get(fid, 0) + 1

    def unpin(self, fid: FileId) -> None:
        """Release one pin on ``fid``."""
        count = self._pins.get(fid, 0)
        if count <= 0:
            raise RuntimeError(f"unpin() without pin() for file {fid}")
        if count == 1:
            del self._pins[fid]
        else:
            self._pins[fid] = count - 1

    def unpin_all(self, fids: Iterable[FileId]) -> None:
        for fid in fids:
            self.unpin(fid)
