"""Grid workers: the compute hosts inside a site.

A worker runs one task at a time, end to end:

1. request the next task from the scheduling policy (control message),
2. submit one batch file request to its site's data server and wait for
   every input file to be local (assumptions 4 & 5),
3. compute for ``task.flops / speed`` seconds,
4. release its pins and notify the scheduler (control message), loop.

Workers support *replica cancellation* for the storage-affinity
baseline: :meth:`Worker.cancel_task` interrupts the fetch/compute phase
if the worker is currently executing the given task.
"""

from __future__ import annotations

import typing

from ..analysis.trace import (TaskCancelled, TaskCompleted, TaskStarted,
                              TraceBus)
from ..sim.errors import Interrupt
from .job import Task

if typing.TYPE_CHECKING:  # pragma: no cover
    from .cluster import Grid
    from .site import Site

#: Size in bytes of a scheduler control message (task request, task
#: delivery, completion notification).  Small, but routed through the
#: real network so shared links see the traffic.
CONTROL_MESSAGE_BYTES = 1024.0


class Worker:
    """One compute host within a site."""

    def __init__(self, grid: "Grid", site: "Site", index: int,
                 mflops: float):
        if mflops <= 0:
            raise ValueError(f"worker speed must be positive, got {mflops}")
        self.grid = grid
        self.site = site
        self.name = f"w{site.site_id}.{index}"
        self.mflops = mflops
        self.flops_per_second = mflops * 1e6
        self.env = grid.env
        self.trace: TraceBus = grid.trace
        #: Task currently in the fetch/compute phase, if any.
        self.current_task: typing.Optional[Task] = None
        #: Optional callable returning a compute-time multiplier,
        #: sampled at compute start (background CPU load hook).
        self.compute_factor: typing.Optional[
            typing.Callable[[], float]] = None
        self._cancellable = False
        self.tasks_completed = 0
        self.tasks_cancelled = 0
        self.busy_time = 0.0
        self._process = grid.env.process(self._run(), name=self.name)

    # -- control -----------------------------------------------------------
    def cancel_task(self, task_id: int) -> bool:
        """Interrupt this worker if it is executing task ``task_id``.

        Returns True if an interrupt was delivered.  Used by replicating
        schedulers when another copy of the task finished first.
        """
        if (self._cancellable and self.current_task is not None
                and self.current_task.task_id == task_id
                and self._process.is_alive):
            self._process.interrupt(task_id)
            return True
        return False

    def fail(self, repair_time: float) -> bool:
        """Crash the worker mid-task; it returns after ``repair_time``.

        Returns True if the worker was actually executing something.
        Used by :class:`~repro.grid.failures.WorkerFailureInjector`.
        """
        from .failures import WorkerFailure  # local: avoid import cycle
        if self._cancellable and self.current_task is not None \
                and self._process.is_alive:
            self._process.interrupt(WorkerFailure(repair_time))
            return True
        return False

    @property
    def process(self):
        """The underlying simulation process (an event; joinable)."""
        return self._process

    # -- main loop -------------------------------------------------------
    def _run(self):
        net = self.grid.network
        gateway = self.site.gateway
        scheduler_node = self.grid.scheduler_node
        while True:
            # Ask the global scheduler for work (request + reply).
            yield net.transfer(gateway, scheduler_node,
                               CONTROL_MESSAGE_BYTES)
            task = yield self.grid.scheduler.next_task(self)
            yield net.transfer(scheduler_node, gateway,
                               CONTROL_MESSAGE_BYTES)
            if task is None:
                return
            yield from self._execute(task)

    def _execute(self, task: Task):
        self.current_task = task
        self._cancellable = True
        request = self.site.data_server.submit(task.files, self.name)
        started = self.env.now
        try:
            ready = yield request.done
            if not ready:
                # Cancelled while still queued at the data server.
                self._finish_cancelled(task)
                return
            self.trace.emit(TaskStarted(time=self.env.now,
                                        task_id=task.task_id,
                                        worker=self.name,
                                        site=self.site.site_id))
            if task.flops > 0:
                duration = task.flops / self.flops_per_second
                if self.compute_factor is not None:
                    duration *= self.compute_factor()
                yield self.env.timeout(duration)
        except Interrupt as interrupt:
            self.site.data_server.cancel(request)
            self._finish_cancelled(task)
            cause = interrupt.cause
            if hasattr(cause, "repair_time") and cause.repair_time > 0:
                yield self.env.timeout(cause.repair_time)
            return

        self._cancellable = False
        self.site.data_server.release(request)
        self.busy_time += self.env.now - started
        self.tasks_completed += 1
        self.trace.emit(TaskCompleted(time=self.env.now,
                                      task_id=task.task_id,
                                      worker=self.name,
                                      site=self.site.site_id))
        # Completion notification rides the network too.
        yield self.grid.network.transfer(self.site.gateway,
                                         self.grid.scheduler_node,
                                         CONTROL_MESSAGE_BYTES)
        self.grid.scheduler.notify_complete(self, task)
        self.current_task = None

    def _finish_cancelled(self, task: Task) -> None:
        self._cancellable = False
        self.tasks_cancelled += 1
        self.trace.emit(TaskCancelled(time=self.env.now,
                                      task_id=task.task_id,
                                      worker=self.name,
                                      site=self.site.site_id))
        self.grid.scheduler.notify_cancelled(self, task)
        self.current_task = None
