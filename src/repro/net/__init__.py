"""Network substrate: topology graphs, flow-level transfers, Tiers generator.

* :class:`Topology`, :class:`Link`, :class:`Route` — the graph layer.
* :class:`FlowNetwork`, :class:`TransferStats` — max-min fair flow model.
* :func:`generate_tiers` / :class:`TiersParams` / :class:`GridTopology` —
  hierarchical WAN/MAN/LAN topologies in the style of the Tiers generator
  the paper uses.
"""

from .crosstraffic import CrossTraffic
from .flow import FlowNetwork, TransferStats
from .tiers import GridTopology, TiersParams, generate as generate_tiers
from .topology import Link, Route, Topology

__all__ = [
    "CrossTraffic",
    "FlowNetwork",
    "GridTopology",
    "Link",
    "Route",
    "TiersParams",
    "Topology",
    "TransferStats",
    "generate_tiers",
]
