"""Flow-level network simulation with progressive max-min fair sharing.

This is the SimGrid-style network model the paper's simulations rely on:
a transfer is a *flow* along a fixed route; all flows crossing a link
share its bandwidth max-min fairly; whenever a flow starts or finishes,
every rate is recomputed (water-filling) and the next completion is
re-scheduled.

The model captures the two effects the paper leans on:

* a site's workers and data server share one uplink, so concurrent
  transfers into a site contend with each other, and
* transfer time scales with bytes over the bottleneck link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..sim.engine import Environment
from ..sim.events import Event
from .topology import Route, Topology

#: Remaining-bytes threshold under which a flow counts as finished.
#: Guards against float drift accumulating over rate recomputations.
_EPSILON_BYTES = 1e-6

#: Defensive floor on flow rates.  Float drift in the water-filling loop
#: could otherwise assign a flow exactly 0 bytes/s and stall the clock.
_MIN_RATE = 1e-9


@dataclass(frozen=True)
class TransferStats:
    """Completion record for one finished flow."""

    src: str
    dst: str
    size: float
    requested_at: float
    started_at: float   # admission time (request + route latency)
    finished_at: float

    @property
    def duration(self) -> float:
        """Wall time from request to completion (includes latency)."""
        return self.finished_at - self.requested_at


class _Flow:
    """Internal mutable state of one active transfer."""

    __slots__ = ("flow_id", "route", "size", "remaining", "rate",
                 "done", "requested_at", "started_at")

    def __init__(self, flow_id: int, route: Route, size: float,
                 done: Event, requested_at: float, started_at: float):
        self.flow_id = flow_id
        self.route = route
        self.size = size
        self.remaining = size
        self.rate = 0.0
        self.done = done
        self.requested_at = requested_at
        self.started_at = started_at


class FlowNetwork:
    """Executes transfers over a :class:`Topology` with max-min sharing.

    Parameters
    ----------
    env:
        Simulation environment.
    topology:
        The network graph; routes are resolved through it.
    """

    def __init__(self, env: Environment, topology: Topology):
        self.env = env
        self.topology = topology
        self._flows: Dict[int, _Flow] = {}
        self._next_id = 0
        self._last_update = env.now
        self._timer_version = 0
        #: Cumulative counters for analysis.
        self.completed_transfers = 0
        self.bytes_transferred = 0.0

    # -- public API ----------------------------------------------------
    @property
    def active_flow_count(self) -> int:
        return len(self._flows)

    def transfer(self, src: str, dst: str, size: float) -> Event:
        """Start moving ``size`` bytes from ``src`` to ``dst``.

        Returns an event whose value is a :class:`TransferStats` once the
        last byte arrives.  Zero-byte and same-node transfers complete
        after the route latency alone.
        """
        if size < 0:
            raise ValueError(f"negative transfer size {size}")
        route = self.topology.route(src, dst)
        done = Event(self.env)
        requested_at = self.env.now
        latency = route.latency

        if size == 0 or not route.links:
            stats = TransferStats(src, dst, size, requested_at,
                                  requested_at + latency,
                                  requested_at + latency)
            self.completed_transfers += 1
            self.bytes_transferred += size
            done.succeed(stats, delay=latency)
            return done

        admit = self.env.timeout(latency)
        admit.add_callback(
            lambda _e: self._admit(route, size, done, requested_at))
        return done

    # -- internals -------------------------------------------------------
    def _admit(self, route: Route, size: float, done: Event,
               requested_at: float) -> None:
        flow = _Flow(self._next_id, route, size, done, requested_at,
                     self.env.now)
        self._next_id += 1
        self._flows[flow.flow_id] = flow
        self._update()

    def _update(self) -> None:
        """Advance all flows to now, complete finished ones, reschedule."""
        now = self.env.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed > 0:
            for flow in self._flows.values():
                flow.remaining -= flow.rate * elapsed
                if flow.remaining < 0:
                    flow.remaining = 0.0

        # A flow is done when its bytes are (numerically) gone, or when
        # the time left is below the clock's float resolution at `now` —
        # otherwise `now + dt == now` and the completion timer would
        # fire forever without advancing the clock.
        eps_t = max(1e-9, abs(now) * 1e-12)
        finished = [f for f in self._flows.values()
                    if f.remaining <= _EPSILON_BYTES
                    or (f.rate > 0 and f.remaining / f.rate <= eps_t)]
        for flow in finished:
            del self._flows[flow.flow_id]
            self.completed_transfers += 1
            self.bytes_transferred += flow.size
            flow.done.succeed(TransferStats(
                flow.route.src, flow.route.dst, flow.size,
                flow.requested_at, flow.started_at, now))

        self._recompute_rates()
        self._schedule_next_completion()

    def _recompute_rates(self) -> None:
        """Water-filling max-min fair allocation over active flows."""
        if not self._flows:
            return
        remaining_cap: Dict[int, float] = {}
        link_flows: Dict[int, List[_Flow]] = {}
        for flow in self._flows.values():
            for link in flow.route.links:
                if link.link_id not in remaining_cap:
                    remaining_cap[link.link_id] = link.bandwidth
                    link_flows[link.link_id] = []
                link_flows[link.link_id].append(flow)

        unfixed = dict(self._flows)  # flow_id -> flow, insertion ordered
        counts = {lid: len(flows) for lid, flows in link_flows.items()}
        while unfixed:
            # The bottleneck link is the one offering the smallest fair
            # share to its unfixed flows.
            bottleneck = min(
                (lid for lid, n in counts.items() if n > 0),
                key=lambda lid: (remaining_cap[lid] / counts[lid], lid))
            fair_share = remaining_cap[bottleneck] / counts[bottleneck]
            for flow in list(link_flows[bottleneck]):
                if flow.flow_id not in unfixed:
                    continue
                flow.rate = fair_share if fair_share > 0 else _MIN_RATE
                del unfixed[flow.flow_id]
                for link in flow.route.links:
                    counts[link.link_id] -= 1
                    remaining_cap[link.link_id] -= fair_share
                    if remaining_cap[link.link_id] < 0:
                        remaining_cap[link.link_id] = 0.0

    def _schedule_next_completion(self) -> None:
        self._timer_version += 1
        if not self._flows:
            return
        next_done = min(flow.remaining / flow.rate
                        for flow in self._flows.values() if flow.rate > 0)
        # Never schedule below the clock's resolution (see _update).
        next_done = max(next_done, 1e-9, abs(self.env.now) * 1e-12)
        version = self._timer_version
        timer = self.env.timeout(next_done)
        timer.add_callback(lambda _e: self._on_timer(version))

    def _on_timer(self, version: int) -> None:
        if version != self._timer_version:
            return  # superseded by a later admit/complete
        self._update()
