"""Tiers-style hierarchical topology generation.

The paper generates its simulation networks with the Tiers topology
generator (Doar, Globecom 1996): a three-level hierarchy of WAN core,
MANs, and LANs.  This module reproduces that structure with seeded
randomness:

* a WAN core ring (plus random chords for redundancy),
* MAN routers, each homed to a WAN router,
* one LAN gateway per grid *site*, homed to a MAN router,
* a global scheduler node and a global file server node on the WAN core.

Per the paper's system model, all workers and the data server of a site
share the site's outgoing link, and intra-site communication is free —
so the site gateway is the network endpoint for everything inside the
site, and the gateway's uplink is the shared bottleneck.

Bandwidths are jittered per link (seeded) to model heterogeneous
networks, like Tiers' randomized link parameters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from .topology import Topology

MB = 1024.0 * 1024.0


@dataclass(frozen=True)
class TiersParams:
    """Knobs for the hierarchical generator.

    Defaults give a 2006-era research WAN: ~100 Mbit core, ~40 Mbit
    metro links, ~10 Mbit site uplinks, fat server uplinks, all in
    bytes/second.  Data-intensive grid applications are network-bound
    on links of this class, which is the regime the paper studies.
    """

    num_sites: int = 10
    num_wan_routers: int = 4
    num_man_routers: int = 0  # 0 = derive as max(2, num_sites // 4)
    wan_bandwidth: float = 12.5 * MB
    wan_latency: float = 0.020
    man_bandwidth: float = 5.0 * MB
    man_latency: float = 0.005
    site_bandwidth: float = 1.25 * MB
    site_latency: float = 0.002
    server_bandwidth: float = 25.0 * MB
    server_latency: float = 0.001
    bandwidth_jitter: float = 0.25
    extra_wan_chords: int = 1

    def __post_init__(self):
        if self.num_sites < 1:
            raise ValueError("need at least one site")
        if self.num_wan_routers < 1:
            raise ValueError("need at least one WAN router")
        if not 0.0 <= self.bandwidth_jitter < 1.0:
            raise ValueError("bandwidth_jitter must be in [0, 1)")


@dataclass(frozen=True)
class GridTopology:
    """A generated network plus the endpoints the grid model needs."""

    topology: Topology
    site_gateways: Tuple[str, ...]
    scheduler_node: str
    file_server_node: str

    @property
    def num_sites(self) -> int:
        return len(self.site_gateways)


def generate(params: TiersParams, seed: int) -> GridTopology:
    """Generate a hierarchical topology for ``params`` and ``seed``.

    The same (params, seed) pair always produces the identical graph.
    """
    rng = random.Random(seed)
    topo = Topology()

    def jittered(base: float) -> float:
        if params.bandwidth_jitter == 0:
            return base
        spread = params.bandwidth_jitter
        return base * rng.uniform(1.0 - spread, 1.0 + spread)

    # WAN core: ring plus chords.
    wan = [topo.add_node(f"wan{i}", "wan")
           for i in range(params.num_wan_routers)]
    if len(wan) > 1:
        for i, node in enumerate(wan):
            topo.add_link(node, wan[(i + 1) % len(wan)],
                          jittered(params.wan_bandwidth), params.wan_latency)
    if len(wan) > 3:
        for _ in range(params.extra_wan_chords):
            a, b = rng.sample(wan, 2)
            topo.add_link(a, b, jittered(params.wan_bandwidth),
                          params.wan_latency)

    # MAN tier.
    num_mans = params.num_man_routers or max(2, params.num_sites // 4)
    mans: List[str] = []
    for i in range(num_mans):
        man = topo.add_node(f"man{i}", "man")
        topo.add_link(man, rng.choice(wan), jittered(params.man_bandwidth),
                      params.man_latency)
        mans.append(man)

    # Site gateways (one LAN per grid site).
    gateways: List[str] = []
    for i in range(params.num_sites):
        site = topo.add_node(f"site{i}", "site")
        topo.add_link(site, rng.choice(mans), jittered(params.site_bandwidth),
                      params.site_latency)
        gateways.append(site)

    # Global services sit on the WAN core with fat links.
    scheduler = topo.add_node("scheduler", "service")
    topo.add_link(scheduler, rng.choice(wan), params.server_bandwidth,
                  params.server_latency)
    file_server = topo.add_node("fileserver", "service")
    topo.add_link(file_server, rng.choice(wan), params.server_bandwidth,
                  params.server_latency)

    assert topo.is_connected()
    return GridTopology(topo, tuple(gateways), scheduler, file_server)
