"""Network topology graph: nodes, links, and shortest-path routing.

A :class:`Topology` is an undirected multigraph of named nodes connected
by :class:`Link` objects carrying a bandwidth (bytes/second) and a latency
(seconds).  Routing uses latency-weighted Dijkstra with deterministic
tie-breaking, and routes are cached per (source, destination) pair.

The grid model only ever routes between a handful of endpoints (site
gateways, the file server, the scheduler), so route caching makes routing
cost negligible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Link:
    """An undirected network link.

    Attributes
    ----------
    link_id:
        Unique integer id within the topology.
    a, b:
        Endpoint node names.
    bandwidth:
        Capacity in bytes/second shared by all flows crossing the link.
    latency:
        One-way propagation delay in seconds.
    """

    link_id: int
    a: str
    b: str
    bandwidth: float
    latency: float

    def other(self, node: str) -> str:
        """The endpoint opposite ``node``."""
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise ValueError(f"{node!r} is not an endpoint of link {self.link_id}")


@dataclass
class Route:
    """A concrete path between two nodes."""

    src: str
    dst: str
    links: Tuple[Link, ...]

    @property
    def latency(self) -> float:
        """Sum of per-link propagation delays along the path."""
        return sum(link.latency for link in self.links)

    @property
    def bottleneck_bandwidth(self) -> float:
        """The narrowest link capacity on the path (inf for empty paths)."""
        if not self.links:
            return float("inf")
        return min(link.bandwidth for link in self.links)


class Topology:
    """An undirected network graph with cached shortest-path routing."""

    def __init__(self):
        self._nodes: Dict[str, str] = {}  # name -> kind
        self._links: List[Link] = []
        self._adjacency: Dict[str, List[Link]] = {}
        self._route_cache: Dict[Tuple[str, str], Route] = {}

    # -- construction ------------------------------------------------------
    def add_node(self, name: str, kind: str = "node") -> str:
        """Register a node; ``kind`` is a free-form label ("site", "wan"...)."""
        if name in self._nodes:
            raise ValueError(f"duplicate node {name!r}")
        self._nodes[name] = kind
        self._adjacency[name] = []
        return name

    def add_link(self, a: str, b: str, bandwidth: float,
                 latency: float) -> Link:
        """Connect ``a`` and ``b``; returns the new :class:`Link`."""
        for node in (a, b):
            if node not in self._nodes:
                raise KeyError(f"unknown node {node!r}")
        if a == b:
            raise ValueError(f"self-link on {a!r}")
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        link = Link(len(self._links), a, b, float(bandwidth), float(latency))
        self._links.append(link)
        self._adjacency[a].append(link)
        self._adjacency[b].append(link)
        self._route_cache.clear()
        return link

    # -- inspection --------------------------------------------------------
    @property
    def nodes(self) -> Tuple[str, ...]:
        return tuple(self._nodes)

    @property
    def links(self) -> Tuple[Link, ...]:
        return tuple(self._links)

    def node_kind(self, name: str) -> str:
        return self._nodes[name]

    def nodes_of_kind(self, kind: str) -> Tuple[str, ...]:
        """All node names whose kind equals ``kind``, in insertion order."""
        return tuple(n for n, k in self._nodes.items() if k == kind)

    def neighbors(self, name: str) -> Tuple[str, ...]:
        return tuple(link.other(name) for link in self._adjacency[name])

    def degree(self, name: str) -> int:
        return len(self._adjacency[name])

    # -- routing -----------------------------------------------------------
    def route(self, src: str, dst: str) -> Route:
        """Latency-shortest path from ``src`` to ``dst`` (cached).

        Ties are broken by hop count and then lexicographically by node
        name, so routing is deterministic regardless of insertion order.
        """
        if src not in self._nodes or dst not in self._nodes:
            missing = src if src not in self._nodes else dst
            raise KeyError(f"unknown node {missing!r}")
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        if src == dst:
            route = Route(src, dst, ())
            self._route_cache[key] = route
            return route

        # Dijkstra keyed by (latency, hops, node name).
        dist: Dict[str, Tuple[float, int]] = {src: (0.0, 0)}
        prev: Dict[str, Tuple[str, Link]] = {}
        heap: List[Tuple[float, int, str]] = [(0.0, 0, src)]
        visited = set()
        while heap:
            d, hops, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            if node == dst:
                break
            for link in self._adjacency[node]:
                nxt = link.other(node)
                if nxt in visited:
                    continue
                cand = (d + link.latency, hops + 1)
                if nxt not in dist or cand < dist[nxt] or (
                        cand == dist[nxt] and node < prev[nxt][0]):
                    dist[nxt] = cand
                    prev[nxt] = (node, link)
                    heapq.heappush(heap, (cand[0], cand[1], nxt))
        if dst not in prev:
            raise ValueError(f"no path from {src!r} to {dst!r}")

        links: List[Link] = []
        node = dst
        while node != src:
            parent, link = prev[node]
            links.append(link)
            node = parent
        route = Route(src, dst, tuple(reversed(links)))
        self._route_cache[key] = route
        # Paths are symmetric; cache the reverse too.
        self._route_cache[(dst, src)] = Route(dst, src,
                                              tuple(reversed(route.links)))
        return route

    def is_connected(self) -> bool:
        """True if every node is reachable from every other node."""
        if not self._nodes:
            return True
        start = next(iter(self._nodes))
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for link in self._adjacency[node]:
                nxt = link.other(node)
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return len(seen) == len(self._nodes)
