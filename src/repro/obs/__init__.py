"""repro.obs — unified observability: metrics, events, traces, HTTP.

One registry feeds every exporter:

* :mod:`repro.obs.metrics` — ``Counter``/``Gauge``/``LatencyHistogram``
  behind a :class:`MetricsRegistry` with label support,
* :mod:`repro.obs.prometheus` — text exposition writer + strict parser,
* :mod:`repro.obs.http` — asyncio ``/metrics`` + ``/healthz`` +
  ``/stats.json`` scrape endpoint,
* :mod:`repro.obs.events` — schema'd JSON-lines event log (ring buffer
  + rotating file sink),
* :mod:`repro.obs.trace` — per-decision spans from
  ``PolicyEngine.choose`` ("why was this task picked"),
* :mod:`repro.obs.top` — the ``repro top`` live terminal view.

The live daemon (:mod:`repro.serve`) and the simulator's
:class:`~repro.sim.monitor.StateMonitor` both publish into this layer
under identical metric names, so one dashboard covers both.
"""

from .events import (EVENT_SCHEMAS, EventLog, EventSchemaError,
                     RotatingJsonlSink, iter_events, read_events,
                     validate_event)
from .http import ObsHttpServer
from .metrics import (Counter, Gauge, LatencyHistogram, MetricFamily,
                      MetricsRegistry)
from .prometheus import CONTENT_TYPE, ParseError, parse, render
from .top import fetch_json, render_top, run_top
from .trace import DecisionTracer, explain_span

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "DecisionTracer",
    "EVENT_SCHEMAS",
    "EventLog",
    "EventSchemaError",
    "Gauge",
    "LatencyHistogram",
    "MetricFamily",
    "MetricsRegistry",
    "ObsHttpServer",
    "ParseError",
    "RotatingJsonlSink",
    "explain_span",
    "fetch_json",
    "iter_events",
    "parse",
    "read_events",
    "render",
    "render_top",
    "run_top",
    "validate_event",
]
