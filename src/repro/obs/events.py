"""Structured JSON-lines event log for scheduler decisions and fates.

Every interesting state transition — job submit, task assignment,
completion, lease expiry, requeue, file-delta, scheduling decision —
is one schema-checked JSON object on one line, stamped with a wall
clock and a monotonically increasing sequence number.  The log is
simultaneously:

* a bounded in-memory **ring buffer** (``tail()``) for live endpoints,
* an optional **rotating file sink** (``--event-log PATH``) for
  post-hoc analysis — :mod:`repro.analysis.eventlog` reconstructs
  per-task assign→complete timelines from it.

Schemas are *minimum* field sets: emitters may attach extra fields
(the server adds ``lease_id``/``latency_us`` to ``assign`` records,
the client-side load generator does not have them), but a record
missing a required field, or of an unknown type, is rejected at emit
and at read time — a corrupt log fails loudly, not in the plots.

The log doubles as the **write-ahead log** of a durable scheduler
shard (:mod:`repro.cluster`): ``auto_flush=True`` pushes every record
to the OS before the caller acks anything over the wire (the page
cache survives a ``kill -9``), :meth:`EventLog.sync` fsyncs at
snapshot barriers, rotation fsyncs the outgoing file, and
``seq_start`` lets a recovered shard continue the sequence where the
previous incarnation stopped.  The reader distinguishes *truncation*
from *corruption*: a final line the crash cut short (no trailing
newline, unparseable) is warned about and skipped; a complete line of
bad JSON anywhere still raises.
"""

from __future__ import annotations

import io
import json
import logging
import os
import time
from collections import deque
from typing import Deque, Dict, Iterator, List, Optional, Set

log = logging.getLogger("repro.obs.events")

__all__ = ["EVENT_SCHEMAS", "EventLog", "EventSchemaError",
           "RotatingJsonlSink", "read_events", "iter_events",
           "validate_event"]

#: event type -> required fields (beyond ``ts``/``seq``/``event``).
EVENT_SCHEMAS: Dict[str, Set[str]] = {
    "submit": {"job_id", "tasks"},
    "assign": {"task_id", "site", "worker"},
    "complete": {"task_id", "worker"},
    "lease-expire": {"task_id", "lease_id"},
    "requeue": {"task_id", "reason"},
    "delta": {"site", "added", "removed", "referenced"},
    "decision": {"site", "metric", "chosen", "candidates"},
    # Shard-to-shard work stealing (repro.cluster).  Victim side:
    # export (durable before STEAL_GRANT), commit on STEAL_ACK, abort
    # on thief loss.  Thief side: tentative import, commit/abort after
    # the victim's answer, local completion of a stolen task, and the
    # forwarded-to-owner marker that prunes the completion outbox.
    "steal-export": {"export_id", "thief", "specs"},
    "steal-export-ack": {"export_id"},
    "steal-export-abort": {"export_id"},
    "steal-import": {"origin", "export_id", "specs"},
    "steal-import-commit": {"origin", "export_id"},
    "steal-import-abort": {"origin", "export_id"},
    "steal-task-done": {"task_id", "worker"},
    "steal-forwarded": {"task_ids"},
}


class EventSchemaError(ValueError):
    """A record of unknown type or missing a required field."""


def validate_event(record: Dict) -> Dict:
    """Check one record against :data:`EVENT_SCHEMAS`; returns it."""
    event = record.get("event")
    schema = EVENT_SCHEMAS.get(event)
    if schema is None:
        raise EventSchemaError(f"unknown event type {event!r}")
    missing = schema - set(record)
    if missing:
        raise EventSchemaError(
            f"{event} record missing fields {sorted(missing)}")
    return record


class RotatingJsonlSink:
    """Append-only JSONL file with size-based rotation.

    When the file would exceed ``max_bytes`` the existing backups
    shift up (``path.1`` → ``path.2`` …, oldest dropped) and the
    current file becomes ``path.1`` — the standard logrotate dance,
    dependency-free.  A line is never split across files.
    """

    def __init__(self, path: str, max_bytes: int = 16 << 20,
                 backups: int = 3):
        if max_bytes < 1 or backups < 0:
            raise ValueError("need max_bytes >= 1 and backups >= 0")
        self.path = path
        self.max_bytes = max_bytes
        self.backups = backups
        self._file: Optional[io.TextIOWrapper] = open(
            path, "a", encoding="utf-8")
        self._size = self._file.tell()

    def write(self, line: str) -> None:
        if self._file is None:
            raise ValueError("sink is closed")
        if self._size and self._size + len(line) > self.max_bytes:
            self._rotate()
        self._file.write(line)
        self._size += len(line)

    def _rotate(self) -> None:
        # The outgoing file is about to become a read-only backup a
        # crash-recovery replay may depend on: make it durable first.
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.close()
        if self.backups == 0:
            os.remove(self.path)
        else:
            oldest = f"{self.path}.{self.backups}"
            if os.path.exists(oldest):
                os.remove(oldest)
            for index in range(self.backups - 1, 0, -1):
                src = f"{self.path}.{index}"
                if os.path.exists(src):
                    os.replace(src, f"{self.path}.{index + 1}")
            os.replace(self.path, f"{self.path}.1")
        self._file = open(self.path, "a", encoding="utf-8")
        self._size = 0

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()

    def sync(self) -> None:
        """Flush and fsync: a durability barrier (snapshots use it)."""
        if self._file is not None:
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


class EventLog:
    """Ring buffer + optional rotating file sink of schema'd events.

    ``emit("assign", task_id=3, site=0, worker="w1", ...)`` validates,
    stamps ``ts`` (wall clock) and ``seq``, keeps the record in the
    ring, and appends one JSON line to the sink when a path was given.

    WAL duty (``repro.cluster`` shards): ``seq_start`` continues the
    sequence of a previous incarnation after crash recovery, and
    ``auto_flush=True`` flushes the sink on every emit, so a record is
    in the OS page cache — which survives the *process* dying, if not
    the machine — before the mutation it describes is acked.
    """

    def __init__(self, path: Optional[str] = None, ring_size: int = 2048,
                 clock=time.time, max_bytes: int = 16 << 20,
                 backups: int = 3, seq_start: int = 0,
                 auto_flush: bool = False):
        self._clock = clock
        self._ring: Deque[Dict] = deque(maxlen=ring_size)
        self._seq = seq_start
        self._seq_start = seq_start
        self._auto_flush = auto_flush
        self._sink = (RotatingJsonlSink(path, max_bytes=max_bytes,
                                        backups=backups)
                      if path else None)
        self.path = path

    def emit(self, event: str, **fields) -> Dict:
        record = {"ts": round(float(self._clock()), 6),
                  "seq": self._seq, "event": event, **fields}
        validate_event(record)
        self._seq += 1
        self._ring.append(record)
        if self._sink is not None:
            self._sink.write(json.dumps(
                record, separators=(",", ":"), sort_keys=True) + "\n")
            if self._auto_flush:
                self._sink.flush()
        return record

    @property
    def emitted(self) -> int:
        """Records emitted by *this* log (ring may hold fewer)."""
        return self._seq - self._seq_start

    @property
    def next_seq(self) -> int:
        """The sequence number the next emitted record will carry."""
        return self._seq

    def tail(self, count: Optional[int] = None) -> List[Dict]:
        """The newest ``count`` records (all buffered if None)."""
        if count is None or count >= len(self._ring):
            return list(self._ring)
        return list(self._ring)[-count:]

    def flush(self) -> None:
        if self._sink is not None:
            self._sink.flush()

    def sync(self) -> None:
        """Flush + fsync the sink (the snapshot durability barrier)."""
        if self._sink is not None:
            self._sink.sync()

    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def iter_events(path: str) -> Iterator[Dict]:
    """Stream validated records from one JSONL file.

    A final line the writer's crash cut short — identified by the
    missing trailing newline (only the last line of a file can lack
    one) — is logged as a warning and skipped: replaying a WAL after
    ``kill -9`` must not die on the half-written record that the kill
    itself produced.  A *complete* (newline-terminated) line of bad
    JSON is corruption, not truncation, and still raises.
    """
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, 1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if not line.endswith("\n"):
                    log.warning(
                        "%s:%d: dropping truncated final line "
                        "(%d bytes): %s", path, line_number, len(line),
                        exc)
                    return
                raise EventSchemaError(
                    f"{path}:{line_number}: bad JSON: {exc}") from exc
            yield validate_event(record)


def read_events(path: str) -> List[Dict]:
    """All validated records of one JSONL file, in file order."""
    return list(iter_events(path))
