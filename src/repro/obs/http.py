"""Asyncio HTTP endpoint serving the observability surface.

A deliberately small HTTP/1.1 server (GET/HEAD only, one response per
connection, ``Connection: close``) — enough for Prometheus scrapers,
``curl``, health probes, and ``repro top``, with zero dependencies.

Routes:

* ``GET /metrics``    — Prometheus text format from the registry,
* ``GET /healthz``    — liveness JSON (``{"status": "ok", ...}``),
* ``GET /stats.json`` — whatever snapshot callable the host wired in,
* any extra ``json_routes`` (the scheduler daemon adds
  ``/trace.json`` for recent decision spans).

Handlers run on the event loop, so they must be cheap — all of ours
are pure in-memory walks.  Errors inside a handler return a 500 with
the exception name instead of killing the connection task.
"""

from __future__ import annotations

import asyncio
import json
import logging
from typing import Callable, Dict, Optional, Set

from . import prometheus
from .metrics import MetricsRegistry

__all__ = ["ObsHttpServer"]

log = logging.getLogger("repro.obs.http")

_MAX_REQUEST_BYTES = 16 * 1024


class ObsHttpServer:
    """Serves ``/metrics``, ``/healthz`` and JSON snapshot routes."""

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 json_routes: Optional[Dict[str, Callable[[], Dict]]]
                 = None,
                 health: Optional[Callable[[], Dict]] = None):
        self.registry = registry
        self.host = host
        self.port = port
        self._health = health or (lambda: {"status": "ok"})
        self._json_routes = dict(json_routes or {})
        self._server: Optional[asyncio.AbstractServer] = None
        self._handler_tasks: Set[asyncio.Task] = set()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def routes(self) -> tuple:
        paths = ["/healthz"]
        if self.registry is not None:
            paths.append("/metrics")
        paths.extend(self._json_routes)
        return tuple(sorted(paths))

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port,
            limit=_MAX_REQUEST_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]
        log.info("metrics endpoint on %s (routes: %s)", self.url,
                 ", ".join(self.routes))

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._handler_tasks:
            await asyncio.wait(self._handler_tasks, timeout=5)

    # -- one request per connection --------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self._handler_tasks.add(asyncio.current_task())
        try:
            request = await reader.readline()
            parts = request.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, path = parts[0], parts[1].split("?", 1)[0]
            # Drain headers; we answer regardless of their content.
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            status, content_type, body = self._respond(method, path)
            head = (f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"Connection: close\r\n\r\n")
            writer.write(head.encode("latin-1"))
            if method != "HEAD":
                writer.write(body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError,
                asyncio.LimitOverrunError, ValueError):
            pass
        finally:
            self._handler_tasks.discard(asyncio.current_task())
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _respond(self, method: str, path: str):
        """(status line, content type, body bytes) for one request."""
        if method not in ("GET", "HEAD"):
            return ("405 Method Not Allowed", "text/plain; charset=utf-8",
                    b"only GET and HEAD are supported\n")
        try:
            if path == "/metrics" and self.registry is not None:
                body = prometheus.render(self.registry).encode("utf-8")
                return ("200 OK", prometheus.CONTENT_TYPE, body)
            if path == "/healthz":
                return ("200 OK", "application/json",
                        _json_body(self._health()))
            handler = self._json_routes.get(path)
            if handler is not None:
                return ("200 OK", "application/json",
                        _json_body(handler()))
        except Exception as exc:  # noqa: BLE001 - report, don't die
            log.exception("handler for %s failed", path)
            return ("500 Internal Server Error",
                    "text/plain; charset=utf-8",
                    f"{type(exc).__name__}: {exc}\n".encode("utf-8"))
        return ("404 Not Found", "text/plain; charset=utf-8",
                f"no route {path}; try {', '.join(self.routes)}\n"
                .encode("utf-8"))


def _json_body(payload: Dict) -> bytes:
    return (json.dumps(payload, separators=(",", ":"), sort_keys=True)
            + "\n").encode("utf-8")
