"""Dependency-free metrics core: counters, gauges, histograms, registry.

The unified observability layer for both the live scheduler daemon
(:mod:`repro.serve`) and the simulator (:mod:`repro.sim.monitor`
bridges its probes in).  Pure standard library, O(1) per event, and
every metric is held behind a :class:`MetricsRegistry` so one walk of
the registry produces the Prometheus exposition
(:mod:`repro.obs.prometheus`) or a JSON snapshot.

Conventions follow Prometheus: counters are monotonically increasing
and end in ``_total``; gauges are set to the current value (or read a
``callback`` at collection time, for live values like queue depth);
histograms use geometric (power-of-two) buckets and expose
``_bucket``/``_sum``/``_count``.  Labels are declared per family and
children are cached per label-value tuple.
"""

from __future__ import annotations

import re
import threading
from typing import (Callable, Dict, Iterator, List, Optional, Sequence,
                    Tuple)

__all__ = ["Counter", "Gauge", "LatencyHistogram", "MetricFamily",
           "MetricsRegistry", "Sample"]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: One exposition sample: (name suffix, ((label, value), ...), number).
Sample = Tuple[str, Tuple[Tuple[str, str], ...], float]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def samples(self) -> Iterator[Sample]:
        yield ("", (), self._value)


class Gauge:
    """A value that can go up and down, or be computed at collect time.

    A ``callback`` makes the gauge *live*: its value is whatever the
    callable returns when the registry is scraped — the natural shape
    for "current queue depth" style metrics that already exist as
    properties on some object.
    """

    __slots__ = ("_value", "_callback")

    def __init__(self, callback: Optional[Callable[[], float]] = None):
        self._value = 0.0
        self._callback = callback

    def set(self, value: float) -> None:
        if self._callback is not None:
            raise RuntimeError("cannot set a callback-backed gauge")
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.set(self._value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self._value - amount)

    @property
    def value(self) -> float:
        if self._callback is not None:
            return float(self._callback())
        return self._value

    def samples(self) -> Iterator[Sample]:
        yield ("", (), self.value)


class LatencyHistogram:
    """Geometric buckets from ``base`` up, doubling; O(1) record.

    Bucket ``k`` holds samples in ``(base·2^(k-1), base·2^k]``; an
    underflow bucket catches anything ≤ base.  Quantiles return the
    upper edge of the containing bucket — a ≤2× overestimate, which is
    the right bias for latency reporting.

    ``record`` finds the bucket with ``int.bit_length()`` — the number
    of doublings needed is ``ceil(log2(seconds/base))`` — instead of a
    linear doubling loop, so it really is O(1) in the bucket count.
    """

    def __init__(self, base_seconds: float = 1e-6, num_buckets: int = 36):
        if base_seconds <= 0 or num_buckets < 1:
            raise ValueError("need base_seconds > 0 and num_buckets >= 1")
        self._base = base_seconds
        self._counts = [0] * (num_buckets + 1)  # [underflow, b1..bN]
        self._edges = [base_seconds * (2 ** k)
                       for k in range(num_buckets + 1)]
        self.count = 0
        self.max = 0.0
        self.total = 0.0

    def bucket_index(self, seconds: float) -> int:
        """Index of the bucket holding ``seconds``, in O(1).

        ``ceil(log2(ratio))`` for ``ratio = seconds/base > 1`` equals
        ``int(ratio).bit_length()`` (minus one when ratio is an exact
        integer power step); the two comparisons afterwards absorb any
        last-bit float rounding in the division so the answer is
        *defined* by the bucket edges, never by rounding luck.
        """
        top = len(self._counts) - 1
        ratio = seconds / self._base
        if ratio <= 1.0:
            return 0
        whole = int(ratio)
        if whole >= 1 << top:
            return top
        index = ((whole - 1).bit_length() if whole == ratio
                 else whole.bit_length())
        if index > top:
            return top
        edges = self._edges
        if index > 0 and seconds <= edges[index - 1]:
            index -= 1
        elif index < top and seconds > edges[index]:
            index += 1
        return index

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds
        self._counts[self.bucket_index(seconds)] += 1

    def quantile(self, q: float) -> float:
        """Upper bucket edge containing the q-quantile (0 if empty)."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for index, bucket in enumerate(self._counts):
            seen += bucket
            if seen >= target:
                return min(self._edges[index], self.max)
        return self.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_edge_seconds, cumulative_count)`` per finite bucket.

        The capped top bucket is folded into the implicit ``+Inf``
        bucket (= :attr:`count`) because samples above the last edge
        land there too — reporting them under a finite edge would lie.
        """
        out: List[Tuple[float, int]] = []
        seen = 0
        for index in range(len(self._counts) - 1):
            seen += self._counts[index]
            out.append((self._edges[index], seen))
        return out

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_us": self.mean * 1e6,
            "p50_us": self.quantile(0.50) * 1e6,
            "p90_us": self.quantile(0.90) * 1e6,
            "p99_us": self.quantile(0.99) * 1e6,
            "max_us": self.max * 1e6,
        }

    def samples(self) -> Iterator[Sample]:
        for edge, cumulative in self.cumulative_buckets():
            yield ("_bucket", (("le", _format_edge(edge)),),
                   float(cumulative))
        yield ("_bucket", (("le", "+Inf"),), float(self.count))
        yield ("_sum", (), self.total)
        yield ("_count", (), float(self.count))


def _format_edge(edge: float) -> str:
    """Shortest exact decimal for a bucket edge label."""
    if edge == int(edge) and abs(edge) < 1e15:
        return str(int(edge))
    return repr(edge)


class MetricFamily:
    """One named metric with fixed label names and cached children."""

    def __init__(self, name: str, kind: str, help_text: str,
                 labelnames: Sequence[str], factory: Callable[[], object]):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.kind = kind
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._factory = factory
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, **labelvalues: object):
        """The child for one label-value combination (created once)."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}")
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._factory()
        return child

    def children(self) -> Iterator[Tuple[Tuple[str, ...], object]]:
        yield from sorted(self._children.items())

    def samples(self) -> Iterator[Sample]:
        """Exposition samples, label values in declared-name order."""
        for key, child in self.children():
            base_labels = tuple(zip(self.labelnames, key))
            for suffix, extra_labels, value in child.samples():
                yield (suffix, base_labels + extra_labels, value)


class MetricsRegistry:
    """Ordered collection of metric families, shared by all exporters.

    ``counter``/``gauge``/``histogram`` register a family and — for
    the common unlabeled case — return its single child directly so
    call sites read ``self.assignments.inc()``.  Labeled declarations
    return the family; use ``family.labels(site=3)`` for children.
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    def _register(self, family: MetricFamily) -> MetricFamily:
        with self._lock:
            if family.name in self._families:
                raise ValueError(
                    f"metric {family.name!r} already registered")
            self._families[family.name] = family
        return family

    def counter(self, name: str, help_text: str = "",
                labelnames: Sequence[str] = ()):
        family = self._register(MetricFamily(
            name, "counter", help_text, labelnames, Counter))
        return family if labelnames else family.labels()

    def gauge(self, name: str, help_text: str = "",
              labelnames: Sequence[str] = (),
              callback: Optional[Callable[[], float]] = None):
        if callback is not None and labelnames:
            raise ValueError("callback gauges cannot be labeled")
        family = self._register(MetricFamily(
            name, "gauge", help_text, labelnames,
            lambda: Gauge(callback=callback)))
        return family if labelnames else family.labels()

    def histogram(self, name: str, help_text: str = "",
                  base_seconds: float = 1e-6, num_buckets: int = 36,
                  labelnames: Sequence[str] = ()):
        family = self._register(MetricFamily(
            name, "histogram", help_text, labelnames,
            lambda: LatencyHistogram(base_seconds=base_seconds,
                                     num_buckets=num_buckets)))
        return family if labelnames else family.labels()

    def get(self, name: str) -> MetricFamily:
        return self._families[name]

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def collect(self) -> Iterator[MetricFamily]:
        """Families in registration order (stable exposition output)."""
        yield from self._families.values()


def reference_bucket_index(histogram: LatencyHistogram,
                           seconds: float) -> int:
    """The pre-optimization linear doubling loop, kept as the oracle
    the micro-benchmark asserts :meth:`LatencyHistogram.bucket_index`
    against (see ``benchmarks/bench_kernel_micro.py``)."""
    index = 0
    edge = histogram._base
    while seconds > edge and index < len(histogram._counts) - 1:
        index += 1
        edge *= 2
    return index
