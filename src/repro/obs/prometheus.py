"""Prometheus text exposition: writer and (strict) parser.

:func:`render` walks a :class:`~repro.obs.metrics.MetricsRegistry` and
produces the text format version 0.0.4 a Prometheus server scrapes —
``# HELP`` / ``# TYPE`` headers, label escaping, and the
``_bucket``/``_sum``/``_count`` triplet for histograms.

:func:`parse` is the strict inverse.  It exists so the test suite and
the CI smoke job can *validate* what ``GET /metrics`` returns instead
of grepping for substrings: any malformed line, bad escape, duplicate
family, or out-of-order histogram bucket raises :class:`ParseError`.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from .metrics import MetricsRegistry

__all__ = ["CONTENT_TYPE", "ParseError", "ParsedFamily", "parse",
           "render"]

#: The content type a scrape endpoint must declare for this format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE_RE = re.compile(
    r"^(" + _METRIC_NAME + r")(?:\{(.*)\})?\s+(\S+)$")
_HELP_RE = re.compile(r"^# HELP (" + _METRIC_NAME + r") (.*)$")
_TYPE_RE = re.compile(r"^# TYPE (" + _METRIC_NAME + r") "
                      r"(counter|gauge|histogram|summary|untyped)$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


# -- writing -----------------------------------------------------------------

def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r"\""))


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{name}="{_escape_label_value(value)}"'
                    for name, value in labels)
    return "{" + body + "}"


def render(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text format (one trailing newline)."""
    lines: List[str] = []
    for family in registry.collect():
        if family.help:
            lines.append(f"# HELP {family.name} "
                         f"{_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for suffix, labels, value in family.samples():
            lines.append(f"{family.name}{suffix}"
                         f"{_format_labels(labels)} "
                         f"{_format_value(value)}")
    return "\n".join(lines) + "\n"


# -- parsing -----------------------------------------------------------------

class ParseError(ValueError):
    """The exposition text violates the format."""


class ParsedFamily:
    """One metric family as read back from exposition text."""

    def __init__(self, name: str, kind: str = "untyped",
                 help_text: str = ""):
        self.name = name
        self.kind = kind
        self.help = help_text
        #: ``[(sample_name, {label: value}, number), ...]`` in order.
        self.samples: List[Tuple[str, Dict[str, str], float]] = []

    def value(self, labels: Optional[Dict[str, str]] = None,
              suffix: str = "") -> float:
        """The one sample matching ``labels`` (and name suffix)."""
        wanted = labels or {}
        name = self.name + suffix
        matches = [value for sample_name, sample_labels, value
                   in self.samples
                   if sample_name == name and sample_labels == wanted]
        if len(matches) != 1:
            raise KeyError(f"{name} with labels {wanted}: "
                           f"{len(matches)} matches")
        return matches[0]


def _unescape(text: str) -> str:
    out: List[str] = []
    index = 0
    while index < len(text):
        char = text[index]
        if char == "\\":
            if index + 1 >= len(text):
                raise ParseError(f"dangling escape in {text!r}")
            nxt = text[index + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ("\\", '"'):
                out.append(nxt)
            else:
                raise ParseError(f"bad escape \\{nxt} in {text!r}")
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def _parse_labels(body: str) -> Dict[str, str]:
    """Parse the inside of ``{...}`` — quote- and escape-aware."""
    labels: Dict[str, str] = {}
    index = 0
    length = len(body)
    while index < length:
        eq = body.find("=", index)
        if eq < 0:
            raise ParseError(f"label without '=' in {{{body}}}")
        name = body[index:eq]
        if not _LABEL_NAME_RE.match(name):
            raise ParseError(f"bad label name {name!r}")
        if eq + 1 >= length or body[eq + 1] != '"':
            raise ParseError(f"label {name!r} value is not quoted")
        cursor = eq + 2
        raw: List[str] = []
        while True:
            if cursor >= length:
                raise ParseError(f"unterminated label value for {name!r}")
            char = body[cursor]
            if char == "\\":
                if cursor + 1 >= length:
                    raise ParseError("dangling escape in label value")
                raw.append(body[cursor:cursor + 2])
                cursor += 2
                continue
            if char == '"':
                break
            raw.append(char)
            cursor += 1
        if name in labels:
            raise ParseError(f"duplicate label {name!r}")
        labels[name] = _unescape("".join(raw))
        cursor += 1  # past the closing quote
        if cursor < length:
            if body[cursor] != ",":
                raise ParseError(f"expected ',' after label {name!r}")
            cursor += 1
        index = cursor
    return labels


def _parse_number(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    try:
        return float(text)
    except ValueError as exc:
        raise ParseError(f"bad sample value {text!r}") from exc


def _base_name(sample_name: str, families: Dict[str, ParsedFamily],
               ) -> str:
    """Map ``x_bucket``/``x_sum``/``x_count`` back to family ``x``."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[:-len(suffix)]
            if base in families and families[base].kind == "histogram":
                return base
    return sample_name


def parse(text: str) -> Dict[str, ParsedFamily]:
    """Strictly parse exposition text into families, validating:

    * ``# HELP`` / ``# TYPE`` syntax, no duplicate TYPE per family;
    * every sample line matches the grammar, labels unescape cleanly;
    * histogram ``_bucket`` series are cumulative (non-decreasing in
      ``le`` order), end with ``le="+Inf"``, and agree with ``_count``.

    Returns ``{family_name: ParsedFamily}``.
    """
    families: Dict[str, ParsedFamily] = {}
    for raw_line in text.split("\n"):
        line = raw_line.rstrip("\r")
        if not line.strip():
            continue
        if line.startswith("#"):
            help_match = _HELP_RE.match(line)
            if help_match:
                name, help_text = help_match.groups()
                family = families.setdefault(name, ParsedFamily(name))
                family.help = _unescape(help_text)
                continue
            type_match = _TYPE_RE.match(line)
            if type_match:
                name, kind = type_match.groups()
                family = families.setdefault(name, ParsedFamily(name))
                if family.kind != "untyped":
                    raise ParseError(f"duplicate TYPE for {name}")
                if family.samples:
                    raise ParseError(
                        f"TYPE for {name} after its samples")
                family.kind = kind
                continue
            if line.startswith("# HELP") or line.startswith("# TYPE"):
                raise ParseError(f"malformed comment line {line!r}")
            continue  # free-form comment: permitted by the format
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ParseError(f"malformed sample line {line!r}")
        sample_name, label_body, value_text = match.groups()
        labels = _parse_labels(label_body) if label_body else {}
        value = _parse_number(value_text)
        base = _base_name(sample_name, families)
        family = families.setdefault(base, ParsedFamily(base))
        family.samples.append((sample_name, labels, value))
    for family in families.values():
        if family.kind == "histogram":
            _check_histogram(family)
    return families


def _check_histogram(family: ParsedFamily) -> None:
    """Cumulative-bucket and sum/count invariants for one family."""
    series: Dict[Tuple[Tuple[str, str], ...],
                 List[Tuple[float, float]]] = {}
    counts: Dict[Tuple[Tuple[str, str], ...], float] = {}
    for sample_name, labels, value in family.samples:
        if sample_name == family.name + "_bucket":
            if "le" not in labels:
                raise ParseError(
                    f"{sample_name} without an 'le' label")
            key = tuple(sorted((name, val) for name, val
                               in labels.items() if name != "le"))
            series.setdefault(key, []).append(
                (_parse_number(labels["le"]), value))
        elif sample_name == family.name + "_count":
            key = tuple(sorted(labels.items()))
            counts[key] = value
    for key, buckets in series.items():
        previous_edge = float("-inf")
        previous_count = 0.0
        for edge, cumulative in buckets:
            if edge <= previous_edge:
                raise ParseError(
                    f"{family.name}_bucket le values not increasing")
            if cumulative < previous_count:
                raise ParseError(
                    f"{family.name}_bucket counts not cumulative")
            previous_edge, previous_count = edge, cumulative
        if not buckets or buckets[-1][0] != float("inf"):
            raise ParseError(
                f"{family.name}_bucket series lacks le=\"+Inf\"")
        if key in counts and buckets[-1][1] != counts[key]:
            raise ParseError(
                f"{family.name}: +Inf bucket != _count")
