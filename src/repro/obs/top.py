"""``repro top``: a live one-screen summary of a running scheduler.

Polls the daemon's ``GET /stats.json`` (served by
:class:`~repro.obs.http.ObsHttpServer` when ``repro serve`` runs with
``--metrics-port``) and renders rates, decision-latency percentiles,
queue/lease state, per-site overlap hit rates, and per-job progress —
the terminal twin of a Grafana dashboard, with zero dependencies.

``render_top`` is a pure function of the snapshot dict so tests (and
anything else) can render without a socket; ``fetch_json``/``run_top``
add the polling loop.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["fetch_json", "render_cluster_top", "render_top",
           "run_cluster_top", "run_top"]

_CLEAR = "\x1b[2J\x1b[H"


def fetch_json(url: str, timeout: float = 5.0) -> Dict:
    """GET ``url`` and decode its JSON body."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def _bar(fraction: float, width: int = 20) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def render_top(snapshot: Dict) -> str:
    """The one-screen summary for one ``/stats.json`` payload."""
    latency = snapshot.get("decision_latency", {})
    leases = snapshot.get("leases", {})
    state = "DRAINING" if snapshot.get("draining") else "serving"
    lines: List[str] = [
        f"repro top — {state}, up {snapshot.get('uptime_s', 0.0):.1f} s",
        "",
        f"jobs      : {snapshot.get('jobs_active', 0)} active / "
        f"{snapshot.get('jobs_submitted', 0)} submitted / "
        f"{snapshot.get('jobs_completed', 0)} done",
        f"tasks     : {snapshot.get('tasks_submitted', 0)} submitted, "
        f"{snapshot.get('completions', 0)} done, "
        f"{snapshot.get('queue_depth', 0)} queued "
        f"(peak {snapshot.get('peak_queue_depth', 0)}), "
        f"{snapshot.get('outstanding', 0)} running",
        f"assign    : {snapshot.get('assignments', 0)} total "
        f"({snapshot.get('assignments_per_sec', 0.0):.1f}/s), "
        f"{snapshot.get('requeues', 0)} requeued, "
        f"{snapshot.get('parked_workers', 0)} workers parked",
        f"leases    : {leases.get('active', 0)} active, "
        f"{leases.get('granted', 0)} granted, "
        f"{leases.get('renewals', 0)} renewed, "
        f"{leases.get('expiries', 0)} expired",
        f"decision  : p50 {latency.get('p50_us', 0.0):.0f} us   "
        f"p99 {latency.get('p99_us', 0.0):.0f} us   "
        f"max {latency.get('max_us', 0.0):.0f} us   "
        f"({latency.get('count', 0)} decisions)",
    ]
    for metric, hist in sorted(snapshot.get("scheduler_decision",
                                            {}).items()):
        lines.append(
            f"  kernel [{metric}]: p50 {hist.get('p50_us', 0.0):.0f} us"
            f"   p99 {hist.get('p99_us', 0.0):.0f} us   "
            f"mean {hist.get('mean_us', 0.0):.1f} us")
    admission = snapshot.get("admission", {})
    if admission.get("rejections"):
        lines.append(f"admission : {admission['rejections']} "
                     f"submit(s) rejected over watermark")
    replication = snapshot.get("replication", {})
    if replication.get("granted"):
        lines.append(f"replicas  : {replication['granted']} granted, "
                     f"{replication.get('replica_wins', 0)} won "
                     f"the race")
    steal = snapshot.get("steal", {})
    if steal.get("tasks_stolen") or steal.get("tasks_exported"):
        outcomes = ", ".join(
            f"{count} {outcome}" for outcome, count
            in sorted(steal.get("requests", {}).items()))
        lines.append(f"stealing  : {steal.get('tasks_stolen', 0)} "
                     f"stolen, {steal.get('tasks_exported', 0)} "
                     f"exported"
                     + (f" ({outcomes})" if outcomes else ""))
    tenants = snapshot.get("tenants", {})
    if len(tenants) > 1:
        total = sum(tenants.values()) or 1
        shares = ", ".join(
            f"job {job}: {count} ({count / total:.0%})"
            for job, count in sorted(tenants.items(),
                                     key=lambda kv: int(kv[0])))
        lines.append(f"tenants   : {shares}")
    sites = snapshot.get("sites", {})
    if sites:
        lines.append("")
        lines.append("site  overlap hit rate")
        for site_id, site in sorted(sites.items(),
                                    key=lambda kv: int(kv[0])):
            rate = site.get("overlap_hit_rate", 0.0)
            lines.append(
                f" {site_id:>3}  [{_bar(rate)}] {rate:6.1%} "
                f"({site.get('overlap_hits', 0)}"
                f"/{site.get('assignments', 0)})")
    jobs = snapshot.get("jobs", [])
    if jobs:
        lines.append("")
        lines.append("job   progress")
        for job in jobs:
            total = max(job.get("tasks", 0), 1)
            done = job.get("completed", 0)
            flag = "done" if job.get("done") else (
                f"{job.get('outstanding', 0)} running")
            lines.append(
                f" {job.get('job_id', '?'):>3}  [{_bar(done / total)}] "
                f"{done}/{job.get('tasks', 0)} {flag}")
    return "\n".join(lines)


def _shard_row(label: str, snapshot: Optional[Dict]) -> str:
    if snapshot is None or "error" in (snapshot or {}):
        reason = (snapshot or {}).get("error", "unreachable")
        return f" {label:<28} {reason}"
    latency = snapshot.get("decision_latency", {})
    return (f" {label:<28} "
            f"{snapshot.get('assignments', 0):>7} "
            f"{snapshot.get('completions', 0):>7} "
            f"{snapshot.get('queue_depth', 0):>6} "
            f"{snapshot.get('outstanding', 0):>6} "
            f"{latency.get('p99_us', 0.0):>9.0f}")


def render_cluster_top(per_endpoint: List[Tuple[str, Optional[Dict]]],
                       ) -> str:
    """Multi-endpoint view: per-shard rows plus the aggregate.

    ``per_endpoint`` pairs a label (usually ``host:port``) with that
    endpoint's ``/stats.json`` payload, or None when the fetch
    failed.  A single endpoint whose payload already carries a
    ``shards`` breakdown (a cluster router's aggregated stats) is
    unpacked into per-shard rows instead of being treated as one
    shard.
    """
    from ..cluster.stats import aggregate_stats

    if (len(per_endpoint) == 1 and per_endpoint[0][1] is not None
            and "shards" in per_endpoint[0][1]):
        merged = per_endpoint[0][1]
        rows = [(f"shard {index}", snap) for index, snap
                in sorted(merged["shards"].items(),
                          key=lambda kv: int(kv[0]))]
    else:
        merged = aggregate_stats(
            [(index, snap) for index, (_label, snap)
             in enumerate(per_endpoint)])
        rows = [(label, snap) for label, snap in per_endpoint]
    cluster = merged.get("cluster", {})
    lines = [
        f"repro top — cluster: "
        f"{cluster.get('shards_reporting', 0)}"
        f"/{cluster.get('shard_count', len(rows))} shard(s) reporting",
        "",
        f" {'shard':<28} {'assign':>7} {'done':>7} {'queue':>6} "
        f"{'run':>6} {'p99(us)':>9}",
    ]
    lines.extend(_shard_row(label, snap) for label, snap in rows)
    fetch_errors = merged.get("errors", {})
    if fetch_errors:
        lines.append("")
        lines.append("shard fetch errors:")
        lines.extend(f"  shard {index}: {detail}"
                     for index, detail in sorted(
                         fetch_errors.items(),
                         key=lambda kv: int(kv[0])))
    lines.append("")
    lines.append(render_top(merged))
    return "\n".join(lines)


def run_cluster_top(urls: List[str], interval: float = 2.0,
                    iterations: Optional[int] = None,
                    clear: bool = True,
                    out: Callable[[str], None] = print,
                    fetch: Callable[[str], Dict] = fetch_json,
                    sleep: Callable[[float], None] = time.sleep) -> int:
    """Poll several ``/stats.json`` endpoints, render the merged view.

    Exit code 1 only when *no* endpoint answers on the very first
    poll; a subset of dead shards still renders (marked unreachable).
    """
    shown = 0
    while iterations is None or shown < iterations:
        per_endpoint: List[Tuple[str, Optional[Dict]]] = []
        for url in urls:
            label = url.split("//", 1)[-1].rsplit("/", 1)[0]
            try:
                per_endpoint.append((label, fetch(url)))
            except (urllib.error.URLError, ConnectionError,
                    OSError) as exc:
                per_endpoint.append((label, None))
                out(f"repro top: cannot fetch {url}: {exc}")
        if all(snap is None for _label, snap in per_endpoint):
            if shown == 0:
                return 1
            return 0
        text = render_cluster_top(per_endpoint)
        out(_CLEAR + text if clear else text)
        shown += 1
        if iterations is not None and shown >= iterations:
            break
        try:
            sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            break
    return 0


def run_top(url: str, interval: float = 2.0,
            iterations: Optional[int] = None, clear: bool = True,
            out: Callable[[str], None] = print,
            fetch: Callable[[str], Dict] = fetch_json,
            sleep: Callable[[float], None] = time.sleep) -> int:
    """Poll ``url`` and render until interrupted (or ``iterations``).

    Returns a process exit code: 0 on a clean stop, 1 when the very
    first fetch fails (the server is not there).
    """
    shown = 0
    while iterations is None or shown < iterations:
        try:
            snapshot = fetch(url)
        except (urllib.error.URLError, ConnectionError, OSError) as exc:
            out(f"repro top: cannot fetch {url}: {exc}")
            if shown == 0:
                return 1
            return 0
        text = render_top(snapshot)
        out(_CLEAR + text if clear else text)
        shown += 1
        if iterations is not None and shown >= iterations:
            break
        try:
            sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            break
    return 0
