"""``repro top``: a live one-screen summary of a running scheduler.

Polls the daemon's ``GET /stats.json`` (served by
:class:`~repro.obs.http.ObsHttpServer` when ``repro serve`` runs with
``--metrics-port``) and renders rates, decision-latency percentiles,
queue/lease state, per-site overlap hit rates, and per-job progress —
the terminal twin of a Grafana dashboard, with zero dependencies.

``render_top`` is a pure function of the snapshot dict so tests (and
anything else) can render without a socket; ``fetch_json``/``run_top``
add the polling loop.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Callable, Dict, List, Optional

__all__ = ["fetch_json", "render_top", "run_top"]

_CLEAR = "\x1b[2J\x1b[H"


def fetch_json(url: str, timeout: float = 5.0) -> Dict:
    """GET ``url`` and decode its JSON body."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def _bar(fraction: float, width: int = 20) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def render_top(snapshot: Dict) -> str:
    """The one-screen summary for one ``/stats.json`` payload."""
    latency = snapshot.get("decision_latency", {})
    leases = snapshot.get("leases", {})
    state = "DRAINING" if snapshot.get("draining") else "serving"
    lines: List[str] = [
        f"repro top — {state}, up {snapshot.get('uptime_s', 0.0):.1f} s",
        "",
        f"jobs      : {snapshot.get('jobs_active', 0)} active / "
        f"{snapshot.get('jobs_submitted', 0)} submitted / "
        f"{snapshot.get('jobs_completed', 0)} done",
        f"tasks     : {snapshot.get('tasks_submitted', 0)} submitted, "
        f"{snapshot.get('completions', 0)} done, "
        f"{snapshot.get('queue_depth', 0)} queued "
        f"(peak {snapshot.get('peak_queue_depth', 0)}), "
        f"{snapshot.get('outstanding', 0)} running",
        f"assign    : {snapshot.get('assignments', 0)} total "
        f"({snapshot.get('assignments_per_sec', 0.0):.1f}/s), "
        f"{snapshot.get('requeues', 0)} requeued, "
        f"{snapshot.get('parked_workers', 0)} workers parked",
        f"leases    : {leases.get('active', 0)} active, "
        f"{leases.get('granted', 0)} granted, "
        f"{leases.get('renewals', 0)} renewed, "
        f"{leases.get('expiries', 0)} expired",
        f"decision  : p50 {latency.get('p50_us', 0.0):.0f} us   "
        f"p99 {latency.get('p99_us', 0.0):.0f} us   "
        f"max {latency.get('max_us', 0.0):.0f} us   "
        f"({latency.get('count', 0)} decisions)",
    ]
    for metric, hist in sorted(snapshot.get("scheduler_decision",
                                            {}).items()):
        lines.append(
            f"  kernel [{metric}]: p50 {hist.get('p50_us', 0.0):.0f} us"
            f"   p99 {hist.get('p99_us', 0.0):.0f} us   "
            f"mean {hist.get('mean_us', 0.0):.1f} us")
    sites = snapshot.get("sites", {})
    if sites:
        lines.append("")
        lines.append("site  overlap hit rate")
        for site_id, site in sorted(sites.items(),
                                    key=lambda kv: int(kv[0])):
            rate = site.get("overlap_hit_rate", 0.0)
            lines.append(
                f" {site_id:>3}  [{_bar(rate)}] {rate:6.1%} "
                f"({site.get('overlap_hits', 0)}"
                f"/{site.get('assignments', 0)})")
    jobs = snapshot.get("jobs", [])
    if jobs:
        lines.append("")
        lines.append("job   progress")
        for job in jobs:
            total = max(job.get("tasks", 0), 1)
            done = job.get("completed", 0)
            flag = "done" if job.get("done") else (
                f"{job.get('outstanding', 0)} running")
            lines.append(
                f" {job.get('job_id', '?'):>3}  [{_bar(done / total)}] "
                f"{done}/{job.get('tasks', 0)} {flag}")
    return "\n".join(lines)


def run_top(url: str, interval: float = 2.0,
            iterations: Optional[int] = None, clear: bool = True,
            out: Callable[[str], None] = print,
            fetch: Callable[[str], Dict] = fetch_json,
            sleep: Callable[[float], None] = time.sleep) -> int:
    """Poll ``url`` and render until interrupted (or ``iterations``).

    Returns a process exit code: 0 on a clean stop, 1 when the very
    first fetch fails (the server is not there).
    """
    shown = 0
    while iterations is None or shown < iterations:
        try:
            snapshot = fetch(url)
        except (urllib.error.URLError, ConnectionError, OSError) as exc:
            out(f"repro top: cannot fetch {url}: {exc}")
            if shown == 0:
                return 1
            return 0
        text = render_top(snapshot)
        out(_CLEAR + text if clear else text)
        shown += 1
        if iterations is not None and shown >= iterations:
            break
        try:
            sleep(interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            break
    return 0
