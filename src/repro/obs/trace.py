"""Per-decision trace spans: why was *this* task picked?

:meth:`repro.core.policy_engine.PolicyEngine.choose` exposes an
``on_decision`` hook.  When set, every decision emits one span — a
plain dict carrying the top-*n* candidate scores the ChooseTask(n)
sampler saw (task id, weight under the active metric, overlap, file
count, files still missing), the chosen task, and the runner-up — so
"why did site 3 get task 17 instead of task 9" is answerable after
the fact, from the live ``/trace.json`` endpoint or from a persisted
event log.

The hook is pure observation: it fires after the choice is sampled,
consumes no randomness, and adds zero decisions — the replay
equivalence suite runs with and without it unchanged.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Deque, Dict, List, Optional

__all__ = ["DecisionTracer", "explain_span"]


class DecisionTracer:
    """Bounded ring of decision spans with sequence/time stamps."""

    def __init__(self, capacity: int = 256, clock=time.time):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._spans: Deque[Dict] = deque(maxlen=capacity)
        self._clock = clock
        self._seq = 0

    def record(self, span: Dict) -> Dict:
        """Stamp and buffer one span (the engine-hook entry point)."""
        span = dict(span)
        span["ts"] = round(float(self._clock()), 6)
        span["decision"] = self._seq
        self._seq += 1
        self._spans.append(span)
        return span

    @property
    def recorded(self) -> int:
        """Total spans recorded (ring may hold fewer)."""
        return self._seq

    def __len__(self) -> int:
        return len(self._spans)

    def spans(self, count: Optional[int] = None) -> List[Dict]:
        """The newest ``count`` spans (all buffered if None)."""
        if count is None or count >= len(self._spans):
            return list(self._spans)
        return list(self._spans)[-count:]

    def last(self) -> Optional[Dict]:
        return self._spans[-1] if self._spans else None


def _describe(candidate: Dict) -> str:
    return (f"task {candidate['task_id']} "
            f"(weight={candidate['weight']:.4g}, "
            f"overlap {candidate['overlap']}/{candidate['num_files']}, "
            f"{candidate['files_missing']} to fetch)")


def explain_span(span: Dict) -> str:
    """One human-readable sentence per span, for logs and ``top``."""
    by_id = {candidate["task_id"]: candidate
             for candidate in span["candidates"]}
    chosen = by_id.get(span["chosen"])
    parts = [f"site {span['site']} metric={span['metric']} "
             f"n={span.get('n', '?')}: chose "
             + (_describe(chosen) if chosen else f"task {span['chosen']}")]
    runner_up = span.get("runner_up")
    if runner_up is not None and runner_up in by_id:
        parts.append(f"over {_describe(by_id[runner_up])}")
    return " ".join(parts)
