"""Scenario harness: declarative hostile workloads for the daemon.

A :class:`~repro.scenario.definitions.Scenario` describes tenants
(who submits what, when, with what fair-share weight), worker groups
(how many, how fast, when they join, when they die) and the server
features under test (admission watermark, straggler replication).
:func:`~repro.scenario.runner.run_scenario` drives a live in-process
:class:`~repro.serve.server.SchedulerServer` over real TCP through
the whole story and writes two artifacts per run:

* ``events.jsonl`` — the server-side observability stream, ready for
  :func:`repro.analysis.eventlog.load_timelines`;
* ``summary.json`` — machine-readable results: per-tenant throughput,
  p50/p99 queue wait and turnaround, the lost/duplicate-task audit,
  and pass/fail for the scenario's declared checks.

The built-in catalog (``repro scenario list``) covers flash-crowd
joins, diurnal load curves, worker churn, heterogeneous stragglers,
slow-reader clients and weighted multi-tenant contention.
"""

from .catalog import SCENARIOS, get_scenario
from .definitions import Scenario, TenantSpec, WorkerGroup
from .runner import run_scenario
from .summary import compare_summaries, validate_summary

__all__ = ["SCENARIOS", "Scenario", "TenantSpec", "WorkerGroup",
           "compare_summaries", "get_scenario", "run_scenario",
           "validate_summary"]
