"""The built-in hostile-workload catalog.

Each scenario is deliberately unpleasant in exactly one way, so a
failure points at the machinery it exercises.  ``repro scenario list``
prints this table; ``repro scenario run --all --quick`` is the CI
matrix.
"""

from __future__ import annotations

from typing import Dict

from .definitions import Scenario, TenantSpec, WorkerGroup

__all__ = ["SCENARIOS", "get_scenario"]


def _flash_crowd() -> Scenario:
    return Scenario(
        name="flash-crowd",
        description="A burst of JOB_SUBMIT waves bounces off the "
                    "admission watermark while a late worker stampede "
                    "joins; queue wait must stay bounded.",
        tenants=(TenantSpec(name="burst", tasks=160, flops=1e6,
                            waves=8, wave_interval=0.02),),
        workers=(
            WorkerGroup(name="seed-fleet", count=2, sites=2,
                        flops_per_sec=5e7),
            WorkerGroup(name="crowd", count=10, sites=4,
                        flops_per_sec=5e7, join_at=0.3),
        ),
        admission_watermark=40,
        admission_retry_after=0.05,
        checks=("audit-clean", "all-jobs-complete", "watermark-held",
                "admission-engaged", "p99-queue-wait-bounded"),
        p99_queue_wait_bound=20.0,
    )


def _diurnal() -> Scenario:
    return Scenario(
        name="diurnal",
        description="A load curve: many small submission waves spread "
                    "over the run against a fixed fleet — throughput "
                    "must track the curve without losing tasks.",
        tenants=(TenantSpec(name="daily", tasks=120, flops=1e6,
                            waves=10, wave_interval=0.12),),
        workers=(WorkerGroup(name="steady", count=6, sites=3,
                             flops_per_sec=5e7),),
        checks=("audit-clean", "all-jobs-complete",
                "p99-queue-wait-bounded"),
        p99_queue_wait_bound=20.0,
    )


def _churn() -> Scenario:
    return Scenario(
        name="churn",
        description="Workers die mid-task (connections dropped, "
                    "leases in flight); the stable remainder must "
                    "finish every task exactly once.",
        tenants=(TenantSpec(name="steady", tasks=80, flops=4e6),),
        workers=(
            WorkerGroup(name="doomed", count=4, sites=2,
                        flops_per_sec=2e7, kill_after=0.15),
            WorkerGroup(name="survivors", count=4, sites=2,
                        site_offset=2, flops_per_sec=5e7),
        ),
        lease_ttl=1.0,
        checks=("audit-clean", "all-jobs-complete"),
    )


def _stragglers() -> Scenario:
    return Scenario(
        name="stragglers",
        description="A slow minority drags the job tail; straggler "
                    "replication must cut the tail without ever "
                    "double-counting a completion.",
        tenants=(TenantSpec(name="tail-heavy", tasks=90, flops=1e6),),
        workers=(
            WorkerGroup(name="fast", count=6, sites=3,
                        flops_per_sec=5e7),
            WorkerGroup(name="slow", count=2, sites=1, site_offset=3,
                        flops_per_sec=2e6),
        ),
        replicate_stragglers=True,
        max_replicas=1,
        lease_ttl=5.0,
        checks=("audit-clean", "all-jobs-complete",
                "replication-engaged", "no-double-count"),
    )


def _slow_reader() -> Scenario:
    return Scenario(
        name="slow-reader",
        description="Clients that solicit replies and never read them "
                    "while the fleet works; the server must not let "
                    "one jammed socket stall everyone else.",
        tenants=(TenantSpec(name="steady", tasks=80, flops=1e6),),
        workers=(WorkerGroup(name="fleet", count=4, sites=2,
                             flops_per_sec=5e7),),
        slow_readers=3,
        checks=("audit-clean", "all-jobs-complete"),
    )


def _multi_tenant() -> Scenario:
    return Scenario(
        name="multi-tenant",
        description="Two tenants with 3:1 fair-share weights contend "
                    "for one unscoped fleet; assignment shares must "
                    "match the weights while both queues are live.",
        tenants=(
            TenantSpec(name="gold", tasks=120, flops=1e6, weight=3.0),
            TenantSpec(name="bronze", tasks=120, flops=1e6,
                       weight=1.0),
        ),
        workers=(WorkerGroup(name="shared", count=6, sites=3,
                             flops_per_sec=5e7, join_at=0.15),),
        checks=("audit-clean", "all-jobs-complete", "weighted-fair"),
        fair_share_tolerance=0.15,
    )


def _skewed_tenants() -> Scenario:
    return Scenario(
        name="skewed-tenants",
        description="One heavy tenant swamps its shard while three "
                    "light tenants leave theirs idle; work stealing "
                    "must feed the parked fleets a real share of the "
                    "heavy tenant's tasks.",
        tenants=(
            TenantSpec(name="heavy", tasks=240, flops=2.5e5),
            TenantSpec(name="light-1", tasks=20, flops=2.5e5),
            TenantSpec(name="light-2", tasks=20, flops=2.5e5),
            TenantSpec(name="light-3", tasks=20, flops=2.5e5),
        ),
        workers=(WorkerGroup(name="fleet", count=8, sites=4,
                             flops_per_sec=5e7),),
        shards=4,
        steal_watermark=4,
        checks=("audit-clean", "all-jobs-complete", "steal-share"),
        extra={"steal_share_floor": 0.15},
    )


SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (_flash_crowd(), _diurnal(), _churn(),
                     _stragglers(), _slow_reader(), _multi_tenant(),
                     _skewed_tenants())
}


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(
            f"unknown scenario {name!r}; built-ins: {known}") from None
