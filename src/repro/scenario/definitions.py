"""Declarative scenario model: tenants, worker groups, checks.

Everything here is plain data — the runner owns the clock and the
sockets.  Times are seconds from scenario start; ``scaled`` shrinks a
scenario for ``--quick`` CI runs without changing its shape.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

__all__ = ["Scenario", "TenantSpec", "WorkerGroup", "build_tasks"]

#: ``--quick`` never scales a tenant below this many tasks, so every
#: scenario still exercises its failure mode (a 2-task flash crowd
#: isn't one).
QUICK_TASK_FLOOR = 8


@dataclass(frozen=True)
class TenantSpec:
    """One submitter: a job, when it arrives, and its fair share."""

    name: str
    tasks: int
    #: Files referenced per task; drawn from this tenant's pool.
    files_per_task: int = 3
    #: Size of the tenant's file-id pool (reuse drives cache hits).
    file_pool: int = 60
    #: Simulated compute per task (with the fleet's flops_per_sec).
    flops: float = 1e6
    #: Fair-share weight; None submits without one (legacy tenant).
    weight: Optional[float] = None
    #: Seconds into the run when the first chunk is submitted.
    submit_at: float = 0.0
    #: Split the submission into this many waves...
    waves: int = 1
    #: ...this far apart (a diurnal curve is many small waves).
    wave_interval: float = 0.0


@dataclass(frozen=True)
class WorkerGroup:
    """A homogeneous slice of the fleet."""

    name: str
    count: int
    #: Sites the group spreads over, round-robin.
    sites: int = 2
    #: Site ids start here (lets groups share or avoid caches).
    site_offset: int = 0
    capacity_files: int = 200
    #: Simulated speed; lower = straggler.
    flops_per_sec: float = 5e7
    seconds_per_file: float = 0.0
    #: Seconds into the run when the group connects (flash crowd).
    join_at: float = 0.0
    #: Kill each worker this long after it joined (churn); the
    #: connection drops mid-task, exercising requeue-on-disconnect.
    kill_after: Optional[float] = None
    #: Scope pulls to this tenant's job; None pulls unscoped.
    tenant: Optional[str] = None
    batch: int = 1


@dataclass(frozen=True)
class Scenario:
    """One declarative run: who does what to the scheduler, and the
    checks its summary must pass."""

    name: str
    description: str
    tenants: Tuple[TenantSpec, ...]
    workers: Tuple[WorkerGroup, ...]
    #: Server features under test.
    admission_watermark: Optional[int] = None
    admission_retry_after: float = 0.05
    replicate_stragglers: bool = False
    max_replicas: int = 1
    #: Cluster shape: > 1 boots that many in-process shards (tenants
    #: land on shard ``tenant_index % shards``, unscoped worker
    #: groups pin to shard ``worker_index % shards``).
    shards: int = 1
    #: Arm shard-to-shard work stealing at this pending-queue
    #: watermark (needs ``shards > 1``).
    steal_watermark: Optional[int] = None
    lease_ttl: float = 2.0
    metric: str = "combined"
    n: int = 2
    seed: int = 0
    #: Connections that HELLO, solicit replies and never read them.
    slow_readers: int = 0
    #: Check names from :mod:`repro.scenario.runner` CHECKS.
    checks: Tuple[str, ...] = ("audit-clean", "all-jobs-complete")
    #: ``p99-queue-wait-bounded`` threshold, seconds.
    p99_queue_wait_bound: Optional[float] = None
    #: ``weighted-fair`` tolerance: observed share may differ from the
    #: weighted fair share by at most this (absolute fraction).
    fair_share_tolerance: float = 0.15
    #: Hard wall-clock cap the runner enforces on the whole run.
    timeout: float = 120.0
    extra: Dict[str, object] = field(default_factory=dict)

    def scaled(self, factor: float) -> "Scenario":
        """Shrink task counts (never the fleet) by ``factor``."""
        if factor >= 1.0:
            return self
        tenants = tuple(
            replace(t, tasks=max(QUICK_TASK_FLOOR,
                                 math.ceil(t.tasks * factor)))
            for t in self.tenants)
        watermark = self.admission_watermark
        if watermark is not None:
            total = sum(t.tasks for t in tenants)
            # Keep the watermark binding after the shrink: below the
            # biggest tenant's burst, above a single wave.
            watermark = max(QUICK_TASK_FLOOR // 2,
                            math.ceil(watermark * factor),
                            1)
            watermark = min(watermark, max(1, total - 1))
        return replace(self, tenants=tenants,
                       admission_watermark=watermark)

    def tenant(self, name: str) -> TenantSpec:
        for spec in self.tenants:
            if spec.name == name:
                return spec
        raise KeyError(f"no tenant named {name!r} in {self.name}")


def build_tasks(spec: TenantSpec, seed: int,
                pool_offset: int = 0) -> List[dict]:
    """Deterministic synthetic tasks for one tenant.

    File ids are drawn from the tenant's own pool (shifted by
    ``pool_offset`` so tenants don't share files unless asked to),
    with reuse, so locality-aware scheduling has something to bite on.
    """
    rng = random.Random(f"{seed}:{spec.name}")
    pool = range(pool_offset, pool_offset + spec.file_pool)
    return [{"files": sorted(rng.sample(pool,
                                        min(spec.files_per_task,
                                            spec.file_pool))),
             "flops": spec.flops}
            for _ in range(spec.tasks)]
