"""Drive one scenario against a live in-process daemon.

The runner owns the whole story: it boots a
:class:`~repro.serve.server.SchedulerServer` on an ephemeral port
(with the scenario's admission watermark / replication switches and a
server-side JSONL event log), plays the tenants' submission waves and
the worker groups' joins/kills/stalls against it over real TCP,
samples the pending-queue depth throughout, and folds the event log
into per-tenant latency distributions at the end.

Workers are :class:`~repro.serve.client.WorkerClient` pull loops in a
re-pull wrapper: a ``NO_TASK (idle|job-done)`` between submission
waves means *no work right now*, not *the scenario is over*, so the
wrapper reconnects until the orchestrator flags the run finished and
drains the server.  Killed workers are cancelled mid-task — the
connection drops with leases in flight, which is the point.

Every run writes ``events.jsonl`` and ``summary.json`` into its own
directory and returns the summary dict; ``summary["passed"]`` is the
AND of the scenario's declared checks.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
from typing import Dict, List, Optional

from ..analysis.eventlog import load_timelines
from ..obs.events import EventLog, iter_events
from ..serve import messages
from ..serve.client import SchedulerClient, WorkerClient
from ..serve.codec import JsonLinesCodec
from ..serve.server import SchedulerServer
from ..serve.service import SchedulerService
from .definitions import Scenario, TenantSpec, build_tasks
from .summary import percentile

__all__ = ["run_scenario", "QUICK_FACTOR", "CHECKS"]

#: ``--quick`` task-count multiplier (floored per tenant).
QUICK_FACTOR = 0.15

#: Queue-depth sampling cadence, seconds.
_SAMPLE_INTERVAL = 0.005

#: Wave size cap so one submit can't blow straight past a watermark.
_WAVE_CHUNK = 50


class _Run:
    """Mutable state shared by the orchestrator's coroutines."""

    def __init__(self, scenario: Scenario):
        self.scenario = scenario
        self.finished = asyncio.Event()
        #: tenant name -> job id, set once the first wave lands.
        self.jobs: Dict[str, int] = {}
        self.job_ready: Dict[str, asyncio.Event] = {
            spec.name: asyncio.Event() for spec in scenario.tenants}
        self.submitted: Dict[str, int] = {
            spec.name: 0 for spec in scenario.tenants}
        self.max_queue_depth = 0
        self.depth_curve: List[List[float]] = []
        self.worker_summaries: List[Dict] = []


async def _submit_tenant(run: _Run, host: str, port: int,
                         spec: TenantSpec, index: int) -> None:
    if spec.submit_at > 0:
        await asyncio.sleep(spec.submit_at)
    tasks = build_tasks(spec, run.scenario.seed,
                        pool_offset=index * 100_000)
    waves = max(1, min(spec.waves, len(tasks)))
    per_wave = (len(tasks) + waves - 1) // waves
    async with SchedulerClient(host, port,
                               name=f"tenant-{spec.name}") as client:
        job_id: Optional[int] = None
        for start in range(0, len(tasks), per_wave):
            if start and spec.wave_interval > 0:
                await asyncio.sleep(spec.wave_interval)
            wave = tasks[start:start + per_wave]
            for piece_start in range(0, len(wave), _WAVE_CHUNK):
                piece = wave[piece_start:piece_start + _WAVE_CHUNK]
                handle = await client.submit(
                    piece, weight=spec.weight, max_retries=200,
                    extend_job_id=job_id)
                job_id = handle.job_id
                run.submitted[spec.name] += len(piece)
                if spec.name not in run.jobs:
                    run.jobs[spec.name] = job_id
                    run.job_ready[spec.name].set()


async def _run_worker(run: _Run, host: str, port: int, group,
                      index: int) -> Dict:
    name = f"{group.name}-{index}"
    site = group.site_offset + (index % max(1, group.sites))
    if group.join_at > 0:
        await asyncio.sleep(group.join_at)
    job_id: Optional[int] = None
    if group.tenant is not None:
        await run.job_ready[group.tenant].wait()
        job_id = run.jobs[group.tenant]
    worker = WorkerClient(host, port, worker=name, site=site,
                          capacity_files=group.capacity_files,
                          flops_per_sec=group.flops_per_sec,
                          seconds_per_file=group.seconds_per_file,
                          job_id=job_id, batch=group.batch)

    async def pull_until_finished() -> Dict:
        # ``idle``/``job-done`` between waves only means "right now":
        # reconnect and keep pulling until the orchestrator says the
        # story is over (the final answer is then ``draining``).
        summary: Dict = {"worker": name, "site": site,
                         "tasks_done": 0, "stop_reason": None}
        while True:
            try:
                summary = await worker.run()
            except (ConnectionError, OSError):
                if run.finished.is_set():
                    # The drain completed between our last NO_TASK and
                    # this reconnect; the server is simply gone.
                    summary["stop_reason"] = "drained"
                    summary["tasks_done"] = worker.tasks_done
                    return summary
                raise
            reason = summary.get("stop_reason")
            if reason == "draining" or run.finished.is_set():
                return summary
            await asyncio.sleep(0.02)
            if run.finished.is_set():
                return summary

    task = asyncio.create_task(pull_until_finished())
    if group.kill_after is None:
        return await task
    done, _ = await asyncio.wait({task}, timeout=group.kill_after)
    if done:
        return task.result()
    task.cancel()
    with contextlib.suppress(asyncio.CancelledError, Exception):
        await task
    return {"worker": name, "site": site, "killed": True,
            "tasks_done": worker.tasks_done,
            "files_fetched": worker.files_fetched,
            "rejected_completions": worker.rejected_completions,
            "stop_reason": "killed"}


async def _slow_reader(run: _Run, host: str, port: int,
                       index: int) -> None:
    """Solicit replies and never read them until the run ends."""
    codec = JsonLinesCodec()
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(codec.encode(messages.Hello(
            worker=f"slacker-{index}", site=0, protocol=3)))
        stats_line = codec.encode(messages.StatsRequest())
        # A burst of pipelined requests whose replies pile up in the
        # server's write buffer — never read, the jammed-socket case.
        for _ in range(50):
            writer.write(stats_line)
        await writer.drain()
        await run.finished.wait()
    finally:
        writer.close()
        with contextlib.suppress(Exception):
            await writer.wait_closed()


async def _sample_depth(run: _Run, services: List[SchedulerService],
                        started_at: float) -> None:
    loop = asyncio.get_running_loop()
    while True:
        depth = sum(service.queue_depth for service in services)
        if depth > run.max_queue_depth:
            run.max_queue_depth = depth
        if len(run.depth_curve) < 5000:
            run.depth_curve.append(
                [round(loop.time() - started_at, 4), depth])
        await asyncio.sleep(_SAMPLE_INTERVAL)


def _latency_block(values: List[float]) -> Dict:
    values = sorted(v for v in values if v is not None)
    if not values:
        return {"samples": 0, "p50": None, "p99": None, "max": None}
    return {"samples": len(values),
            "p50": round(percentile(values, 50.0), 6),
            "p99": round(percentile(values, 99.0), 6),
            "max": round(values[-1], 6)}


def _evaluate_checks(run: _Run, summary: Dict) -> List[Dict]:
    scenario = run.scenario
    results = []
    for name in scenario.checks:
        check = CHECKS.get(name)
        if check is None:
            results.append({"name": name, "passed": False,
                            "detail": "unknown check"})
            continue
        passed, detail = check(run, summary)
        results.append({"name": name, "passed": bool(passed),
                        "detail": detail})
    return results


def _check_audit_clean(run: _Run, summary: Dict):
    audit = summary["audit"]
    return (audit["clean"],
            f"lost={audit['lost']} "
            f"double_counted={audit['double_counted']}")


def _check_all_jobs_complete(run: _Run, summary: Dict):
    missing = {name: tenant for name, tenant
               in summary["tenants"].items()
               if tenant["completed"] < tenant["submitted"]}
    if not missing:
        return True, "every tenant's job ran to completion"
    return False, ", ".join(
        f"{name}: {t['completed']}/{t['submitted']}"
        for name, t in sorted(missing.items()))


def _check_watermark_held(run: _Run, summary: Dict):
    watermark = run.scenario.admission_watermark
    if watermark is None:
        return False, "scenario has no admission watermark"
    peak = summary["admission"]["max_queue_depth"]
    return (peak <= watermark,
            f"peak queue depth {peak} vs watermark {watermark}")


def _check_admission_engaged(run: _Run, summary: Dict):
    rejections = summary["admission"]["rejections"]
    return (rejections > 0,
            f"{rejections} JOB_SUBMIT(s) bounced off the watermark")


def _check_p99_queue_wait(run: _Run, summary: Dict):
    bound = run.scenario.p99_queue_wait_bound
    if bound is None:
        return False, "scenario sets no p99 queue-wait bound"
    worst = 0.0
    for tenant in summary["tenants"].values():
        p99 = tenant["queue_wait"]["p99"]
        if p99 is not None:
            worst = max(worst, p99)
    return worst <= bound, f"worst tenant p99 {worst:.3f}s vs {bound}s"


def _check_weighted_fair(run: _Run, summary: Dict):
    shares = summary.get("fair_shares")
    if not shares:
        return False, "no fair-share window measured"
    tolerance = run.scenario.fair_share_tolerance
    worst = max(abs(entry["observed"] - entry["expected"])
                for entry in shares.values())
    detail = ", ".join(
        f"{name}: {entry['observed']:.2f} vs {entry['expected']:.2f}"
        for name, entry in sorted(shares.items()))
    return worst <= tolerance, f"{detail} (tolerance {tolerance})"


def _check_replication_engaged(run: _Run, summary: Dict):
    granted = summary["replication"]["granted"]
    return granted > 0, f"{granted} replica lease(s) granted"


def _check_no_double_count(run: _Run, summary: Dict):
    doubles = summary["audit"]["double_counted"]
    wins = summary["replication"]["replica_wins"]
    return (doubles == 0,
            f"double_counted={doubles} (replica wins: {wins})")


def _check_steal_share(run: _Run, summary: Dict):
    """Work stealing moved a real share of the heavy tenant's tasks.

    The heavy tenant (largest task count) owns one shard; its
    assignments recorded on *other* shards can only come from steal
    imports.  Their share of the tenant's total must clear
    ``extra["steal_share_floor"]``.
    """
    scenario = run.scenario
    floor = scenario.extra.get("steal_share_floor")
    if floor is None:
        return False, "scenario sets no extra['steal_share_floor']"
    heavy_index, heavy = max(enumerate(scenario.tenants),
                             key=lambda pair: pair[1].tasks)
    owner = heavy_index % max(1, scenario.shards)
    job_id = run.jobs.get(heavy.name)
    counts = {index: snap.get("tenants", {}).get(str(job_id), 0)
              for index, snap in summary["stats"].get("shards",
                                                      {}).items()
              if "error" not in snap}
    total = sum(counts.values())
    if not total:
        return False, (f"no assignments recorded for heavy tenant "
                       f"{heavy.name!r}")
    foreign = total - counts.get(str(owner), 0)
    share = foreign / total
    stolen = summary["stats"].get("steal", {}).get("tasks_stolen", 0)
    return (share >= float(floor),
            f"{foreign}/{total} heavy-tenant assignments ({share:.0%}) "
            f"ran off owner shard {owner}; {stolen} task(s) stolen "
            f"cluster-wide (floor {float(floor):.0%})")


CHECKS = {
    "audit-clean": _check_audit_clean,
    "all-jobs-complete": _check_all_jobs_complete,
    "watermark-held": _check_watermark_held,
    "admission-engaged": _check_admission_engaged,
    "p99-queue-wait-bounded": _check_p99_queue_wait,
    "weighted-fair": _check_weighted_fair,
    "replication-engaged": _check_replication_engaged,
    "no-double-count": _check_no_double_count,
    "steal-share": _check_steal_share,
}


def _fair_share_window(events_path: str, jobs: Dict[str, int],
                       submitted: Dict[str, int],
                       weights: Dict[str, Optional[float]]) -> Dict:
    """Observed vs expected assignment shares while all tenants live.

    Measured over the first K primary assignments (K = the smallest
    tenant's task count) so every tenant still has pending work across
    the whole window — afterwards the exhausted tenants' shares
    necessarily drift toward zero.
    """
    if len(jobs) < 2:
        return {}
    window = min(submitted.values())
    by_job = {job_id: name for name, job_id in jobs.items()}
    counts = {name: 0 for name in jobs}
    seen = 0
    for event in iter_events(events_path):
        if event.get("event") != "assign" or event.get("replica"):
            continue
        name = by_job.get(event.get("job_id"))
        if name is None:
            continue
        counts[name] += 1
        seen += 1
        if seen >= window:
            break
    if seen == 0:
        return {}
    total_weight = sum(weights.get(name) or 1.0 for name in jobs)
    return {name: {"observed": counts[name] / seen,
                   "expected": (weights.get(name) or 1.0)
                   / total_weight,
                   "assignments": counts[name]}
            for name in jobs}


async def _run_body(run: _Run, out_dir: str, quick: bool) -> Dict:
    scenario = run.scenario
    events_path = os.path.join(out_dir, "events.jsonl")
    # The log appends by design; a rerun into the same out-dir must
    # start from a clean file or the timeline fold sees both runs.
    if os.path.exists(events_path):
        os.remove(events_path)
    events = EventLog(path=events_path)
    service = SchedulerService(
        metric=scenario.metric, n=scenario.n, seed=scenario.seed,
        name=f"scenario-{scenario.name}",
        lease_ttl=scenario.lease_ttl, events=events,
        admission_watermark=scenario.admission_watermark,
        admission_retry_after=scenario.admission_retry_after,
        replicate_tail=scenario.replicate_stragglers,
        max_replicas=scenario.max_replicas)
    server = SchedulerServer(service, host="127.0.0.1", port=0)
    await server.start()
    serve_task = asyncio.ensure_future(server.serve_until_drained())
    loop = asyncio.get_running_loop()
    started_at = loop.time()
    sampler = asyncio.create_task(
        _sample_depth(run, [service], started_at))
    host, port = server.host, server.port
    spawned: List[asyncio.Task] = []
    statuses: Dict[str, messages.JobStatusReply] = {}
    stats: Dict = {}
    try:
        submitters = [
            asyncio.create_task(_submit_tenant(run, host, port, spec,
                                               index))
            for index, spec in enumerate(scenario.tenants)]
        workers = [
            asyncio.create_task(_run_worker(run, host, port, group,
                                            index))
            for group in scenario.workers
            for index in range(group.count)]
        slackers = [
            asyncio.create_task(_slow_reader(run, host, port, index))
            for index in range(scenario.slow_readers)]
        spawned = submitters + workers + slackers
        await asyncio.gather(*submitters)
        async with SchedulerClient(host, port,
                                   name="orchestrator") as control:
            while True:
                statuses = {
                    name: (await control.call(
                        messages.JobStatusRequest(job_id=job_id)))
                    for name, job_id in run.jobs.items()}
                if all(reply.done for reply in statuses.values()):
                    break
                await asyncio.sleep(0.02)
            stats = await control.stats()
            run.finished.set()
            await control.drain()
        run.worker_summaries = await asyncio.gather(*workers)
        await asyncio.gather(*slackers)
        await serve_task
    finally:
        # Also reached via wait_for cancellation on timeout: reap
        # every coroutine this run spawned so nothing leaks into the
        # caller's loop.
        for task in spawned:
            if not task.done():
                task.cancel()
        if spawned:
            await asyncio.gather(*spawned, return_exceptions=True)
        sampler.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await sampler
        if not serve_task.done():
            serve_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await serve_task
        await server.stop()
        events.close()
    duration = loop.time() - started_at
    return _build_summary(run, statuses, stats, events_path, duration,
                          quick)


async def _run_cluster_body(run: _Run, out_dir: str,
                            quick: bool) -> Dict:
    """The multi-shard twin of :func:`_run_body`.

    Boots ``scenario.shards`` in-process servers sharing ONE event
    log (the cluster-wide exactly-once audit folds it unchanged),
    arms a :class:`~repro.cluster.steal.StealManager` per shard when
    the scenario sets ``steal_watermark``, lands each tenant on shard
    ``tenant_index % shards`` and pins unscoped worker groups to
    shard ``worker_index % shards`` — the deployment shape where a
    drained shard's parked fleet is fed by stealing.
    """
    from ..cluster.stats import aggregate_stats
    from ..cluster.steal import StealManager

    scenario = run.scenario
    events_path = os.path.join(out_dir, "events.jsonl")
    if os.path.exists(events_path):
        os.remove(events_path)
    events = EventLog(path=events_path)
    services: List[SchedulerService] = []
    servers: List[SchedulerServer] = []
    for index in range(scenario.shards):
        service = SchedulerService(
            metric=scenario.metric, n=scenario.n, seed=scenario.seed,
            name=f"scenario-{scenario.name}-shard{index}",
            lease_ttl=scenario.lease_ttl, events=events,
            id_start=index, id_stride=scenario.shards,
            admission_watermark=scenario.admission_watermark,
            admission_retry_after=scenario.admission_retry_after,
            replicate_tail=scenario.replicate_stragglers,
            max_replicas=scenario.max_replicas,
            steal_watermark=scenario.steal_watermark)
        server = SchedulerServer(service, host="127.0.0.1", port=0)
        await server.start()
        services.append(service)
        servers.append(server)
    managers: List[StealManager] = []
    if scenario.steal_watermark is not None:
        for index, server in enumerate(servers):
            peers = {peer: (other.host, other.port)
                     for peer, other in enumerate(servers)
                     if peer != index}
            manager = StealManager(services[index], index,
                                   peers=peers, interval=0.005)
            await manager.start()
            managers.append(manager)
    serve_tasks = [asyncio.ensure_future(server.serve_until_drained())
                   for server in servers]
    loop = asyncio.get_running_loop()
    started_at = loop.time()
    sampler = asyncio.create_task(
        _sample_depth(run, services, started_at))
    tenant_shard = {spec.name: index % scenario.shards
                    for index, spec in enumerate(scenario.tenants)}
    spawned: List[asyncio.Task] = []
    statuses: Dict[str, messages.JobStatusReply] = {}
    stats: Dict = {}
    try:
        submitters = [
            asyncio.create_task(_submit_tenant(
                run, servers[tenant_shard[spec.name]].host,
                servers[tenant_shard[spec.name]].port, spec, index))
            for index, spec in enumerate(scenario.tenants)]
        workers: List[asyncio.Task] = []
        fleet_index = 0
        for group in scenario.workers:
            for index in range(group.count):
                if group.tenant is not None:
                    shard = tenant_shard[group.tenant]
                else:
                    shard = fleet_index % scenario.shards
                workers.append(asyncio.create_task(_run_worker(
                    run, servers[shard].host, servers[shard].port,
                    group, index)))
                fleet_index += 1
        spawned = submitters + workers
        await asyncio.gather(*submitters)
        async with contextlib.AsyncExitStack() as stack:
            controls = [
                await stack.enter_async_context(SchedulerClient(
                    server.host, server.port,
                    name=f"orchestrator-{index}"))
                for index, server in enumerate(servers)]
            while True:
                statuses = {
                    name: (await controls[tenant_shard[name]].call(
                        messages.JobStatusRequest(job_id=job_id)))
                    for name, job_id in run.jobs.items()}
                if all(reply.done for reply in statuses.values()):
                    break
                await asyncio.sleep(0.02)
            stats = aggregate_stats(
                [(index, service.stats_snapshot())
                 for index, service in enumerate(services)],
                shard_count=scenario.shards)
            run.finished.set()
            for control in controls:
                await control.drain()
        run.worker_summaries = await asyncio.gather(*workers)
        await asyncio.gather(*serve_tasks)
    finally:
        for manager in managers:
            await manager.stop()
        for task in spawned:
            if not task.done():
                task.cancel()
        if spawned:
            await asyncio.gather(*spawned, return_exceptions=True)
        sampler.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await sampler
        for serve_task in serve_tasks:
            if not serve_task.done():
                serve_task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await serve_task
        for server in servers:
            await server.stop()
        events.close()
    duration = loop.time() - started_at
    return _build_summary(run, statuses, stats, events_path, duration,
                          quick)


def _build_summary(run: _Run, statuses: Dict, stats: Dict,
                   events_path: str, duration: float,
                   quick: bool) -> Dict:
    scenario = run.scenario
    timelines = load_timelines(events_path)
    double_counted = 0
    completes_per_task: Dict[int, int] = {}
    for event in iter_events(events_path):
        if event.get("event") == "complete":
            task_id = event["task_id"]
            completes_per_task[task_id] = (
                completes_per_task.get(task_id, 0) + 1)
    double_counted = sum(count - 1
                         for count in completes_per_task.values()
                         if count > 1)
    tenants: Dict[str, Dict] = {}
    for spec in scenario.tenants:
        job_id = run.jobs.get(spec.name)
        status = statuses.get(spec.name)
        completed = status.completed if status is not None else 0
        lines = [line for line in timelines.values()
                 if line.job_id == job_id]
        tenants[spec.name] = {
            "job_id": job_id,
            "weight": spec.weight,
            "submitted": run.submitted[spec.name],
            "completed": completed,
            "lost": max(0, run.submitted[spec.name] - completed),
            "throughput_per_sec": (round(completed / duration, 3)
                                   if duration > 0 else None),
            "queue_wait": _latency_block(
                [line.queue_wait for line in lines]),
            "turnaround": _latency_block(
                [line.turnaround for line in lines]),
            "retries": sum(line.retries for line in lines),
        }
    submitted = sum(run.submitted.values())
    completed = sum(entry["completed"] for entry in tenants.values())
    audit = {
        "tasks_submitted": submitted,
        "completed": completed,
        "lost": max(0, submitted - completed),
        "double_counted": double_counted,
    }
    audit["clean"] = audit["lost"] == 0 and double_counted == 0
    killed = sum(1 for s in run.worker_summaries if s.get("killed"))
    summary = {
        "scenario": scenario.name,
        "description": scenario.description,
        "quick": quick,
        "duration": round(duration, 3),
        "tenants": tenants,
        "fleet": {
            "workers": len(run.worker_summaries),
            "killed": killed,
            "tasks_done": sum(s.get("tasks_done", 0)
                              for s in run.worker_summaries),
            "rejected_completions": sum(
                s.get("rejected_completions", 0)
                for s in run.worker_summaries),
            "summaries": run.worker_summaries,
        },
        "admission": {
            "watermark": scenario.admission_watermark,
            "rejections": stats.get("admission", {}).get(
                "rejections", 0),
            "max_queue_depth": run.max_queue_depth,
        },
        "replication": {
            "enabled": scenario.replicate_stragglers,
            "granted": stats.get("replication", {}).get("granted", 0),
            "replica_wins": stats.get("replication", {}).get(
                "replica_wins", 0),
        },
        "audit": audit,
        "depth_curve": run.depth_curve,
        "stats": stats,
        "event_log": events_path,
    }
    if len(run.jobs) > 1:
        summary["fair_shares"] = _fair_share_window(
            events_path, run.jobs, run.submitted,
            {spec.name: spec.weight for spec in scenario.tenants})
    summary["checks"] = _evaluate_checks(run, summary)
    summary["passed"] = all(check["passed"]
                            for check in summary["checks"])
    return summary


async def run_scenario(scenario: Scenario, out_dir: str,
                       quick: bool = False) -> Dict:
    """Run one scenario; writes events.jsonl + summary.json under
    ``out_dir/<scenario-name>/`` and returns the summary dict."""
    if quick:
        scenario = scenario.scaled(QUICK_FACTOR)
    run_dir = os.path.join(out_dir, scenario.name)
    os.makedirs(run_dir, exist_ok=True)
    run = _Run(scenario)
    body = _run_cluster_body if scenario.shards > 1 else _run_body
    try:
        summary = await asyncio.wait_for(
            body(run, run_dir, quick), timeout=scenario.timeout)
    except asyncio.TimeoutError:
        summary = {
            "scenario": scenario.name, "quick": quick,
            "duration": scenario.timeout,
            "tenants": {}, "audit": {"tasks_submitted": 0,
                                     "completed": 0, "lost": 0,
                                     "double_counted": 0,
                                     "clean": False},
            "checks": [{"name": "timed-out", "passed": False,
                        "detail": f"run exceeded "
                                  f"{scenario.timeout:g}s"}],
            "passed": False,
        }
    summary_path = os.path.join(run_dir, "summary.json")
    with open(summary_path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    summary["summary_path"] = summary_path
    return summary
