"""Summary schema validation and run-to-run comparison.

``summary.json`` is the machine-readable contract between a scenario
run and everything downstream (CI gating, ``repro scenario compare``,
dashboards).  :func:`validate_summary` is the schema check CI runs on
every artifact; it returns a list of violations rather than raising,
so a matrix job can report all of them at once.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional

__all__ = ["percentile", "validate_summary", "load_summary",
           "compare_summaries", "format_summary"]


def percentile(ordered: List[float], q: float) -> float:
    """The ``q``-th percentile of an already-sorted sample (linear
    interpolation between closest ranks, the numpy default)."""
    if not ordered:
        raise ValueError("percentile of an empty sample")
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


#: summary.json's required top-level keys and their types.
_TOP_LEVEL = {
    "scenario": str,
    "quick": bool,
    "duration": (int, float),
    "tenants": dict,
    "audit": dict,
    "checks": list,
    "passed": bool,
}

_AUDIT_KEYS = ("tasks_submitted", "completed", "lost",
               "double_counted", "clean")

_LATENCY_KEYS = ("samples", "p50", "p99", "max")


def validate_summary(summary: Dict) -> List[str]:
    """Schema-check one summary dict; returns the violation list
    (empty = valid)."""
    problems: List[str] = []
    if not isinstance(summary, dict):
        return ["summary is not an object"]
    for key, expected in _TOP_LEVEL.items():
        if key not in summary:
            problems.append(f"missing top-level key {key!r}")
        elif not isinstance(summary[key], expected):
            problems.append(
                f"{key!r} should be {expected}, got "
                f"{type(summary[key]).__name__}")
    audit = summary.get("audit")
    if isinstance(audit, dict):
        for key in _AUDIT_KEYS:
            if key not in audit:
                problems.append(f"audit missing {key!r}")
    for name, tenant in (summary.get("tenants") or {}).items():
        if not isinstance(tenant, dict):
            problems.append(f"tenant {name!r} is not an object")
            continue
        for key in ("submitted", "completed", "lost"):
            if not isinstance(tenant.get(key), int):
                problems.append(f"tenant {name!r} needs int {key!r}")
        for block_name in ("queue_wait", "turnaround"):
            block = tenant.get(block_name)
            if not isinstance(block, dict):
                problems.append(
                    f"tenant {name!r} missing {block_name!r} block")
                continue
            for key in _LATENCY_KEYS:
                if key not in block:
                    problems.append(
                        f"tenant {name!r} {block_name} missing "
                        f"{key!r}")
    for index, check in enumerate(summary.get("checks") or []):
        if not isinstance(check, dict):
            problems.append(f"check #{index} is not an object")
            continue
        for key in ("name", "passed", "detail"):
            if key not in check:
                problems.append(f"check #{index} missing {key!r}")
    return problems


def load_summary(path: str) -> Dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _tenant_metric(summary: Dict, tenant: str, block: str,
                   key: str) -> Optional[float]:
    return ((summary.get("tenants") or {}).get(tenant, {})
            .get(block, {}).get(key))


def compare_summaries(baseline: Dict, candidate: Dict) -> str:
    """A human-readable diff of the headline metrics of two runs."""
    lines = [f"baseline : {baseline.get('scenario')} "
             f"({baseline.get('duration')}s, "
             f"passed={baseline.get('passed')})",
             f"candidate: {candidate.get('scenario')} "
             f"({candidate.get('duration')}s, "
             f"passed={candidate.get('passed')})"]
    names = sorted(set(baseline.get("tenants") or {})
                   | set(candidate.get("tenants") or {}))
    header = (f"  {'tenant':<12} {'metric':<18} "
              f"{'baseline':>12} {'candidate':>12} {'delta':>10}")
    lines.append(header)
    for name in names:
        for block, key, label in (
                ("queue_wait", "p50", "queue wait p50"),
                ("queue_wait", "p99", "queue wait p99"),
                ("turnaround", "p99", "turnaround p99")):
            base = _tenant_metric(baseline, name, block, key)
            cand = _tenant_metric(candidate, name, block, key)
            if base is None and cand is None:
                continue
            delta = ("" if base is None or cand is None or base == 0
                     else f"{(cand - base) / base * 100:+.1f}%")
            lines.append(
                f"  {name:<12} {label:<18} "
                f"{_fmt(base):>12} {_fmt(cand):>12} {delta:>10}")
        base_tp = (baseline.get("tenants") or {}).get(name, {}).get(
            "throughput_per_sec")
        cand_tp = (candidate.get("tenants") or {}).get(name, {}).get(
            "throughput_per_sec")
        if base_tp is not None or cand_tp is not None:
            delta = ("" if not base_tp or cand_tp is None
                     else f"{(cand_tp - base_tp) / base_tp * 100:+.1f}%")
            lines.append(
                f"  {name:<12} {'throughput/s':<18} "
                f"{_fmt(base_tp):>12} {_fmt(cand_tp):>12} {delta:>10}")
    return "\n".join(lines)


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return f"{value:.4f}" if value < 100 else f"{value:.1f}"


def format_summary(summary: Dict) -> str:
    """The terminal rendering ``repro scenario run`` prints."""
    lines = [f"scenario {summary['scenario']}: "
             f"{'PASS' if summary.get('passed') else 'FAIL'} "
             f"in {summary.get('duration')}s"
             + (" (quick)" if summary.get("quick") else "")]
    for name, tenant in sorted((summary.get("tenants") or {}).items()):
        wait = tenant.get("queue_wait", {})
        turn = tenant.get("turnaround", {})
        weight = tenant.get("weight")
        lines.append(
            f"  tenant {name:<12} "
            f"{tenant.get('completed')}/{tenant.get('submitted')} done"
            + (f", weight {weight:g}" if weight else "")
            + f", {tenant.get('throughput_per_sec')}/s"
            f", wait p50/p99 {_fmt(wait.get('p50'))}/"
            f"{_fmt(wait.get('p99'))}s"
            f", turnaround p99 {_fmt(turn.get('p99'))}s")
    audit = summary.get("audit", {})
    lines.append(f"  audit: lost={audit.get('lost')} "
                 f"double_counted={audit.get('double_counted')}")
    admission = summary.get("admission") or {}
    if admission.get("watermark") is not None:
        lines.append(
            f"  admission: {admission.get('rejections')} rejection(s),"
            f" peak depth {admission.get('max_queue_depth')} vs "
            f"watermark {admission.get('watermark')}")
    replication = summary.get("replication") or {}
    if replication.get("enabled"):
        lines.append(
            f"  replication: {replication.get('granted')} replica(s) "
            f"granted, {replication.get('replica_wins')} win(s)")
    for check in summary.get("checks", []):
        status = "ok " if check.get("passed") else "FAIL"
        lines.append(f"  [{status}] {check.get('name')}: "
                     f"{check.get('detail')}")
    return "\n".join(lines)
