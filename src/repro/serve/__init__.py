"""Live scheduler service: the paper's policies outside the simulator.

The simulator proves the worker-centric policies win; this package
*runs* them.  A :class:`~repro.serve.server.SchedulerServer` serves a
:class:`~repro.core.policy_engine.PolicyEngine` over a JSON-lines TCP
protocol (:mod:`repro.serve.protocol`); real workers —
:class:`~repro.serve.client.WorkerClient` — pull tasks, report file
deltas from their local caches, and push completions.  The
:mod:`repro.serve.loadgen` module replays ``workload``-generated jobs
against a server at high concurrency, and :mod:`repro.serve.replay`
proves the live engine makes decisions identical to the simulator's by
replaying recorded storage-delta streams.

CLI entry points: ``python -m repro serve`` and ``python -m repro load``.
"""

from .client import WorkerClient
from .loadgen import run_load, serve_and_load
from .server import SchedulerServer
from .service import SchedulerService, ServiceError

__all__ = [
    "SchedulerServer",
    "SchedulerService",
    "ServiceError",
    "WorkerClient",
    "run_load",
    "serve_and_load",
]
