"""Live scheduler service: the paper's policies outside the simulator.

The simulator proves the worker-centric policies win; this package
*runs* them.  A :class:`~repro.serve.server.SchedulerServer` serves a
:class:`~repro.core.policy_engine.PolicyEngine` over a typed TCP
protocol — version 3: every connection opens in JSON lines, ``HELLO``
offers wire codecs, and the server's pick (announced in ``WELCOME``)
can switch the stream to length-prefixed binary frames
(:mod:`repro.serve.codec`).  Typed messages
(:mod:`repro.serve.messages`), version negotiation, lease-based
assignment with heartbeat renewal and a server-side expiry sweeper,
and multi-job tenancy with per-job completion tracking.  Real workers
— :class:`~repro.serve.client.WorkerClient` — pull leased tasks, renew
them while working, report file deltas from their local caches, and
push lease-validated completions; submitters drive jobs through
:class:`~repro.serve.client.SchedulerClient`, whose
:meth:`~repro.serve.client.SchedulerClient.submit` returns a
:class:`~repro.serve.client.JobHandle` with per-job status and
``wait_done()``.  The :mod:`repro.serve.loadgen` module replays
``workload``-generated jobs against a server at high concurrency, and
:mod:`repro.serve.replay` proves the live engine makes decisions
identical to the simulator's by replaying recorded storage-delta
streams.

CLI entry points: ``python -m repro serve`` and ``python -m repro load``.
"""

from .client import (DeltaAggregator, JobHandle, SchedulerClient,
                     WorkerClient)
from .codec import BinaryCodec, Codec, JsonLinesCodec, make_codec
from .loadgen import run_load, serve_and_load
from .protocol import (CodecNegotiation, ProtocolError, codec_offers,
                       negotiate_codec)
from .server import SchedulerServer, install_uvloop
from .service import (Assignment, CompletionResult, SchedulerService,
                      ServiceError)

__all__ = [
    "Assignment",
    "BinaryCodec",
    "Codec",
    "CodecNegotiation",
    "CompletionResult",
    "DeltaAggregator",
    "JobHandle",
    "JsonLinesCodec",
    "ProtocolError",
    "SchedulerClient",
    "SchedulerServer",
    "SchedulerService",
    "ServiceError",
    "WorkerClient",
    "codec_offers",
    "install_uvloop",
    "make_codec",
    "negotiate_codec",
    "run_load",
    "serve_and_load",
]
