"""Protocol-v3 clients: the pull-loop worker and the control surface.

Every client here negotiates its wire codec at ``HELLO`` (the
``codec=`` kwarg: ``"auto"`` offers binary-then-JSON, ``"json"`` /
``"binary"`` pin one) and falls back to v2 JSON lines against servers
that predate negotiation — see :mod:`repro.serve.codec`.

:class:`WorkerClient` is the network twin of the simulator's
``grid.worker.Worker`` pull loop.  It keeps an LRU mirror of its
site's file cache and reports every change to the scheduler as a
``FILE_DELTA`` — evictions first, then insertions, then the references
the task made — which is exactly the event stream the simulator's
:class:`SiteStorage` feeds the overlap index, so the server's
:class:`PolicyEngine` sees the same state it would in simulation.
Every assignment arrives with a lease; while the worker "computes"
(simulated wall-clock delay: ``seconds_per_file`` per missing file for
the fetch, ``task.flops / flops_per_sec`` for the compute) it sends
``HEARTBEAT`` renewals at the cadence the server advertised, so a slow
task is never mistaken for a dead worker.

Two throughput levers sit on top of the plain pull loop:

* **batched pulls** (``batch=k``): ``REQUEST_TASK`` carries
  ``max_tasks`` and the server answers with a ``TASK_BATCH`` of up to
  k leased tasks, amortizing the request round trip.  Within a batch
  the worker *pipelines* its reports — ``TASK_DONE`` lines are written
  without waiting for their ACKs, the batch's cache deltas are merged
  into one ``FILE_DELTA`` (no decision happens between the tasks of a
  batch, so this is decision-identical to per-task reports), and the
  next ``REQUEST_TASK`` piggybacks on the same write burst, so a
  k-task batch costs ~one round trip instead of ~3k.  The
  strict in-order request/response protocol makes this safe: replies
  are consumed in send order before the next blocking call's reply.
  A server that predates ``max_tasks`` ignores the unknown field and
  answers a plain ``TASK``; the worker degrades to single-task pulls.
* **delta aggregation** (:class:`DeltaAggregator`): workers sharing a
  site hand their cache deltas to one site-local aggregator, which
  coalesces overlapping adds/removes against its view of what the
  server already knows and flushes one deduplicated ``FILE_DELTA``
  per interval — cutting the redundant wire traffic co-located
  workers otherwise produce.

:class:`SchedulerClient` is the submitter/operator side:
:meth:`SchedulerClient.submit` sends a job (chunked ``JOB_SUBMIT``
messages extending one ``job_id``) and returns a :class:`JobHandle`
whose :meth:`JobHandle.wait_done` polls per-job completion — multiple
tenants can share one server and each waits only for its own work.
"""

from __future__ import annotations

import asyncio
import contextlib
from collections import OrderedDict, deque
from typing import (Callable, Deque, Dict, Iterable, List, Optional,
                    Set)

from ..obs.events import EventLog
from . import messages, protocol
from .codec import Codec, JsonLinesCodec, make_codec

#: Tasks per JOB_SUBMIT message (keeps lines well under the size cap).
SUBMIT_CHUNK = 200

#: One socket read's worth of pipelined replies.
READ_CHUNK = 64 * 1024


class OverloadedError(RuntimeError):
    """The server kept rejecting ``JOB_SUBMIT`` under admission
    control for longer than the client's retry budget."""


class SiteCacheMirror:
    """Client-side LRU over file ids, reporting what it evicts."""

    def __init__(self, capacity_files: int):
        if capacity_files < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity_files}")
        self.capacity_files = capacity_files
        self._resident: "OrderedDict[int, None]" = OrderedDict()

    def __contains__(self, fid: int) -> bool:
        return fid in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def admit(self, files: List[int]) -> Dict[str, List[int]]:
        """Make ``files`` resident; returns the added/removed delta."""
        added: List[int] = []
        removed: List[int] = []
        for fid in files:
            if fid in self._resident:
                self._resident.move_to_end(fid)
                continue
            while len(self._resident) >= self.capacity_files:
                evicted, _ = self._resident.popitem(last=False)
                removed.append(evicted)
            self._resident[fid] = None
            added.append(fid)
        return {"added": added, "removed": removed}


class _Connection:
    """One strict request/response stream of typed messages.

    Besides the blocking :meth:`call`, the connection supports
    *pipelining*: :meth:`send_nowait` buffers a request without
    reading its reply, and the next :meth:`call` (or an explicit
    :meth:`drain_replies`) consumes the outstanding replies in send
    order before its own.  The server answers every request on a
    connection strictly in order, so reply N is always the answer to
    send N — no tagging needed.

    ``codec`` is the negotiation stance (``"auto"``/``"json"``/
    ``"binary"`` or an exact codec name): :meth:`handshake` offers the
    matching capability list and switches the connection to whatever
    the server (or router) picked.
    """

    def __init__(self, host: str, port: int, codec: str = "auto"):
        self.host = host
        self.port = port
        #: ``HELLO.codecs`` this connection will offer (fails fast on
        #: a bad ``codec`` option).
        self.offers = protocol.codec_offers(codec)
        #: Settled by :meth:`handshake`.
        self.negotiated: Optional[protocol.CodecNegotiation] = None
        self._codec: Codec = JsonLinesCodec(decodes="server")
        #: Replies decoded from the last read but not yet consumed —
        #: one chunked read can surface a whole burst of pipelined
        #: ACKs.
        self._inbox: Deque[messages.ServerMessage] = deque()
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        #: Reply handlers for pipelined sends, FIFO (None = just check
        #: the reply is not an ERROR and drop it).
        self._pending: Deque[Optional[
            Callable[[messages.ServerMessage], None]]] = deque()
        #: Locally buffered outgoing messages: pipelined sends coalesce
        #: into one transport write (one syscall per burst, not per
        #: message) at the next :meth:`call`/:meth:`drain_replies`.
        self._outgoing = bytearray()

    async def open(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port,
            limit=protocol.MAX_MESSAGE_BYTES + 1024)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
            self._reader = None

    def send_nowait(self, message: messages.ClientMessage,
                    on_reply: Optional[Callable[
                        [messages.ServerMessage], None]] = None) -> None:
        """Buffer one request without waiting for its reply.

        The reply is consumed — in send order — by the next
        :meth:`call` or :meth:`drain_replies` and handed to
        ``on_reply`` (an ``ERROR`` reply raises there instead).
        """
        self._outgoing += self._codec.encode(message)
        self._pending.append(on_reply)

    def _flush_outgoing(self) -> None:
        if self._outgoing:
            self._writer.write(bytes(self._outgoing))
            self._outgoing.clear()

    async def drain_replies(self) -> None:
        """Consume the reply of every pipelined send, in order."""
        self._flush_outgoing()
        if self._pending:
            await self._writer.drain()
        while self._pending:
            on_reply = self._pending.popleft()
            reply = await self._read_reply()
            if on_reply is not None:
                on_reply(reply)

    async def _read_reply(self) -> messages.ServerMessage:
        while not self._inbox:
            data = await self._reader.read(READ_CHUNK)
            if not data:
                raise ConnectionError("server closed the connection")
            self._inbox.extend(self._codec.feed(data))
        reply = self._inbox.popleft()
        if isinstance(reply, messages.Error):
            raise RuntimeError(f"server error: {reply.error}")
        return reply

    async def call(self, message: messages.ClientMessage,
                   ) -> messages.ServerMessage:
        """Send one request, read its one reply (``ERROR`` raises).

        Pipelined sends queued before this call go out on the same
        write burst (the piggyback) and their replies are drained
        first, so ordering is preserved.
        """
        self._outgoing += self._codec.encode(message)
        self._flush_outgoing()
        await self._writer.drain()
        await self.drain_replies()
        return await self._read_reply()

    def _adopt(self, name: str) -> None:
        """Switch to the negotiated codec.  Replies can only follow
        the server's own switch (it answers in order), so any bytes
        already buffered belong to the new codec."""
        if name == self._codec.name:
            return
        residue = self._codec.residue()
        self._codec = make_codec(name, decodes="server")
        if residue:
            self._inbox.extend(self._codec.feed(residue))

    async def handshake(self, worker: str, site: int,
                        accept_redirect: Optional[bool] = None,
                        ) -> messages.ServerMessage:
        """Send HELLO (offering this connection's codecs), adopt the
        server's pick, and return the raw reply — ``WELCOME`` from a
        scheduler, ``REDIRECT`` from a cluster router."""
        reply = await self.call(messages.Hello(
            worker=worker, site=site,
            protocol=protocol.PROTOCOL_VERSION,
            accept_redirect=accept_redirect,
            codecs=list(self.offers)))
        chosen = None
        served_protocol = protocol.PROTOCOL_VERSION
        if isinstance(reply, messages.Welcome):
            chosen = reply.codec
            served_protocol = reply.protocol
        elif isinstance(reply, messages.Redirect):
            chosen = reply.codec
        if chosen is not None:
            self._adopt(chosen)
        # A reply without ``codec`` is a pre-v3 server: JSON lines
        # stay in effect for the whole connection.
        self.negotiated = protocol.CodecNegotiation(
            protocol=served_protocol,
            codec=chosen if chosen is not None else protocol.CODEC_JSON)
        return reply

    async def hello(self, worker: str, site: int) -> messages.Welcome:
        reply = await self.handshake(worker, site)
        if not isinstance(reply, messages.Welcome):
            raise RuntimeError(f"expected WELCOME, got {reply}")
        return reply


class _DeltaFold:
    """Accumulates one batch's cache deltas into a single report.

    Ops for one file strictly alternate (the LRU mirror only adds an
    absent file and only evicts a resident one), so folding keeps the
    *net* op per file: an add then a remove — or a remove then a
    re-add — inside the same batch cancels out and never hits the
    wire.  References keep their multiplicity: the engine's r_i
    popularity counts need every occurrence.
    """

    def __init__(self) -> None:
        #: fid -> net op (True = added, False = removed).
        self._net: Dict[int, bool] = {}
        self.referenced: List[int] = []

    def add(self, added: List[int], removed: List[int],
            referenced: Iterable[int]) -> None:
        for fid in removed:
            if self._net.get(fid) is True:
                del self._net[fid]
            else:
                self._net[fid] = False
        for fid in added:
            if self._net.get(fid) is False:
                del self._net[fid]
            else:
                self._net[fid] = True
        self.referenced.extend(referenced)

    def message(self, site: int) -> messages.FileDelta:
        return messages.FileDelta(
            site=site,
            added=sorted(f for f, op in self._net.items() if op),
            removed=sorted(f for f, op in self._net.items() if not op),
            referenced=self.referenced)


class WorkerClient:
    """One pull-loop worker talking to a :class:`SchedulerServer`."""

    def __init__(self, host: str, port: int, worker: str = "w0",
                 site: int = 0, capacity_files: int = 1000,
                 flops_per_sec: float = 0.0,
                 seconds_per_file: float = 0.0,
                 job_id: Optional[int] = None,
                 events: Optional[EventLog] = None,
                 batch: int = 1,
                 delta_sink: Optional["DeltaAggregator"] = None,
                 codec: str = "auto"):
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self.host = host
        self.port = port
        #: Wire-codec stance for the connection (``auto``/``json``/
        #: ``binary``); what actually got negotiated lands in
        #: :attr:`negotiated` after :meth:`run`.
        self.codec = codec
        self.negotiated: Optional[protocol.CodecNegotiation] = None
        self.worker = worker
        self.site = site
        self.cache = SiteCacheMirror(capacity_files)
        self.flops_per_sec = flops_per_sec
        self.seconds_per_file = seconds_per_file
        #: Scope pulls to one job; None pulls from the global queue.
        self.job_id = job_id
        #: Client-side event log: the worker's own view of each
        #: assign/delta/complete, for offline timeline reconstruction.
        self.events = events
        #: Prefetch depth: 1 is the plain v2 single-task pull loop;
        #: k > 1 sends REQUEST_TASK {max_tasks: k} and pipelines the
        #: in-batch reports.
        self.batch = batch
        #: When set, cache deltas go to this site-local aggregator
        #: instead of straight to the wire (see
        #: :class:`DeltaAggregator`).  The local LRU mirror still
        #: runs — only the reporting is coalesced.
        self.delta_sink = delta_sink
        self.tasks_done = 0
        self.files_fetched = 0
        self.heartbeats_sent = 0
        self.rejected_completions = 0
        self.batches_pulled = 0
        self.stop_reason: Optional[str] = None
        self._heartbeat_interval = 0.0
        #: Leases currently held (a batch minus the tasks already
        #: reported done); heartbeats renew all of them at once.
        self._held: Set[int] = set()

    async def run(self) -> Dict:
        """Pull tasks until the server says NO_TASK; returns a summary."""
        conn = _Connection(self.host, self.port, codec=self.codec)
        await conn.open()
        try:
            welcome = await conn.hello(self.worker, self.site)
            self.negotiated = conn.negotiated
            self._heartbeat_interval = welcome.heartbeat_interval
            if self.batch > 1:
                await self._run_batched(conn)
            else:
                while True:
                    reply = await conn.call(
                        messages.RequestTask(job_id=self.job_id))
                    if isinstance(reply, messages.NoTask):
                        self.stop_reason = reply.reason
                        break
                    if not isinstance(reply, messages.TaskAssign):
                        raise RuntimeError(f"expected TASK, got {reply}")
                    await self._execute(conn, reply)
        finally:
            await conn.close()
        return {"worker": self.worker, "site": self.site,
                "job_id": self.job_id,
                "codec": (self.negotiated.codec
                          if self.negotiated is not None else None),
                "batch": self.batch,
                "batches_pulled": self.batches_pulled,
                "tasks_done": self.tasks_done,
                "files_fetched": self.files_fetched,
                "heartbeats_sent": self.heartbeats_sent,
                "rejected_completions": self.rejected_completions,
                "stop_reason": self.stop_reason}

    async def _run_batched(self, conn: _Connection) -> None:
        """The prefetching pull loop: TASK_BATCH in, pipelined
        reports out, next REQUEST_TASK piggybacked on the last
        TASK_DONE write.

        The batch's cache deltas are merged into **one** FILE_DELTA
        sent just before the next REQUEST_TASK.  No scheduling
        decision happens between the tasks of a batch (the next
        decision is the next REQUEST_TASK, which this write precedes),
        so the merge is decision-identical to per-task reports while
        cutting the wire traffic per task almost in half.
        """
        request = messages.RequestTask(job_id=self.job_id,
                                       max_tasks=self.batch)
        reply = await conn.call(request)
        while True:
            if isinstance(reply, messages.NoTask):
                self.stop_reason = reply.reason
                return
            assignments = self._as_assignments(reply)
            self.batches_pulled += 1
            self._held = {a.lease_id for a in assignments}
            fold: Optional[_DeltaFold] = (
                None if self.delta_sink is not None else _DeltaFold())
            try:
                for assignment in assignments:
                    await self._execute(conn, assignment,
                                        pipelined=True, fold=fold)
                    self._held.discard(assignment.lease_id)
            finally:
                self._held = set()
            if fold is not None and fold.referenced:
                conn.send_nowait(fold.message(self.site),
                                 on_reply=self._expect_ack)
            # Completion pipelining: this write shares a burst with
            # the merged delta and the TASK_DONEs above; call()
            # drains the pending ACKs (in order) before reading the
            # batch reply.
            reply = await conn.call(request)

    @staticmethod
    def _as_assignments(reply: messages.ServerMessage,
                        ) -> List[messages.TaskAssign]:
        if isinstance(reply, messages.TaskBatch):
            return reply.assignments()
        if isinstance(reply, messages.TaskAssign):
            # A server predating max_tasks ignored the field and
            # answered a plain TASK: degrade to single-task pulls.
            return [reply]
        raise RuntimeError(f"expected TASK_BATCH or TASK, got {reply}")

    def _emit(self, event: str, **fields) -> None:
        if self.events is not None:
            self.events.emit(event, **fields)

    async def _execute(self, conn: _Connection,
                       assignment: messages.TaskAssign,
                       pipelined: bool = False,
                       fold: Optional["_DeltaFold"] = None) -> None:
        files = assignment.files
        missing = [fid for fid in files if fid not in self.cache]
        self._emit("assign", task_id=assignment.task_id, site=self.site,
                   worker=self.worker, job_id=assignment.job_id,
                   lease_id=assignment.lease_id,
                   files=len(files), missing=len(missing))
        if missing and self.seconds_per_file > 0:
            await self._work(conn, self.seconds_per_file * len(missing),
                             assignment.lease_id)
        delta = self.cache.admit(files)
        self.files_fetched += len(delta["added"])
        if self.delta_sink is not None:
            # Site-local coalescing: the aggregator owns the wire
            # reporting; no per-task FILE_DELTA round trip at all.
            self.delta_sink.report(added=delta["added"],
                                   removed=delta["removed"],
                                   referenced=list(files))
        elif fold is not None:
            # Batched mode: accumulate; _run_batched sends one merged
            # FILE_DELTA before the next REQUEST_TASK.
            fold.add(delta["added"], delta["removed"], files)
        else:
            message = messages.FileDelta(
                site=self.site, added=delta["added"],
                removed=delta["removed"], referenced=list(files))
            if pipelined:
                conn.send_nowait(message, on_reply=self._expect_ack)
            else:
                self._expect_ack(await conn.call(message))
        if delta["added"] or delta["removed"]:
            self._emit("delta", site=self.site,
                       added=len(delta["added"]),
                       removed=len(delta["removed"]),
                       referenced=len(files))
        if assignment.flops and self.flops_per_sec > 0:
            await self._work(conn, assignment.flops / self.flops_per_sec,
                             assignment.lease_id)
        done_message = messages.TaskDone(
            task_id=assignment.task_id, lease_id=assignment.lease_id)
        if pipelined:
            conn.send_nowait(done_message,
                             on_reply=self._on_done_ack(assignment))
        else:
            self._on_done_ack(assignment)(await conn.call(done_message))

    @staticmethod
    def _expect_ack(reply: messages.ServerMessage) -> None:
        if not isinstance(reply, messages.Ack):
            raise RuntimeError(f"expected ACK, got {reply}")

    def _on_done_ack(self, assignment: messages.TaskAssign,
                     ) -> Callable[[messages.ServerMessage], None]:
        def handle(reply: messages.ServerMessage) -> None:
            self._expect_ack(reply)
            if reply.accepted:
                self.tasks_done += 1
                self._emit("complete", task_id=assignment.task_id,
                           worker=self.worker,
                           job_id=assignment.job_id,
                           lease_id=assignment.lease_id)
            else:
                # The lease lapsed (e.g. a long stall) and the task
                # was requeued elsewhere; drop it and keep pulling.
                self.rejected_completions += 1
        return handle

    async def _work(self, conn: _Connection, seconds: float,
                    lease_id: int) -> None:
        """Sleep ``seconds``, renewing lease(s) at heartbeat cadence.

        In batched mode every still-held lease of the batch is
        renewed, not just the running task's — the prefetched tasks
        must not expire while an earlier one computes.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + seconds
        interval = self._heartbeat_interval
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0:
                return
            if interval <= 0 or remaining <= interval:
                await asyncio.sleep(remaining)
                return
            await asyncio.sleep(interval)
            lease_ids = sorted(self._held) or [lease_id]
            reply = await conn.call(
                messages.Heartbeat(lease_ids=lease_ids))
            if not isinstance(reply, messages.HeartbeatAck):
                raise RuntimeError(f"expected HEARTBEAT_ACK, got {reply}")
            self.heartbeats_sent += 1


class DeltaAggregator:
    """Site-local FILE_DELTA coalescer for co-located workers.

    Workers on one site each mirror their own cache, so their delta
    streams overlap: two workers fetching the same popular file both
    report it added, and a file one worker re-fetches right after
    another evicted it crosses the wire twice.  The aggregator sits
    between a site's workers and the server: :meth:`report` folds
    each worker's delta into the *desired* site state (last op per
    file wins), and a periodic flush sends one deduplicated
    ``FILE_DELTA`` carrying only the net changes against what the
    server already believes about the site.

    References are **not** deduplicated: the paper's r_i reference
    counts weight files by how often tasks use them, so multiplicity
    is preserved verbatim — only the add/remove residency churn is
    coalesced.

    One aggregator per site, shared by its workers::

        async with DeltaAggregator(host, port, site=3) as agg:
            fleet = [WorkerClient(..., site=3, delta_sink=agg)
                     for _ in range(4)]
            await asyncio.gather(*(w.run() for w in fleet))

    Exiting the context cancels the flusher and performs a final
    best-effort flush, so nothing reported is ever silently dropped
    while the server is up.
    """

    def __init__(self, host: str, port: int, site: int,
                 flush_interval: float = 0.02,
                 name: Optional[str] = None,
                 events: Optional[EventLog] = None,
                 codec: str = "auto"):
        if flush_interval <= 0:
            raise ValueError(
                f"flush_interval must be > 0, got {flush_interval}")
        self._conn = _Connection(host, port, codec=codec)
        self.site = site
        self.flush_interval = flush_interval
        self.name = name if name is not None else f"delta-agg-s{site}"
        self.events = events
        #: Post-flush residency each file should have (True=resident).
        #: Files whose desired state already matches the server view
        #: never make it onto the wire.
        self._desired: Dict[int, bool] = {}
        #: What the server believes is resident at this site, as far
        #: as this aggregator has told it.
        self._server_resident: Set[int] = set()
        self._referenced: List[int] = []
        self.reports = 0
        self.flushes = 0
        self.duplicates_suppressed = 0
        self._flusher: Optional[asyncio.Task] = None
        self._flush_lock = asyncio.Lock()

    async def __aenter__(self) -> "DeltaAggregator":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def start(self) -> None:
        await self._conn.open()
        await self._conn.hello(self.name, self.site)
        self._flusher = asyncio.get_running_loop().create_task(
            self._flush_loop())

    async def stop(self) -> None:
        if self._flusher is not None:
            self._flusher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._flusher
            self._flusher = None
        # Final flush is best-effort: if the server already went away
        # (e.g. post-drain teardown) there is nobody left to tell.
        with contextlib.suppress(ConnectionError, ConnectionResetError,
                                 BrokenPipeError):
            await self.flush()
        await self._conn.close()

    def report(self, added: List[int], removed: List[int],
               referenced: List[int]) -> None:
        """Fold one worker's cache delta into the pending picture.

        An op that would not change the pending site state (the file
        is already headed where the op puts it) is a duplicate from a
        co-located worker and is suppressed instead of queued.
        """
        self.reports += 1
        for fid in removed:
            if self._pending_state(fid):
                self._desired[fid] = False
            else:
                self.duplicates_suppressed += 1
        for fid in added:
            if self._pending_state(fid):
                self.duplicates_suppressed += 1
            else:
                self._desired[fid] = True
        self._referenced.extend(referenced)

    def _pending_state(self, fid: int) -> bool:
        """Residency of ``fid`` as of the next flush."""
        if fid in self._desired:
            return self._desired[fid]
        return fid in self._server_resident

    async def flush(self) -> None:
        """Send one deduplicated FILE_DELTA with the net changes."""
        async with self._flush_lock:
            desired, self._desired = self._desired, {}
            referenced, self._referenced = self._referenced, []
            added = sorted(fid for fid, want in desired.items()
                           if want and fid not in self._server_resident)
            removed = sorted(fid for fid, want in desired.items()
                             if not want and fid in self._server_resident)
            # Entries matching the server view are add/remove pairs
            # that cancelled out within one window: pure churn the
            # wire never sees.
            self.duplicates_suppressed += (
                len(desired) - len(added) - len(removed))
            # Update the server view before awaiting so reports that
            # land mid-flight dedup against the post-flush state.
            self._server_resident.update(added)
            self._server_resident.difference_update(removed)
            if not added and not removed and not referenced:
                return
            ack = await self._conn.call(messages.FileDelta(
                site=self.site, added=added, removed=removed,
                referenced=referenced))
            if not isinstance(ack, messages.Ack):
                raise RuntimeError(f"expected ACK, got {ack}")
            self.flushes += 1
            if self.events is not None and (added or removed):
                self.events.emit("delta", site=self.site,
                                 added=len(added), removed=len(removed),
                                 referenced=len(referenced),
                                 aggregated=True)

    async def _flush_loop(self) -> None:
        while True:
            await asyncio.sleep(self.flush_interval)
            await self.flush()

    def summary(self) -> Dict:
        return {"site": self.site, "reports": self.reports,
                "flushes": self.flushes,
                "duplicates_suppressed": self.duplicates_suppressed}


class JobHandle:
    """One submitted job, seen through a :class:`SchedulerClient`."""

    def __init__(self, client: "SchedulerClient", job_id: int,
                 task_ids: List[int]):
        self._client = client
        self.job_id = job_id
        self.task_ids = task_ids

    async def status(self) -> Dict:
        """The server's per-job counters, as a plain dict."""
        reply = await self._client.call(
            messages.JobStatusRequest(job_id=self.job_id))
        return {"job_id": reply.job_id, "tasks": reply.tasks,
                "completed": reply.completed, "pending": reply.pending,
                "outstanding": reply.outstanding, "done": reply.done}

    async def wait_done(self, poll_interval: float = 0.05) -> Dict:
        """Poll until every task of the job completed; returns the
        final status.  Wrap in ``asyncio.wait_for`` for a deadline."""
        while True:
            status = await self.status()
            if status["done"]:
                return status
            await asyncio.sleep(poll_interval)


class SchedulerClient:
    """A non-worker connection: submit jobs, track them, read stats.

    Async context manager::

        async with SchedulerClient(host, port) as client:
            handle = await client.submit(job)
            await handle.wait_done()
            print(await client.stats())
    """

    def __init__(self, host: str, port: int, name: str = "control",
                 site: int = 0, codec: str = "auto"):
        self._conn = _Connection(host, port, codec=codec)
        self.name = name
        self.site = site
        self.welcome: Optional[messages.Welcome] = None

    async def __aenter__(self) -> "SchedulerClient":
        await self._conn.open()
        self.welcome = await self._conn.hello(self.name, self.site)
        return self

    @property
    def negotiated(self) -> Optional[protocol.CodecNegotiation]:
        return self._conn.negotiated

    async def __aexit__(self, *exc_info) -> None:
        await self._conn.close()

    async def call(self, message: messages.ClientMessage,
                   ) -> messages.ServerMessage:
        return await self._conn.call(message)

    async def submit(self, job: Iterable,
                     weight: Optional[float] = None,
                     max_retries: int = 20,
                     extend_job_id: Optional[int] = None) -> JobHandle:
        """Submit every task of ``job``; returns its :class:`JobHandle`.

        ``job`` is any iterable of objects with ``files`` and ``flops``
        (a :class:`~repro.grid.job.Job`, a task list), or of
        ``{"files": ..., "flops": ...}`` dicts.  Large jobs are chunked
        over several ``JOB_SUBMIT`` messages extending one job id.

        ``weight`` opts the job into weighted-fair scheduling (sent on
        the opening chunk only).  When the server rejects a chunk with
        ``reason="overloaded"`` (admission control), the chunk is
        retried after the server-suggested ``retry_after`` delay, up to
        ``max_retries`` times before :class:`OverloadedError` is
        raised.  ``extend_job_id`` appends the tasks to an existing
        job instead of opening a new one (how a submitter streams
        waves of work into one job).
        """
        specs = [task if isinstance(task, dict)
                 else {"files": sorted(task.files), "flops": task.flops}
                 for task in job]
        job_id: Optional[int] = extend_job_id
        task_ids: List[int] = []
        for start in range(0, len(specs), SUBMIT_CHUNK):
            chunk = specs[start:start + SUBMIT_CHUNK]
            retries = 0
            while True:
                reply = await self.call(messages.JobSubmit(
                    tasks=chunk, job_id=job_id,
                    weight=weight if job_id is None else None))
                if isinstance(reply, messages.JobAccepted):
                    break
                if (isinstance(reply, messages.Ack)
                        and not reply.accepted
                        and reply.reason == protocol.REASON_OVERLOADED):
                    if retries >= max_retries:
                        raise OverloadedError(
                            f"JOB_SUBMIT rejected {retries + 1} times; "
                            "server stays over its admission watermark")
                    retries += 1
                    delay = reply.retry_after or 0.25
                    await asyncio.sleep(min(delay, 5.0))
                    continue
                raise RuntimeError(f"expected JOB_ACCEPTED, got {reply}")
            job_id = reply.job_id
            task_ids.extend(reply.task_ids)
        if job_id is None:
            raise ValueError("cannot submit an empty job")
        return JobHandle(self, job_id, task_ids)

    async def stats(self) -> Dict:
        reply = await self.call(messages.StatsRequest())
        if not isinstance(reply, messages.StatsReply):
            raise RuntimeError(f"expected STATS, got {reply}")
        return reply.stats

    async def drain(self) -> None:
        await self.call(messages.Drain())
