"""Protocol-v2 clients: the pull-loop worker and the control surface.

:class:`WorkerClient` is the network twin of the simulator's
``grid.worker.Worker`` pull loop.  It keeps an LRU mirror of its
site's file cache and reports every change to the scheduler as a
``FILE_DELTA`` — evictions first, then insertions, then the references
the task made — which is exactly the event stream the simulator's
:class:`SiteStorage` feeds the overlap index, so the server's
:class:`PolicyEngine` sees the same state it would in simulation.
Every assignment arrives with a lease; while the worker "computes"
(simulated wall-clock delay: ``seconds_per_file`` per missing file for
the fetch, ``task.flops / flops_per_sec`` for the compute) it sends
``HEARTBEAT`` renewals at the cadence the server advertised, so a slow
task is never mistaken for a dead worker.

:class:`SchedulerClient` is the submitter/operator side:
:meth:`SchedulerClient.submit` sends a job (chunked ``JOB_SUBMIT``
messages extending one ``job_id``) and returns a :class:`JobHandle`
whose :meth:`JobHandle.wait_done` polls per-job completion — multiple
tenants can share one server and each waits only for its own work.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional

from ..obs.events import EventLog
from . import messages, protocol

#: Tasks per JOB_SUBMIT message (keeps lines well under the size cap).
SUBMIT_CHUNK = 200


class SiteCacheMirror:
    """Client-side LRU over file ids, reporting what it evicts."""

    def __init__(self, capacity_files: int):
        if capacity_files < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity_files}")
        self.capacity_files = capacity_files
        self._resident: "OrderedDict[int, None]" = OrderedDict()

    def __contains__(self, fid: int) -> bool:
        return fid in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def admit(self, files: List[int]) -> Dict[str, List[int]]:
        """Make ``files`` resident; returns the added/removed delta."""
        added: List[int] = []
        removed: List[int] = []
        for fid in files:
            if fid in self._resident:
                self._resident.move_to_end(fid)
                continue
            while len(self._resident) >= self.capacity_files:
                evicted, _ = self._resident.popitem(last=False)
                removed.append(evicted)
            self._resident[fid] = None
            added.append(fid)
        return {"added": added, "removed": removed}


class _Connection:
    """One strict request/response stream of typed messages."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def open(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port,
            limit=protocol.MAX_MESSAGE_BYTES + 1024)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
            self._reader = None

    async def call(self, message: messages.ClientMessage,
                   ) -> messages.ServerMessage:
        """Send one request, read its one reply (``ERROR`` raises)."""
        self._writer.write(message.encode())
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        reply = messages.decode_server(line)
        if isinstance(reply, messages.Error):
            raise RuntimeError(f"server error: {reply.error}")
        return reply

    async def hello(self, worker: str, site: int) -> messages.Welcome:
        reply = await self.call(messages.Hello(
            worker=worker, site=site,
            protocol=protocol.PROTOCOL_VERSION))
        if not isinstance(reply, messages.Welcome):
            raise RuntimeError(f"expected WELCOME, got {reply}")
        return reply


class WorkerClient:
    """One pull-loop worker talking to a :class:`SchedulerServer`."""

    def __init__(self, host: str, port: int, worker: str = "w0",
                 site: int = 0, capacity_files: int = 1000,
                 flops_per_sec: float = 0.0,
                 seconds_per_file: float = 0.0,
                 job_id: Optional[int] = None,
                 events: Optional[EventLog] = None):
        self.host = host
        self.port = port
        self.worker = worker
        self.site = site
        self.cache = SiteCacheMirror(capacity_files)
        self.flops_per_sec = flops_per_sec
        self.seconds_per_file = seconds_per_file
        #: Scope pulls to one job; None pulls from the global queue.
        self.job_id = job_id
        #: Client-side event log: the worker's own view of each
        #: assign/delta/complete, for offline timeline reconstruction.
        self.events = events
        self.tasks_done = 0
        self.files_fetched = 0
        self.heartbeats_sent = 0
        self.rejected_completions = 0
        self.stop_reason: Optional[str] = None
        self._heartbeat_interval = 0.0

    async def run(self) -> Dict:
        """Pull tasks until the server says NO_TASK; returns a summary."""
        conn = _Connection(self.host, self.port)
        await conn.open()
        try:
            welcome = await conn.hello(self.worker, self.site)
            self._heartbeat_interval = welcome.heartbeat_interval
            while True:
                reply = await conn.call(
                    messages.RequestTask(job_id=self.job_id))
                if isinstance(reply, messages.NoTask):
                    self.stop_reason = reply.reason
                    break
                if not isinstance(reply, messages.TaskAssign):
                    raise RuntimeError(f"expected TASK, got {reply}")
                await self._execute(conn, reply)
        finally:
            await conn.close()
        return {"worker": self.worker, "site": self.site,
                "job_id": self.job_id,
                "tasks_done": self.tasks_done,
                "files_fetched": self.files_fetched,
                "heartbeats_sent": self.heartbeats_sent,
                "rejected_completions": self.rejected_completions,
                "stop_reason": self.stop_reason}

    def _emit(self, event: str, **fields) -> None:
        if self.events is not None:
            self.events.emit(event, **fields)

    async def _execute(self, conn: _Connection,
                       assignment: messages.TaskAssign) -> None:
        files = assignment.files
        missing = [fid for fid in files if fid not in self.cache]
        self._emit("assign", task_id=assignment.task_id, site=self.site,
                   worker=self.worker, job_id=assignment.job_id,
                   lease_id=assignment.lease_id,
                   files=len(files), missing=len(missing))
        if missing and self.seconds_per_file > 0:
            await self._work(conn, self.seconds_per_file * len(missing),
                             assignment.lease_id)
        delta = self.cache.admit(files)
        self.files_fetched += len(delta["added"])
        ack = await conn.call(messages.FileDelta(
            site=self.site, added=delta["added"],
            removed=delta["removed"], referenced=list(files)))
        if not isinstance(ack, messages.Ack):
            raise RuntimeError(f"expected ACK, got {ack}")
        if delta["added"] or delta["removed"]:
            self._emit("delta", site=self.site,
                       added=len(delta["added"]),
                       removed=len(delta["removed"]),
                       referenced=len(files))
        if assignment.flops and self.flops_per_sec > 0:
            await self._work(conn, assignment.flops / self.flops_per_sec,
                             assignment.lease_id)
        done = await conn.call(messages.TaskDone(
            task_id=assignment.task_id, lease_id=assignment.lease_id))
        if not isinstance(done, messages.Ack):
            raise RuntimeError(f"expected ACK, got {done}")
        if done.accepted:
            self.tasks_done += 1
            self._emit("complete", task_id=assignment.task_id,
                       worker=self.worker, job_id=assignment.job_id,
                       lease_id=assignment.lease_id)
        else:
            # The lease lapsed (e.g. a long stall) and the task was
            # requeued elsewhere; drop it and pull the next one.
            self.rejected_completions += 1

    async def _work(self, conn: _Connection, seconds: float,
                    lease_id: int) -> None:
        """Sleep ``seconds``, renewing the lease at heartbeat cadence."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + seconds
        interval = self._heartbeat_interval
        while True:
            remaining = deadline - loop.time()
            if remaining <= 0:
                return
            if interval <= 0 or remaining <= interval:
                await asyncio.sleep(remaining)
                return
            await asyncio.sleep(interval)
            await conn.call(messages.Heartbeat(lease_ids=[lease_id]))
            self.heartbeats_sent += 1


class JobHandle:
    """One submitted job, seen through a :class:`SchedulerClient`."""

    def __init__(self, client: "SchedulerClient", job_id: int,
                 task_ids: List[int]):
        self._client = client
        self.job_id = job_id
        self.task_ids = task_ids

    async def status(self) -> Dict:
        """The server's per-job counters, as a plain dict."""
        reply = await self._client.call(
            messages.JobStatusRequest(job_id=self.job_id))
        return {"job_id": reply.job_id, "tasks": reply.tasks,
                "completed": reply.completed, "pending": reply.pending,
                "outstanding": reply.outstanding, "done": reply.done}

    async def wait_done(self, poll_interval: float = 0.05) -> Dict:
        """Poll until every task of the job completed; returns the
        final status.  Wrap in ``asyncio.wait_for`` for a deadline."""
        while True:
            status = await self.status()
            if status["done"]:
                return status
            await asyncio.sleep(poll_interval)


class SchedulerClient:
    """A non-worker connection: submit jobs, track them, read stats.

    Async context manager::

        async with SchedulerClient(host, port) as client:
            handle = await client.submit(job)
            await handle.wait_done()
            print(await client.stats())
    """

    def __init__(self, host: str, port: int, name: str = "control",
                 site: int = 0):
        self._conn = _Connection(host, port)
        self.name = name
        self.site = site
        self.welcome: Optional[messages.Welcome] = None

    async def __aenter__(self) -> "SchedulerClient":
        await self._conn.open()
        self.welcome = await self._conn.hello(self.name, self.site)
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self._conn.close()

    async def call(self, message: messages.ClientMessage,
                   ) -> messages.ServerMessage:
        return await self._conn.call(message)

    async def submit(self, job: Iterable) -> JobHandle:
        """Submit every task of ``job``; returns its :class:`JobHandle`.

        ``job`` is any iterable of objects with ``files`` and ``flops``
        (a :class:`~repro.grid.job.Job`, a task list), or of
        ``{"files": ..., "flops": ...}`` dicts.  Large jobs are chunked
        over several ``JOB_SUBMIT`` messages extending one job id.
        """
        specs = [task if isinstance(task, dict)
                 else {"files": sorted(task.files), "flops": task.flops}
                 for task in job]
        job_id: Optional[int] = None
        task_ids: List[int] = []
        for start in range(0, len(specs), SUBMIT_CHUNK):
            chunk = specs[start:start + SUBMIT_CHUNK]
            reply = await self.call(
                messages.JobSubmit(tasks=chunk, job_id=job_id))
            if not isinstance(reply, messages.JobAccepted):
                raise RuntimeError(f"expected JOB_ACCEPTED, got {reply}")
            job_id = reply.job_id
            task_ids.extend(reply.task_ids)
        if job_id is None:
            raise ValueError("cannot submit an empty job")
        return JobHandle(self, job_id, task_ids)

    async def stats(self) -> Dict:
        reply = await self.call(messages.StatsRequest())
        if not isinstance(reply, messages.StatsReply):
            raise RuntimeError(f"expected STATS, got {reply}")
        return reply.stats

    async def drain(self) -> None:
        await self.call(messages.Drain())
