"""A live worker: pull a task, fetch its files, compute, report.

:class:`WorkerClient` is the network twin of the simulator's
``grid.worker.Worker`` pull loop.  It keeps an LRU mirror of its
site's file cache and reports every change to the scheduler as a
``FILE_DELTA`` — evictions first, then insertions, then the references
the task made — which is exactly the event stream the simulator's
:class:`SiteStorage` feeds the overlap index, so the server's
:class:`PolicyEngine` sees the same state it would in simulation.

"Work" is simulated wall-clock delay (``seconds_per_file`` per missing
file for the fetch, ``task.flops / flops_per_sec`` for the compute),
so load tests can dial realism from zero (pure scheduler stress) up.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from typing import Dict, List, Optional

from . import protocol


class SiteCacheMirror:
    """Client-side LRU over file ids, reporting what it evicts."""

    def __init__(self, capacity_files: int):
        if capacity_files < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity_files}")
        self.capacity_files = capacity_files
        self._resident: "OrderedDict[int, None]" = OrderedDict()

    def __contains__(self, fid: int) -> bool:
        return fid in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def admit(self, files: List[int]) -> Dict[str, List[int]]:
        """Make ``files`` resident; returns the added/removed delta."""
        added: List[int] = []
        removed: List[int] = []
        for fid in files:
            if fid in self._resident:
                self._resident.move_to_end(fid)
                continue
            while len(self._resident) >= self.capacity_files:
                evicted, _ = self._resident.popitem(last=False)
                removed.append(evicted)
            self._resident[fid] = None
            added.append(fid)
        return {"added": added, "removed": removed}


class WorkerClient:
    """One pull-loop worker talking to a :class:`SchedulerServer`."""

    def __init__(self, host: str, port: int, worker: str = "w0",
                 site: int = 0, capacity_files: int = 1000,
                 flops_per_sec: float = 0.0,
                 seconds_per_file: float = 0.0):
        self.host = host
        self.port = port
        self.worker = worker
        self.site = site
        self.cache = SiteCacheMirror(capacity_files)
        self.flops_per_sec = flops_per_sec
        self.seconds_per_file = seconds_per_file
        self.tasks_done = 0
        self.files_fetched = 0
        self.stop_reason: Optional[str] = None

    async def run(self) -> Dict:
        """Pull tasks until the server says NO_TASK; returns a summary."""
        reader, writer = await asyncio.open_connection(
            self.host, self.port,
            limit=protocol.MAX_MESSAGE_BYTES + 1024)
        try:
            welcome = await self._call(reader, writer, {
                "type": protocol.HELLO, "worker": self.worker,
                "site": self.site})
            self._expect(welcome, protocol.WELCOME)
            while True:
                reply = await self._call(
                    reader, writer, {"type": protocol.REQUEST_TASK})
                if reply["type"] == protocol.NO_TASK:
                    self.stop_reason = reply.get("reason", "no task")
                    break
                self._expect(reply, protocol.TASK)
                await self._execute(reader, writer, reply)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        return {"worker": self.worker, "site": self.site,
                "tasks_done": self.tasks_done,
                "files_fetched": self.files_fetched,
                "stop_reason": self.stop_reason}

    async def _execute(self, reader, writer, assignment: Dict) -> None:
        files = assignment["files"]
        missing = [fid for fid in files if fid not in self.cache]
        if missing and self.seconds_per_file > 0:
            await asyncio.sleep(self.seconds_per_file * len(missing))
        delta = self.cache.admit(files)
        self.files_fetched += len(delta["added"])
        ack = await self._call(reader, writer, {
            "type": protocol.FILE_DELTA, "site": self.site,
            "added": delta["added"], "removed": delta["removed"],
            "referenced": list(files)})
        self._expect(ack, protocol.ACK)
        flops = assignment.get("flops", 0.0)
        if flops and self.flops_per_sec > 0:
            await asyncio.sleep(flops / self.flops_per_sec)
        ack = await self._call(reader, writer, {
            "type": protocol.TASK_DONE,
            "task_id": assignment["task_id"]})
        self._expect(ack, protocol.ACK)
        self.tasks_done += 1

    async def _call(self, reader, writer, message: Dict) -> Dict:
        writer.write(protocol.encode(message))
        await writer.drain()
        line = await reader.readline()
        if not line:
            raise ConnectionError(
                f"server closed the connection on {self.worker}")
        return protocol.decode(line)

    @staticmethod
    def _expect(reply: Dict, kind: str) -> None:
        if reply["type"] == protocol.ERROR:
            raise RuntimeError(f"server error: {reply.get('error')}")
        if reply["type"] != kind:
            raise RuntimeError(
                f"expected {kind}, got {reply['type']}: {reply}")
