"""Pluggable wire codecs (protocol v3): JSON lines and binary frames.

One :class:`Codec` instance per connection side, created after (or
while awaiting) ``HELLO`` negotiation:

* ``encode(message) -> bytes`` — one typed
  :class:`~repro.serve.messages.Message` to its wire bytes.
* ``feed(data) -> list[Message]`` — incremental, buffer-based
  decoding: hand it whatever chunk the socket produced and it returns
  every *complete* message, holding partial frames internally until
  the rest arrives.  Feeding byte-at-a-time, split mid-frame, or many
  concatenated frames at once all decode identically.

``feed`` raises :class:`~repro.serve.protocol.ProtocolError` on
malformed input — oversized frames, bad magic/version, unknown types,
truncated bodies.  Framing errors are unrecoverable by design: the
peer answers with a final ``ERROR`` and closes the connection (the
closed-ERROR behavior both codecs share).  If an error is hit after
complete messages were already parsed in the same call, those
messages are returned first and the error re-raises on the next
``feed`` — a pipelined burst never silently loses its leading
messages.

Two implementations:

* :class:`JsonLinesCodec` (``json-2``) — the protocol-v2 wire format
  unchanged: one ``\\n``-terminated UTF-8 JSON object per message.
  Every v2 peer speaks it, so it is the negotiation fallback.
* :class:`BinaryCodec` (``binary-1``) — protocol v3's length-prefixed
  binary frame::

      0      2      3       4          8
      +------+------+-------+----------+------------------+
      | magic|ver   |type id|body len  | body (len bytes) |
      | 2 B  |1 B   |1 B    |uint32 BE |                  |
      +------+------+-------+----------+------------------+

  (``magic = 0xC0DE``, ``ver = 1``; all integers big-endian.)  The
  body is a compact msgpack-style encoding (stdlib only — ``struct``
  plus bytearrays, no third-party dependency): nil/bool/int/float64/
  str/array/map with the standard fixint/fixstr/fixarray/fixmap short
  forms.  The hot-path message types additionally get *specialized*
  struct-packed bodies (``TASK_DONE`` is two ``!Q`` words, an
  accepted ``ACK`` is one byte, a ``TASK_BATCH`` entry is ``!QQQd``
  plus its file-id vector) so the per-message Python cost is a couple
  of C calls instead of a tree walk; the frame's version byte pins
  the schema, and both schemes round-trip bit-identically to the
  dataclass form.

Codecs decode *one direction*: a server feeds with
``decodes="client"`` and gets :class:`ClientMessage` instances, a
client feeds with ``decodes="server"``.  (``STATS`` and
``JOB_STATUS`` are request *and* reply types, so direction cannot be
inferred from the wire.)
"""

from __future__ import annotations

import abc
import struct
from typing import (Any, Callable, ClassVar, Dict, List, Optional,
                    Tuple, Type)

from . import messages
from . import protocol as wire
from .protocol import (CODEC_BINARY, CODEC_JSON, MAX_MESSAGE_BYTES,
                       ProtocolError)

__all__ = [
    "Codec", "JsonLinesCodec", "BinaryCodec", "make_codec",
    "MAGIC", "BINARY_VERSION", "DEFAULT_MAX_FRAME_BYTES",
    "BINARY_TYPE_IDS",
]

#: First two bytes of every binary frame.
MAGIC = 0xC0DE
#: The binary framing/schema version carried in every frame header.
BINARY_VERSION = 1
#: Default cap on one binary frame body; ``BinaryCodec`` raises a
#: clean :class:`ProtocolError` instead of buffering without bound.
DEFAULT_MAX_FRAME_BYTES = 16 << 20

#: Wire type -> frame type id.  Stable: ids are part of ``binary-1``
#: and must never be reassigned (add new ids instead).
BINARY_TYPE_IDS: Dict[str, int] = {
    # client -> server
    wire.HELLO: 1, wire.REQUEST_TASK: 2, wire.TASK_DONE: 3,
    wire.HEARTBEAT: 4, wire.FILE_DELTA: 5, wire.JOB_SUBMIT: 6,
    wire.JOB_STATUS: 7, wire.STATS: 8, wire.DRAIN: 9,
    wire.STEAL_REQUEST: 10, wire.STEAL_ACK: 11, wire.STEAL_DONE: 12,
    # server -> client
    wire.WELCOME: 17, wire.TASK: 18, wire.TASK_BATCH: 19,
    wire.NO_TASK: 20, wire.ACK: 21, wire.HEARTBEAT_ACK: 22,
    wire.JOB_ACCEPTED: 23, wire.REDIRECT: 24, wire.ERROR: 25,
    wire.STEAL_GRANT: 26,
}
_ID_TO_TYPE = {type_id: kind for kind, type_id in BINARY_TYPE_IDS.items()}

_HEADER = struct.Struct("!HBBI")
_HEADER_SIZE = _HEADER.size


class Codec(abc.ABC):
    """One connection side's encoder/decoder (see module docstring)."""

    #: The negotiation name (``HELLO.codecs`` entry / ``WELCOME.codec``).
    name: ClassVar[str] = ""

    def __init__(self, decodes: str = "client"):
        if decodes == "client":
            self._registry: Dict[str, Type[messages.Message]] = \
                messages.ClientMessage.REGISTRY
        elif decodes == "server":
            self._registry = messages.ServerMessage.REGISTRY
        else:
            raise ValueError(
                f"decodes must be 'client' or 'server', got {decodes!r}")
        self.decodes = decodes
        self._buffer = bytearray()

    # -- the codec API ----------------------------------------------------
    @abc.abstractmethod
    def encode(self, message: messages.Message) -> bytes:
        """One typed message -> its wire bytes."""

    @abc.abstractmethod
    def _parse(self) -> List[messages.Message]:
        """Drain every complete message from the internal buffer."""

    def feed(self, data: bytes) -> List[messages.Message]:
        """Buffer ``data``; return every message now complete."""
        if data:
            self._buffer += data
        return self._parse()

    # -- buffer introspection (codec switch / diagnostics) ----------------
    @property
    def buffered(self) -> int:
        """Bytes held waiting for the rest of a frame."""
        return len(self._buffer)

    def residue(self) -> bytes:
        """Drain and return the undecoded tail (used when a connection
        switches codecs after negotiation)."""
        tail = bytes(self._buffer)
        self._buffer.clear()
        return tail

    def _lift(self, payload: Dict[str, Any]) -> messages.Message:
        """Raw wire dict -> typed message of this codec's direction."""
        cls = self._registry.get(payload["type"])
        if cls is None:
            raise ProtocolError(
                f"unknown {self.decodes} message type {payload['type']!r}")
        return cls.from_dict(payload)


class JsonLinesCodec(Codec):
    """The v2 wire format: one JSON object per ``\\n``-ended line."""

    name = CODEC_JSON

    def __init__(self, decodes: str = "client",
                 max_message_bytes: int = MAX_MESSAGE_BYTES):
        super().__init__(decodes)
        self.max_message_bytes = max_message_bytes

    def encode(self, message: messages.Message) -> bytes:
        return wire.encode_line(message.to_dict())

    def _parse(self) -> List[messages.Message]:
        buffer = self._buffer
        out: List[messages.Message] = []
        start = 0
        try:
            while True:
                newline = buffer.find(b"\n", start)
                if newline < 0:
                    if len(buffer) - start > self.max_message_bytes:
                        raise ProtocolError(
                            f"line exceeds {self.max_message_bytes} "
                            f"bytes without a newline")
                    break
                line = bytes(buffer[start:newline])
                if line.strip():
                    out.append(self._lift(wire.decode_line(line)))
                start = newline + 1
        except ProtocolError:
            if not out:
                raise
            # Deliver what parsed cleanly; the bad line stays at the
            # buffer front so the next feed() re-raises.
        del buffer[:start]
        return out


# -- msgpack-style generic body ----------------------------------------------

_F64 = struct.Struct("!d")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_U64 = struct.Struct("!Q")
_I64 = struct.Struct("!q")

_MAX_U64 = (1 << 64) - 1
_MIN_I64 = -(1 << 63)


def _pack_obj(value: Any, out: bytearray) -> None:
    """Append ``value`` (JSON-native) in msgpack-style encoding."""
    if value is None:
        out.append(0xC0)
    elif value is True:
        out.append(0xC3)
    elif value is False:
        out.append(0xC2)
    elif isinstance(value, int):
        if 0 <= value < 0x80:
            out.append(value)
        elif -32 <= value < 0:
            out.append(value & 0xFF)
        elif 0 <= value <= _MAX_U64:
            if value <= 0xFF:
                out.append(0xCC)
                out.append(value)
            elif value <= 0xFFFF:
                out.append(0xCD)
                out += _U16.pack(value)
            elif value <= 0xFFFFFFFF:
                out.append(0xCE)
                out += _U32.pack(value)
            else:
                out.append(0xCF)
                out += _U64.pack(value)
        elif value >= _MIN_I64:
            out.append(0xD3)
            out += _I64.pack(value)
        else:
            raise ProtocolError(
                f"int {value} outside 64-bit range of the binary codec")
    elif isinstance(value, float):
        out.append(0xCB)
        out += _F64.pack(value)
    elif isinstance(value, str):
        data = value.encode("utf-8")
        size = len(data)
        if size < 32:
            out.append(0xA0 | size)
        elif size <= 0xFF:
            out.append(0xD9)
            out.append(size)
        elif size <= 0xFFFF:
            out.append(0xDA)
            out += _U16.pack(size)
        else:
            out.append(0xDB)
            out += _U32.pack(size)
        out += data
    elif isinstance(value, (list, tuple)):
        size = len(value)
        if size < 16:
            out.append(0x90 | size)
        elif size <= 0xFFFF:
            out.append(0xDC)
            out += _U16.pack(size)
        else:
            out.append(0xDD)
            out += _U32.pack(size)
        for item in value:
            _pack_obj(item, out)
    elif isinstance(value, dict):
        size = len(value)
        if size < 16:
            out.append(0x80 | size)
        elif size <= 0xFFFF:
            out.append(0xDE)
            out += _U16.pack(size)
        else:
            out.append(0xDF)
            out += _U32.pack(size)
        for key, item in value.items():
            if not isinstance(key, str):
                raise ProtocolError(
                    f"binary map keys must be strings, got {key!r}")
            _pack_obj(key, out)
            _pack_obj(item, out)
    else:
        raise ProtocolError(
            f"cannot binary-encode a {type(value).__name__}")


def _unpack_obj(buf: bytes, pos: int) -> Tuple[Any, int]:
    """Decode one msgpack-style value at ``pos``; returns (value, end)."""
    tag = buf[pos]
    pos += 1
    if tag < 0x80:                      # positive fixint
        return tag, pos
    if tag >= 0xE0:                     # negative fixint
        return tag - 0x100, pos
    if tag <= 0x8F:                     # fixmap
        return _unpack_map(buf, pos, tag & 0x0F)
    if tag <= 0x9F:                     # fixarray
        return _unpack_array(buf, pos, tag & 0x0F)
    if tag <= 0xBF:                     # fixstr
        size = tag & 0x1F
        return _unpack_str(buf, pos, size)
    if tag == 0xC0:
        return None, pos
    if tag == 0xC2:
        return False, pos
    if tag == 0xC3:
        return True, pos
    if tag == 0xCB:
        return _F64.unpack_from(buf, pos)[0], pos + 8
    if tag == 0xCC:
        return buf[pos], pos + 1
    if tag == 0xCD:
        return _U16.unpack_from(buf, pos)[0], pos + 2
    if tag == 0xCE:
        return _U32.unpack_from(buf, pos)[0], pos + 4
    if tag == 0xCF:
        return _U64.unpack_from(buf, pos)[0], pos + 8
    if tag == 0xD3:
        return _I64.unpack_from(buf, pos)[0], pos + 8
    if tag == 0xD9:
        return _unpack_str(buf, pos + 1, buf[pos])
    if tag == 0xDA:
        return _unpack_str(buf, pos + 2, _U16.unpack_from(buf, pos)[0])
    if tag == 0xDB:
        return _unpack_str(buf, pos + 4, _U32.unpack_from(buf, pos)[0])
    if tag == 0xDC:
        return _unpack_array(buf, pos + 2,
                             _U16.unpack_from(buf, pos)[0])
    if tag == 0xDD:
        return _unpack_array(buf, pos + 4,
                             _U32.unpack_from(buf, pos)[0])
    if tag == 0xDE:
        return _unpack_map(buf, pos + 2, _U16.unpack_from(buf, pos)[0])
    if tag == 0xDF:
        return _unpack_map(buf, pos + 4, _U32.unpack_from(buf, pos)[0])
    raise ProtocolError(f"unsupported binary tag 0x{tag:02x}")


def _unpack_str(buf: bytes, pos: int, size: int) -> Tuple[str, int]:
    end = pos + size
    if end > len(buf):
        raise ProtocolError("truncated string in binary body")
    try:
        return buf[pos:end].decode("utf-8"), end
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"bad UTF-8 in binary body: {exc}") from exc


def _unpack_array(buf: bytes, pos: int, size: int) -> Tuple[list, int]:
    out = []
    for _ in range(size):
        value, pos = _unpack_obj(buf, pos)
        out.append(value)
    return out, pos


def _unpack_map(buf: bytes, pos: int, size: int) -> Tuple[dict, int]:
    out = {}
    for _ in range(size):
        key, pos = _unpack_obj(buf, pos)
        if not isinstance(key, str):
            raise ProtocolError(
                f"binary map keys must be strings, got {key!r}")
        value, pos = _unpack_obj(buf, pos)
        out[key] = value
    return out, pos


# -- specialized struct-packed bodies (hot path) ------------------------------
#
# Field types are guaranteed by the struct formats themselves (an
# ``!Q`` word *is* a non-negative int), so these decoders skip the
# dict round trip and the per-field validate() the generic path pays.
# Every schema below is pinned by BINARY_VERSION.

_Q = struct.Struct("!Q")
_QQ = struct.Struct("!QQ")
_TASK_FIXED = struct.Struct("!QQQdd")    # task, lease, job, flops, ttl
_ENTRY_FIXED = struct.Struct("!QQQd")    # task, lease, job, flops
_STATUS_FIXED = struct.Struct("!QQQQQB")  # job,tasks,done,pend,out,flag


# Precompiled "!{n}Q" structs for the short vectors that dominate the
# hot path (a task's files, a heartbeat's leases); longer vectors fall
# back to building the format string per call.
_ID_STRUCTS = tuple(struct.Struct("!%dQ" % n) for n in range(1, 17))


def _pack_ids(values: List[int], out: bytearray) -> None:
    count = len(values)
    out += _U32.pack(count)
    if not count:
        return
    if count <= 16:
        out += _ID_STRUCTS[count - 1].pack(*values)
    else:
        out += struct.pack("!%dQ" % count, *values)


def _unpack_ids(body: bytes, pos: int) -> Tuple[List[int], int]:
    (count,) = _U32.unpack_from(body, pos)
    pos += 4
    if not count:
        return [], pos
    end = pos + 8 * count
    if end > len(body):
        raise ProtocolError("truncated id vector in binary body")
    if count <= 16:
        return list(_ID_STRUCTS[count - 1].unpack_from(body, pos)), end
    return list(struct.unpack_from("!%dQ" % count, body, pos)), end


def _expect_end(body: bytes, pos: int, kind: str) -> None:
    if pos != len(body):
        raise ProtocolError(
            f"{kind} frame has {len(body) - pos} trailing byte(s)")


def _pack_request_task(m: messages.RequestTask) -> bytes:
    flags = ((1 if m.job_id is not None else 0)
             | (2 if m.max_tasks is not None else 0))
    out = bytearray((flags,))
    if m.job_id is not None:
        out += _Q.pack(m.job_id)
    if m.max_tasks is not None:
        out += _Q.pack(m.max_tasks)
    return bytes(out)


def _unpack_request_task(body: bytes) -> messages.RequestTask:
    flags = body[0]
    pos = 1
    job_id = max_tasks = None
    if flags & 1:
        (job_id,) = _Q.unpack_from(body, pos)
        pos += 8
    if flags & 2:
        (max_tasks,) = _Q.unpack_from(body, pos)
        pos += 8
        if max_tasks < 1:
            raise ProtocolError("REQUEST_TASK.max_tasks must be >= 1")
    _expect_end(body, pos, wire.REQUEST_TASK)
    return messages.RequestTask(job_id=job_id, max_tasks=max_tasks)


def _pack_task_done(m: messages.TaskDone) -> bytes:
    return _QQ.pack(m.task_id, m.lease_id)


def _unpack_task_done(body: bytes) -> messages.TaskDone:
    task_id, lease_id = _QQ.unpack(body)
    return messages.TaskDone(task_id=task_id, lease_id=lease_id)


def _pack_heartbeat(m: messages.Heartbeat) -> bytes:
    if m.lease_ids is None:
        return b"\x00"
    out = bytearray((1,))
    _pack_ids(m.lease_ids, out)
    return bytes(out)


def _unpack_heartbeat(body: bytes) -> messages.Heartbeat:
    if body[0] == 0:
        _expect_end(body, 1, wire.HEARTBEAT)
        return messages.Heartbeat()
    lease_ids, pos = _unpack_ids(body, 1)
    _expect_end(body, pos, wire.HEARTBEAT)
    return messages.Heartbeat(lease_ids=lease_ids)


def _pack_file_delta(m: messages.FileDelta) -> bytes:
    out = bytearray((1 if m.site is not None else 0,))
    if m.site is not None:
        out += _Q.pack(m.site)
    _pack_ids(m.added, out)
    _pack_ids(m.removed, out)
    _pack_ids(m.referenced, out)
    return bytes(out)


def _unpack_file_delta(body: bytes) -> messages.FileDelta:
    pos = 1
    site = None
    if body[0] & 1:
        (site,) = _Q.unpack_from(body, pos)
        pos += 8
    added, pos = _unpack_ids(body, pos)
    removed, pos = _unpack_ids(body, pos)
    referenced, pos = _unpack_ids(body, pos)
    _expect_end(body, pos, wire.FILE_DELTA)
    return messages.FileDelta(added=added, removed=removed,
                              referenced=referenced, site=site)


def _pack_status_request(m: messages.JobStatusRequest) -> bytes:
    return _Q.pack(m.job_id)


def _unpack_status_request(body: bytes) -> messages.JobStatusRequest:
    return messages.JobStatusRequest(job_id=_Q.unpack(body)[0])


def _pack_status_reply(m: messages.JobStatusReply) -> bytes:
    return _STATUS_FIXED.pack(m.job_id, m.tasks, m.completed,
                              m.pending, m.outstanding,
                              1 if m.done else 0)


def _unpack_status_reply(body: bytes) -> messages.JobStatusReply:
    job_id, tasks, completed, pending, outstanding, done = \
        _STATUS_FIXED.unpack(body)
    return messages.JobStatusReply(
        job_id=job_id, tasks=tasks, completed=completed,
        pending=pending, outstanding=outstanding, done=bool(done))


def _pack_task_assign(m: messages.TaskAssign) -> bytes:
    out = bytearray(_TASK_FIXED.pack(m.task_id, m.lease_id, m.job_id,
                                     m.flops, m.lease_ttl))
    _pack_ids(m.files, out)
    return bytes(out)


def _unpack_task_assign(body: bytes) -> messages.TaskAssign:
    task_id, lease_id, job_id, flops, lease_ttl = \
        _TASK_FIXED.unpack_from(body, 0)
    files, pos = _unpack_ids(body, _TASK_FIXED.size)
    _expect_end(body, pos, wire.TASK)
    return messages.TaskAssign(task_id=task_id, files=files,
                               flops=flops, lease_id=lease_id,
                               lease_ttl=lease_ttl, job_id=job_id)


def _pack_task_batch(m: messages.TaskBatch) -> bytes:
    out = bytearray(_F64.pack(m.lease_ttl))
    out += _U32.pack(len(m.tasks))
    pack_entry = _ENTRY_FIXED.pack
    for entry in m.tasks:
        out += pack_entry(entry["task_id"], entry["lease_id"],
                          entry["job_id"], entry["flops"])
        _pack_ids(entry["files"], out)
    return bytes(out)


def _unpack_task_batch(body: bytes) -> messages.TaskBatch:
    (lease_ttl,) = _F64.unpack_from(body, 0)
    (count,) = _U32.unpack_from(body, 8)
    if count < 1:
        raise ProtocolError("TASK_BATCH.tasks must be a non-empty list")
    pos = 12
    entries = []
    for _ in range(count):
        task_id, lease_id, job_id, flops = \
            _ENTRY_FIXED.unpack_from(body, pos)
        files, pos = _unpack_ids(body, pos + _ENTRY_FIXED.size)
        entries.append({"task_id": task_id, "files": files,
                        "flops": flops, "lease_id": lease_id,
                        "job_id": job_id})
    _expect_end(body, pos, wire.TASK_BATCH)
    return messages.TaskBatch(tasks=entries, lease_ttl=lease_ttl)


_REASON_IDS = {wire.REASON_JOB_DONE: 0, wire.REASON_IDLE: 1,
               wire.REASON_DRAINING: 2}
_REASON_NAMES = {v: k for k, v in _REASON_IDS.items()}


def _pack_no_task(m: messages.NoTask) -> bytes:
    reason = _REASON_IDS.get(m.reason)
    if reason is None:
        raise ProtocolError(f"NO_TASK.reason {m.reason!r} unknown")
    return bytes((reason,))


# Decoded replies with no per-message fields are shared singletons:
# every message class is a frozen dataclass (immutable, compares by
# value), so identity is unobservable and construction cost vanishes.
_NO_TASK_SINGLETONS = {
    reason_id: messages.NoTask(reason=reason)
    for reason_id, reason in _REASON_NAMES.items()
}


def _unpack_no_task(body: bytes) -> messages.NoTask:
    _expect_end(body, 1, wire.NO_TASK)
    reply = _NO_TASK_SINGLETONS.get(body[0])
    if reply is None:
        raise ProtocolError(f"NO_TASK reason id {body[0]} unknown")
    return reply


_ACK_PLAIN = b"\x01"


def _pack_ack(m: messages.Ack) -> bytes:
    if (m.reason is None and m.draining is None
            and m.retry_after is None):
        return _ACK_PLAIN if m.accepted else b"\x00"
    flags = 1 if m.accepted else 0
    out = bytearray()
    if m.reason is not None:
        flags |= 2
    if m.draining is not None:
        flags |= 4
        if m.draining:
            flags |= 8
    if m.retry_after is not None:
        flags |= 16
    out.append(flags)
    if m.reason is not None:
        data = m.reason.encode("utf-8")
        out += _U16.pack(len(data))
        out += data
    if m.retry_after is not None:
        out += _F64.pack(m.retry_after)
    return bytes(out)


_ACK_ACCEPTED = messages.Ack()  # frozen; shared by every plain ack


def _unpack_ack(body: bytes) -> messages.Ack:
    if body == _ACK_PLAIN:
        return _ACK_ACCEPTED
    flags = body[0]
    pos = 1
    reason = None
    if flags & 2:
        (size,) = _U16.unpack_from(body, pos)
        reason, pos = _unpack_str(body, pos + 2, size)
    draining = bool(flags & 8) if flags & 4 else None
    retry_after = None
    if flags & 16:
        (retry_after,) = _F64.unpack_from(body, pos)
        pos += 8
    _expect_end(body, pos, wire.ACK)
    return messages.Ack(accepted=bool(flags & 1), reason=reason,
                        draining=draining, retry_after=retry_after)


def _pack_heartbeat_ack(m: messages.HeartbeatAck) -> bytes:
    out = bytearray()
    _pack_ids(m.renewed, out)
    _pack_ids(m.expired, out)
    return bytes(out)


def _unpack_heartbeat_ack(body: bytes) -> messages.HeartbeatAck:
    renewed, pos = _unpack_ids(body, 0)
    expired, pos = _unpack_ids(body, pos)
    _expect_end(body, pos, wire.HEARTBEAT_ACK)
    return messages.HeartbeatAck(renewed=renewed, expired=expired)


def _pack_job_accepted(m: messages.JobAccepted) -> bytes:
    out = bytearray(_Q.pack(m.job_id))
    _pack_ids(m.task_ids, out)
    return bytes(out)


def _unpack_job_accepted(body: bytes) -> messages.JobAccepted:
    (job_id,) = _Q.unpack_from(body, 0)
    task_ids, pos = _unpack_ids(body, 8)
    _expect_end(body, pos, wire.JOB_ACCEPTED)
    return messages.JobAccepted(job_id=job_id, task_ids=task_ids)


def _pack_empty(_m: messages.Message) -> bytes:
    return b""


#: Concrete message class -> specialized body packer.
_SPECIAL_PACK: Dict[type, Callable[[Any], bytes]] = {
    messages.RequestTask: _pack_request_task,
    messages.TaskDone: _pack_task_done,
    messages.Heartbeat: _pack_heartbeat,
    messages.FileDelta: _pack_file_delta,
    messages.JobStatusRequest: _pack_status_request,
    messages.StatsRequest: _pack_empty,
    messages.Drain: _pack_empty,
    messages.TaskAssign: _pack_task_assign,
    messages.TaskBatch: _pack_task_batch,
    messages.NoTask: _pack_no_task,
    messages.Ack: _pack_ack,
    messages.HeartbeatAck: _pack_heartbeat_ack,
    messages.JobAccepted: _pack_job_accepted,
    messages.JobStatusReply: _pack_status_reply,
}

_STATS_REQUEST = messages.StatsRequest()  # frozen, field-less
_DRAIN = messages.Drain()                 # frozen, field-less

#: Per-direction wire type -> specialized body decoder.  ``STATS``
#: and ``JOB_STATUS`` mean different classes per direction, which is
#: why the tables are split.
_SPECIAL_UNPACK_CLIENT: Dict[str, Callable[[bytes], messages.Message]] = {
    wire.REQUEST_TASK: _unpack_request_task,
    wire.TASK_DONE: _unpack_task_done,
    wire.HEARTBEAT: _unpack_heartbeat,
    wire.FILE_DELTA: _unpack_file_delta,
    wire.JOB_STATUS: _unpack_status_request,
    wire.STATS: lambda body: _STATS_REQUEST,
    wire.DRAIN: lambda body: _DRAIN,
}
_SPECIAL_UNPACK_SERVER: Dict[str, Callable[[bytes], messages.Message]] = {
    wire.TASK: _unpack_task_assign,
    wire.TASK_BATCH: _unpack_task_batch,
    wire.NO_TASK: _unpack_no_task,
    wire.ACK: _unpack_ack,
    wire.HEARTBEAT_ACK: _unpack_heartbeat_ack,
    wire.JOB_ACCEPTED: _unpack_job_accepted,
    wire.JOB_STATUS: _unpack_status_reply,
}


class BinaryCodec(Codec):
    """Protocol v3's length-prefixed binary frames (``binary-1``)."""

    name = CODEC_BINARY

    #: type(message) -> (type id, specialized packer or None), filled
    #: lazily so one dict hit covers both encode-side lookups.
    _ENCODERS: ClassVar[Dict[type, tuple]] = {}

    def __init__(self, decodes: str = "client",
                 max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES):
        super().__init__(decodes)
        if max_frame_bytes < 1:
            raise ValueError(
                f"max_frame_bytes must be >= 1, got {max_frame_bytes}")
        self.max_frame_bytes = max_frame_bytes
        special = (_SPECIAL_UNPACK_CLIENT if decodes == "client"
                   else _SPECIAL_UNPACK_SERVER)
        self._special = special
        #: type id -> (wire kind, specialized unpacker or None); one
        #: dict hit covers both decode-side lookups.
        self._decoders = {
            type_id: (kind, special.get(kind))
            for kind, type_id in BINARY_TYPE_IDS.items()
        }

    def encode(self, message: messages.Message) -> bytes:
        entry = self._ENCODERS.get(type(message))
        if entry is None:
            kind = message.TYPE
            type_id = BINARY_TYPE_IDS.get(kind)
            if type_id is None:
                raise ProtocolError(
                    f"no binary type id for message type {kind!r}")
            entry = (type_id, _SPECIAL_PACK.get(type(message)))
            self._ENCODERS[type(message)] = entry
        type_id, pack = entry
        try:
            if pack is not None:
                body = pack(message)
            else:
                body = self._pack_generic(message.to_dict())
        except (struct.error, KeyError, TypeError,
                AttributeError) as exc:
            raise ProtocolError(
                f"cannot binary-encode {message.TYPE}: {exc}") from exc
        if len(body) > self.max_frame_bytes:
            raise ProtocolError(
                f"{message.TYPE} body of {len(body)} bytes exceeds "
                f"{self.max_frame_bytes}")
        return _HEADER.pack(MAGIC, BINARY_VERSION, type_id,
                            len(body)) + body

    @staticmethod
    def _pack_generic(payload: Dict[str, Any]) -> bytes:
        """Message dict (minus ``type``, carried in the header) ->
        msgpack-style map body."""
        out = bytearray()
        size = len(payload) - 1
        if size < 16:
            out.append(0x80 | size)
        elif size <= 0xFFFF:
            out.append(0xDE)
            out += _U16.pack(size)
        else:
            out.append(0xDF)
            out += _U32.pack(size)
        for key, value in payload.items():
            if key == "type":
                continue
            _pack_obj(key, out)
            _pack_obj(value, out)
        return bytes(out)

    def _parse(self) -> List[messages.Message]:
        buffer = self._buffer
        out: List[messages.Message] = []
        append = out.append
        unpack_header = _HEADER.unpack_from
        max_frame = self.max_frame_bytes
        decode = self._decode_frame
        pos = 0
        available = len(buffer)
        try:
            while available - pos >= _HEADER_SIZE:
                magic, version, type_id, body_len = \
                    unpack_header(buffer, pos)
                if magic != MAGIC:
                    raise ProtocolError(
                        f"bad frame magic 0x{magic:04X} "
                        f"(expected 0x{MAGIC:04X})")
                if version != BINARY_VERSION:
                    raise ProtocolError(
                        f"unsupported binary frame version {version} "
                        f"(this side speaks {BINARY_VERSION})")
                if body_len > max_frame:
                    raise ProtocolError(
                        f"frame body of {body_len} bytes exceeds "
                        f"{max_frame}")
                end = pos + _HEADER_SIZE + body_len
                if end > available:
                    break
                body = bytes(buffer[pos + _HEADER_SIZE:end])
                append(decode(type_id, body))
                pos = end
        except ProtocolError:
            if not out:
                raise
            # Deliver the clean prefix; the bad frame stays at the
            # buffer front so the next feed() re-raises.
        del buffer[:pos]
        return out

    def _decode_frame(self, type_id: int,
                      body: bytes) -> messages.Message:
        entry = self._decoders.get(type_id)
        if entry is None:
            raise ProtocolError(f"unknown binary type id {type_id}")
        kind, special = entry
        try:
            if special is not None:
                return special(body)
            payload, pos = _unpack_obj(body, 0)
            if pos != len(body):
                raise ProtocolError(
                    f"{kind} frame has {len(body) - pos} "
                    f"trailing byte(s)")
            if not isinstance(payload, dict):
                raise ProtocolError(
                    f"{kind} body must be a map, "
                    f"got {type(payload).__name__}")
            payload["type"] = kind
            return self._lift(payload)
        except (IndexError, struct.error) as exc:
            raise ProtocolError(
                f"truncated {kind} frame body") from exc


#: Negotiation name -> codec class.
CODECS: Dict[str, Type[Codec]] = {
    JsonLinesCodec.name: JsonLinesCodec,
    BinaryCodec.name: BinaryCodec,
}


def make_codec(name: str, decodes: str = "client",
               max_frame_bytes: Optional[int] = None) -> Codec:
    """Instantiate the codec negotiated for one connection side."""
    cls = CODECS.get(name)
    if cls is None:
        raise ProtocolError(f"unknown codec {name!r} "
                            f"(have {sorted(CODECS)})")
    if max_frame_bytes is None:
        return cls(decodes=decodes)
    if cls is BinaryCodec:
        return cls(decodes=decodes, max_frame_bytes=max_frame_bytes)
    return cls(decodes=decodes, max_message_bytes=max_frame_bytes)
