"""Load generator: replay ``workload`` jobs against a live scheduler.

``run_load`` drives an already-listening server: it submits a
:class:`~repro.grid.job.Job` (chunked ``JOB_SUBMIT`` messages over a
control connection), spins up ``workers`` concurrent
:class:`~repro.serve.client.WorkerClient` pull loops spread
round-robin over ``sites`` site ids, waits for all of them to be told
``NO_TASK`` (i.e. every task completed), then pulls a ``STATS``
snapshot and optionally drains the server.

``serve_and_load`` bundles server + load into one event loop for
tests, benchmarks and single-command demos.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional

from ..grid.job import Job
from . import protocol
from .client import WorkerClient
from .server import SchedulerServer
from .service import SchedulerService

#: Tasks per JOB_SUBMIT message (keeps lines well under the size cap).
SUBMIT_CHUNK = 200


class ControlClient:
    """A non-worker connection: submit jobs, read stats, drain."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def __aenter__(self) -> "ControlClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port,
            limit=protocol.MAX_MESSAGE_BYTES + 1024)
        return self

    async def __aexit__(self, *exc_info) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def call(self, message: Dict) -> Dict:
        self._writer.write(protocol.encode(message))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the control connection")
        reply = protocol.decode(line)
        if reply["type"] == protocol.ERROR:
            raise RuntimeError(f"server error: {reply.get('error')}")
        return reply

    async def submit_job(self, job: Job) -> List[int]:
        """Submit every task of ``job``; returns the global task ids."""
        task_ids: List[int] = []
        tasks = list(job)
        for start in range(0, len(tasks), SUBMIT_CHUNK):
            chunk = tasks[start:start + SUBMIT_CHUNK]
            reply = await self.call({
                "type": protocol.JOB_SUBMIT,
                "tasks": [{"files": sorted(task.files),
                           "flops": task.flops} for task in chunk]})
            task_ids.extend(reply["task_ids"])
        return task_ids

    async def stats(self) -> Dict:
        reply = await self.call({"type": protocol.STATS})
        return reply["stats"]

    async def drain(self) -> None:
        await self.call({"type": protocol.DRAIN})


async def run_load(host: str, port: int, job: Job, workers: int = 8,
                   sites: int = 4, capacity_files: int = 600,
                   flops_per_sec: float = 0.0,
                   seconds_per_file: float = 0.0,
                   drain: bool = True) -> Dict:
    """Submit ``job``, run the worker fleet, return a load report."""
    if workers < 1 or sites < 1:
        raise ValueError("need at least one worker and one site")
    async with ControlClient(host, port) as control:
        task_ids = await control.submit_job(job)
        fleet = [
            WorkerClient(host, port, worker=f"w{index}",
                         site=index % sites,
                         capacity_files=capacity_files,
                         flops_per_sec=flops_per_sec,
                         seconds_per_file=seconds_per_file)
            for index in range(workers)
        ]
        summaries = await asyncio.gather(
            *(worker.run() for worker in fleet))
        stats = await control.stats()
        if drain:
            await control.drain()
    return {
        "tasks_submitted": len(task_ids),
        "tasks_done": sum(s["tasks_done"] for s in summaries),
        "files_fetched": sum(s["files_fetched"] for s in summaries),
        "workers": summaries,
        "stats": stats,
    }


async def serve_and_load(job: Job, workers: int = 8, sites: int = 4,
                         metric: str = "rest", n: int = 1, seed: int = 0,
                         capacity_files: int = 600,
                         flops_per_sec: float = 0.0,
                         seconds_per_file: float = 0.0) -> Dict:
    """In-process server + load run; returns the load report."""
    service = SchedulerService(metric=metric, n=n, seed=seed)
    server = SchedulerServer(service)
    await server.start()
    serve_task = asyncio.ensure_future(server.serve_until_drained())
    try:
        report = await run_load(
            server.host, server.port, job, workers=workers, sites=sites,
            capacity_files=capacity_files, flops_per_sec=flops_per_sec,
            seconds_per_file=seconds_per_file, drain=True)
        await serve_task
    finally:
        if not serve_task.done():
            serve_task.cancel()
        await server.stop()
    return report
