"""Load generator: replay ``workload`` jobs against a live scheduler.

``run_load`` drives an already-listening server: it submits a
:class:`~repro.grid.job.Job` through a :class:`SchedulerClient`
(chunked ``JOB_SUBMIT`` messages extending one job id), spins up
``workers`` concurrent :class:`~repro.serve.client.WorkerClient` pull
loops spread round-robin over ``sites`` site ids — each scoped to the
submitted job, so they stop on ``NO_TASK(job-done)`` even if other
tenants keep the server busy — waits for the fleet, confirms the job
completed via its :class:`JobHandle`, then pulls a ``STATS`` snapshot
and optionally drains the server.

``serve_and_load`` bundles server + load into one event loop for
tests, benchmarks and single-command demos.

Throughput levers (both default off so the plain v2 path stays the
baseline): ``batch=k`` gives every worker a prefetch depth of k
(``TASK_BATCH`` pulls with pipelined completions), and
``aggregate_deltas=True`` routes cache deltas through one site-local
:class:`~repro.serve.client.DeltaAggregator` per site instead of one
``FILE_DELTA`` round trip per task per worker.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Dict, Optional

from ..grid.job import Job
from ..obs.events import EventLog
from .client import (SUBMIT_CHUNK, DeltaAggregator, JobHandle,
                     SchedulerClient, WorkerClient)
from .server import SchedulerServer
from .service import SchedulerService

__all__ = ["SUBMIT_CHUNK", "run_load", "serve_and_load",
           "SchedulerClient", "JobHandle"]


async def run_load(host: str, port: int, job: Job, workers: int = 8,
                   sites: int = 4, capacity_files: int = 600,
                   flops_per_sec: float = 0.0,
                   seconds_per_file: float = 0.0,
                   drain: bool = True,
                   scope_to_job: bool = True,
                   event_log: Optional[str] = None,
                   batch: int = 1,
                   aggregate_deltas: bool = False,
                   delta_flush_interval: float = 0.02,
                   codec: str = "auto") -> Dict:
    """Submit ``job``, run the worker fleet, return a load report.

    ``event_log`` writes the client-side view of the run — submit,
    every assign/delta/complete as each worker saw it — as JSON lines
    to that path, ready for
    :func:`repro.analysis.eventlog.load_timelines`.

    ``codec`` sets the fleet's negotiation stance (``auto``/``json``/
    ``binary``); the per-worker pick lands in each summary's
    ``codec`` field.
    """
    if workers < 1 or sites < 1:
        raise ValueError("need at least one worker and one site")
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    events = EventLog(path=event_log) if event_log else None
    async with contextlib.AsyncExitStack() as stack:
        if events is not None:
            stack.enter_context(events)
        control = await stack.enter_async_context(
            SchedulerClient(host, port, name="loadgen", codec=codec))
        handle = await control.submit(job)
        if events is not None:
            events.emit("submit", job_id=handle.job_id,
                        tasks=len(handle.task_ids),
                        task_ids=handle.task_ids)
        aggregators: Dict[int, DeltaAggregator] = {}
        if aggregate_deltas:
            for site in sorted({index % sites
                                for index in range(workers)}):
                aggregators[site] = await stack.enter_async_context(
                    DeltaAggregator(host, port, site,
                                    flush_interval=delta_flush_interval,
                                    events=events, codec=codec))
        fleet = [
            WorkerClient(host, port, worker=f"w{index}",
                         site=index % sites,
                         capacity_files=capacity_files,
                         flops_per_sec=flops_per_sec,
                         seconds_per_file=seconds_per_file,
                         job_id=(handle.job_id if scope_to_job
                                 else None),
                         events=events,
                         batch=batch,
                         delta_sink=aggregators.get(index % sites),
                         codec=codec)
            for index in range(workers)
        ]
        summaries = await asyncio.gather(
            *(worker.run() for worker in fleet))
        # The fleet is done; push any still-buffered deltas so the
        # final stats reflect everything the workers reported.
        for aggregator in aggregators.values():
            await aggregator.flush()
        job_status = await handle.status()
        stats = await control.stats()
        if drain:
            await control.drain()
    accepted = sum(s["tasks_done"] for s in summaries)
    submitted = len(handle.task_ids)
    audit = {
        "tasks_submitted": submitted,
        "completed": job_status["completed"],
        "lost": max(0, submitted - job_status["completed"]),
        "double_counted": max(0, accepted - job_status["completed"]),
    }
    audit["clean"] = audit["lost"] == 0 and audit["double_counted"] == 0
    return {
        "job_id": handle.job_id,
        "tasks_submitted": submitted,
        "batch": batch,
        "codec": codec,
        "tasks_done": accepted,
        "files_fetched": sum(s["files_fetched"] for s in summaries),
        "job_status": job_status,
        "workers": summaries,
        "delta_aggregation": {
            "enabled": aggregate_deltas,
            "sites": [agg.summary() for agg in aggregators.values()],
            "duplicates_suppressed": sum(
                agg.duplicates_suppressed
                for agg in aggregators.values()),
        },
        "audit": audit,
        "stats": stats,
        "event_log": event_log,
    }


async def serve_and_load(job: Job, workers: int = 8, sites: int = 4,
                         metric: str = "rest", n: int = 1, seed: int = 0,
                         capacity_files: int = 600,
                         flops_per_sec: float = 0.0,
                         seconds_per_file: float = 0.0,
                         lease_ttl: Optional[float] = None,
                         event_log: Optional[str] = None,
                         batch: int = 1,
                         aggregate_deltas: bool = False,
                         delta_flush_interval: float = 0.02,
                         codec: str = "auto") -> Dict:
    """In-process server + load run; returns the load report."""
    kwargs = {} if lease_ttl is None else {"lease_ttl": lease_ttl}
    service = SchedulerService(metric=metric, n=n, seed=seed, **kwargs)
    server = SchedulerServer(service)
    await server.start()
    serve_task = asyncio.ensure_future(server.serve_until_drained())
    try:
        report = await run_load(
            server.host, server.port, job, workers=workers, sites=sites,
            capacity_files=capacity_files, flops_per_sec=flops_per_sec,
            seconds_per_file=seconds_per_file, drain=True,
            event_log=event_log, batch=batch,
            aggregate_deltas=aggregate_deltas,
            delta_flush_interval=delta_flush_interval,
            codec=codec)
        await serve_task
    finally:
        if not serve_task.done():
            serve_task.cancel()
        await server.stop()
    return report
