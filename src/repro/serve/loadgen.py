"""Load generator: replay ``workload`` jobs against a live scheduler.

``run_load`` drives an already-listening server: it submits a
:class:`~repro.grid.job.Job` through a :class:`SchedulerClient`
(chunked ``JOB_SUBMIT`` messages extending one job id), spins up
``workers`` concurrent :class:`~repro.serve.client.WorkerClient` pull
loops spread round-robin over ``sites`` site ids — each scoped to the
submitted job, so they stop on ``NO_TASK(job-done)`` even if other
tenants keep the server busy — waits for the fleet, confirms the job
completed via its :class:`JobHandle`, then pulls a ``STATS`` snapshot
and optionally drains the server.

``serve_and_load`` bundles server + load into one event loop for
tests, benchmarks and single-command demos.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import Dict, Optional

from ..grid.job import Job
from ..obs.events import EventLog
from .client import SUBMIT_CHUNK, JobHandle, SchedulerClient, WorkerClient
from .server import SchedulerServer
from .service import SchedulerService

__all__ = ["SUBMIT_CHUNK", "run_load", "serve_and_load",
           "SchedulerClient", "JobHandle"]


async def run_load(host: str, port: int, job: Job, workers: int = 8,
                   sites: int = 4, capacity_files: int = 600,
                   flops_per_sec: float = 0.0,
                   seconds_per_file: float = 0.0,
                   drain: bool = True,
                   scope_to_job: bool = True,
                   event_log: Optional[str] = None) -> Dict:
    """Submit ``job``, run the worker fleet, return a load report.

    ``event_log`` writes the client-side view of the run — submit,
    every assign/delta/complete as each worker saw it — as JSON lines
    to that path, ready for
    :func:`repro.analysis.eventlog.load_timelines`.
    """
    if workers < 1 or sites < 1:
        raise ValueError("need at least one worker and one site")
    events = EventLog(path=event_log) if event_log else None
    with contextlib.ExitStack() as stack:
        if events is not None:
            stack.enter_context(events)
        async with SchedulerClient(host, port, name="loadgen") as control:
            handle = await control.submit(job)
            if events is not None:
                events.emit("submit", job_id=handle.job_id,
                            tasks=len(handle.task_ids),
                            task_ids=handle.task_ids)
            fleet = [
                WorkerClient(host, port, worker=f"w{index}",
                             site=index % sites,
                             capacity_files=capacity_files,
                             flops_per_sec=flops_per_sec,
                             seconds_per_file=seconds_per_file,
                             job_id=(handle.job_id if scope_to_job
                                     else None),
                             events=events)
                for index in range(workers)
            ]
            summaries = await asyncio.gather(
                *(worker.run() for worker in fleet))
            job_status = await handle.status()
            stats = await control.stats()
            if drain:
                await control.drain()
    return {
        "job_id": handle.job_id,
        "tasks_submitted": len(handle.task_ids),
        "tasks_done": sum(s["tasks_done"] for s in summaries),
        "files_fetched": sum(s["files_fetched"] for s in summaries),
        "job_status": job_status,
        "workers": summaries,
        "stats": stats,
        "event_log": event_log,
    }


async def serve_and_load(job: Job, workers: int = 8, sites: int = 4,
                         metric: str = "rest", n: int = 1, seed: int = 0,
                         capacity_files: int = 600,
                         flops_per_sec: float = 0.0,
                         seconds_per_file: float = 0.0,
                         lease_ttl: Optional[float] = None,
                         event_log: Optional[str] = None) -> Dict:
    """In-process server + load run; returns the load report."""
    kwargs = {} if lease_ttl is None else {"lease_ttl": lease_ttl}
    service = SchedulerService(metric=metric, n=n, seed=seed, **kwargs)
    server = SchedulerServer(service)
    await server.start()
    serve_task = asyncio.ensure_future(server.serve_until_drained())
    try:
        report = await run_load(
            server.host, server.port, job, workers=workers, sites=sites,
            capacity_files=capacity_files, flops_per_sec=flops_per_sec,
            seconds_per_file=seconds_per_file, drain=True,
            event_log=event_log)
        await serve_task
    finally:
        if not serve_task.done():
            serve_task.cancel()
        await server.stop()
    return report
