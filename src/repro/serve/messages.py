"""Typed message surface of the serve protocol (v3).

One frozen dataclass per wire message.  :mod:`repro.serve.protocol`
stays the thin constants-and-negotiation layer and
:mod:`repro.serve.codec` the per-connection wire codecs; this module
gives both the server and the clients a statically-known shape for
every message instead of raw-dict plumbing:

* a :class:`~repro.serve.codec.Codec` carries these dataclasses over
  the wire; ``message.encode()`` / :func:`decode_client` /
  :func:`decode_server` are the JSON-lines single-message shortcuts
  (``STATS`` and ``JOB_STATUS`` are request *and* reply types, so the
  registries are per-direction).
* decoding is **unknown-field tolerant**: fields a newer peer added
  are ignored, so a v2.x server can talk to a v2.y client as long as
  the required fields survive.  Missing required fields and
  wrong-typed values raise :class:`~repro.serve.protocol.ProtocolError`.
* every value a dataclass holds is JSON-native, so
  ``decode_*(m.encode())`` round-trips exactly.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, List, Optional, Type

from . import protocol as wire
from .protocol import ProtocolError

__all__ = [
    "Message", "ClientMessage", "ServerMessage",
    # client -> server
    "Hello", "RequestTask", "TaskDone", "Heartbeat", "FileDelta",
    "JobSubmit", "JobStatusRequest", "StatsRequest", "Drain",
    "StealRequest", "StealAck", "StealDone",
    # server -> client
    "Welcome", "TaskAssign", "TaskBatch", "NoTask", "Ack", "HeartbeatAck",
    "JobAccepted", "JobStatusReply", "StatsReply", "Redirect", "Error",
    "StealGrant",
    # codec entry points
    "decode_client", "decode_server",
    "client_from_dict", "server_from_dict",
]


# -- field validators --------------------------------------------------------

def _need_int(kind: str, name: str, value: Any,
              minimum: Optional[int] = None) -> None:
    if not wire.is_int(value):
        raise ProtocolError(f"{kind}.{name} must be an int, "
                            f"got {value!r}")
    if minimum is not None and value < minimum:
        raise ProtocolError(f"{kind}.{name} must be >= {minimum}, "
                            f"got {value}")


def _need_str(kind: str, name: str, value: Any) -> None:
    if not isinstance(value, str):
        raise ProtocolError(f"{kind}.{name} must be a string, "
                            f"got {value!r}")


def _need_number(kind: str, name: str, value: Any) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{kind}.{name} must be a number, "
                            f"got {value!r}")


def _need_int_list(kind: str, name: str, value: Any) -> None:
    if not isinstance(value, list) or any(
            not wire.is_int(item) for item in value):
        raise ProtocolError(f"{kind}.{name} must be a list of ints")


def _need_bool(kind: str, name: str, value: Any) -> None:
    if not isinstance(value, bool):
        raise ProtocolError(f"{kind}.{name} must be a bool, "
                            f"got {value!r}")


def _need_str_list(kind: str, name: str, value: Any) -> None:
    if not isinstance(value, list) or any(
            not isinstance(item, str) for item in value):
        raise ProtocolError(f"{kind}.{name} must be a list of strings")


# -- the base ----------------------------------------------------------------

class Message:
    """Shared encode/decode machinery; subclasses are frozen dataclasses.

    Direction bases (:class:`ClientMessage` / :class:`ServerMessage`)
    register concrete subclasses by their ``TYPE`` wire constant.
    """

    TYPE: ClassVar[str] = ""

    @classmethod
    def _field_specs(cls):
        """``(name, required)`` per dataclass field, cached per class.

        ``dataclasses.fields()`` rebuilds its tuple on every call,
        which dominates codec time at wire rates.  The cache must live
        in ``cls.__dict__`` (not be inherited), and it cannot be
        precomputed in ``__init_subclass__`` because that hook fires
        before the ``@dataclass`` decorator runs.
        """
        specs = cls.__dict__.get("_FIELD_SPECS")
        if specs is None:
            specs = tuple(
                (spec.name,
                 spec.default is dataclasses.MISSING
                 and spec.default_factory is dataclasses.MISSING)
                for spec in dataclasses.fields(cls))
            cls._FIELD_SPECS = specs
        return specs

    def to_dict(self) -> Dict[str, Any]:
        """The wire dict; ``None``-valued optional fields are omitted."""
        payload: Dict[str, Any] = {"type": self.TYPE}
        for name, _required in self._field_specs():
            value = getattr(self, name)
            if value is None:
                continue
            payload[name] = value
        return payload

    def encode(self) -> bytes:
        """This message as one JSON line (the ``json-2`` format)."""
        return wire.encode_line(self.to_dict())

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Message":
        """Build from a wire dict, ignoring unknown fields."""
        kwargs = {}
        for name, required in cls._field_specs():
            if name in payload:
                kwargs[name] = payload[name]
            elif required:
                raise ProtocolError(
                    f"{cls.TYPE} missing required field {name!r}")
        message = cls(**kwargs)
        message.validate()
        return message

    def validate(self) -> None:
        """Field-type checks; subclasses override (raise ProtocolError)."""


class ClientMessage(Message):
    """A message a client sends; the server decodes these."""

    REGISTRY: ClassVar[Dict[str, Type["ClientMessage"]]] = {}

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        ClientMessage.REGISTRY[cls.TYPE] = cls


class ServerMessage(Message):
    """A message the server sends; clients decode these."""

    REGISTRY: ClassVar[Dict[str, Type["ServerMessage"]]] = {}

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        ServerMessage.REGISTRY[cls.TYPE] = cls


def _from_dict(registry: Dict[str, Type[Message]], direction: str,
               payload: Dict[str, Any]) -> Message:
    cls = registry.get(payload["type"])
    if cls is None:
        raise ProtocolError(
            f"unknown {direction} message type {payload['type']!r}")
    return cls.from_dict(payload)


def client_from_dict(payload: Dict[str, Any]) -> "ClientMessage":
    return _from_dict(ClientMessage.REGISTRY, "client", payload)


def server_from_dict(payload: Dict[str, Any]) -> "ServerMessage":
    return _from_dict(ServerMessage.REGISTRY, "server", payload)


def decode_client(line: bytes) -> "ClientMessage":
    """Server side: one received JSON line -> a typed client message."""
    return client_from_dict(wire.decode_line(line))


def decode_server(line: bytes) -> "ServerMessage":
    """Client side: one received JSON line -> a typed server message."""
    return server_from_dict(wire.decode_line(line))


# -- client -> server --------------------------------------------------------

@dataclass(frozen=True)
class Hello(ClientMessage):
    """Register a connection (worker or control); starts negotiation.

    ``accept_redirect`` marks a cluster-aware client: a router may
    answer with ``REDIRECT`` (the shard map) instead of ``WELCOME``.
    The field is v2-compatible in both directions — a plain shard or
    standalone server ignores it and answers ``WELCOME`` as always,
    and old clients that never send it get a clean ``ERROR`` from a
    router rather than a message they cannot parse.

    ``codecs`` (v3) is the ordered wire-codec capability list, e.g.
    ``["binary-1", "json-2"]``.  Absent — every v2 client — means JSON
    lines for the whole connection; the server answers with its pick
    in ``WELCOME.codec`` / ``REDIRECT.codec`` and both sides switch
    right after that exchange.
    """
    TYPE = wire.HELLO
    worker: str
    site: int
    protocol: int = 1  # v1 clients never sent the field
    accept_redirect: Optional[bool] = None
    codecs: Optional[List[str]] = None

    def validate(self) -> None:
        _need_str(self.TYPE, "worker", self.worker)
        _need_int(self.TYPE, "site", self.site, minimum=0)
        _need_int(self.TYPE, "protocol", self.protocol, minimum=1)
        if self.accept_redirect is not None:
            _need_bool(self.TYPE, "accept_redirect",
                       self.accept_redirect)
        if self.codecs is not None:
            _need_str_list(self.TYPE, "codecs", self.codecs)


@dataclass(frozen=True)
class RequestTask(ClientMessage):
    """Pull the next task(s); ``job_id`` scopes the pull to one job.

    ``max_tasks`` asks for up to k leased tasks in one ``TASK_BATCH``
    reply.  The field is v2-compatible in both directions: absent
    means 1 (and a plain ``TASK`` reply), and a server that predates
    it ignores the unknown field and degrades to single-task.
    """
    TYPE = wire.REQUEST_TASK
    job_id: Optional[int] = None
    max_tasks: Optional[int] = None

    def validate(self) -> None:
        if self.job_id is not None:
            _need_int(self.TYPE, "job_id", self.job_id, minimum=0)
        if self.max_tasks is not None:
            _need_int(self.TYPE, "max_tasks", self.max_tasks, minimum=1)


@dataclass(frozen=True)
class TaskDone(ClientMessage):
    """Report a completion; must present the assignment's lease."""
    TYPE = wire.TASK_DONE
    task_id: int
    lease_id: int

    def validate(self) -> None:
        _need_int(self.TYPE, "task_id", self.task_id, minimum=0)
        _need_int(self.TYPE, "lease_id", self.lease_id, minimum=0)


@dataclass(frozen=True)
class Heartbeat(ClientMessage):
    """Renew leases; ``lease_ids`` of None renews all held leases."""
    TYPE = wire.HEARTBEAT
    lease_ids: Optional[List[int]] = None

    def validate(self) -> None:
        if self.lease_ids is not None:
            _need_int_list(self.TYPE, "lease_ids", self.lease_ids)


@dataclass(frozen=True)
class FileDelta(ClientMessage):
    """A worker's report of its site cache changes."""
    TYPE = wire.FILE_DELTA
    added: List[int] = dataclasses.field(default_factory=list)
    removed: List[int] = dataclasses.field(default_factory=list)
    referenced: List[int] = dataclasses.field(default_factory=list)
    site: Optional[int] = None

    def validate(self) -> None:
        for name in ("added", "removed", "referenced"):
            _need_int_list(self.TYPE, name, getattr(self, name))
        if self.site is not None:
            _need_int(self.TYPE, "site", self.site, minimum=0)


@dataclass(frozen=True)
class JobSubmit(ClientMessage):
    """Append a batch of tasks (to job ``job_id`` when given).

    ``weight`` is the job's fair-share weight for weighted-fair
    pick-order across tenants (see
    :meth:`~repro.serve.service.SchedulerService.submit_job`); absent
    means the job takes no part in weighting — a server where no job
    carries a weight schedules exactly as before the field existed.
    """
    TYPE = wire.JOB_SUBMIT
    tasks: List[dict]
    job_id: Optional[int] = None
    weight: Optional[float] = None

    def validate(self) -> None:
        if not isinstance(self.tasks, list):
            raise ProtocolError(f"{self.TYPE}.tasks must be a list")
        if self.job_id is not None:
            _need_int(self.TYPE, "job_id", self.job_id, minimum=0)
        if self.weight is not None:
            _need_number(self.TYPE, "weight", self.weight)
            if self.weight <= 0:
                raise ProtocolError(
                    f"{self.TYPE}.weight must be > 0, "
                    f"got {self.weight!r}")


@dataclass(frozen=True)
class JobStatusRequest(ClientMessage):
    TYPE = wire.JOB_STATUS
    job_id: int

    def validate(self) -> None:
        _need_int(self.TYPE, "job_id", self.job_id, minimum=0)


@dataclass(frozen=True)
class StatsRequest(ClientMessage):
    TYPE = wire.STATS


@dataclass(frozen=True)
class Drain(ClientMessage):
    TYPE = wire.DRAIN


#: Required keys of one ``STEAL_REQUEST.site_refsums`` entry: one
#: thief-side site's resident files and their reference counts, so the
#: victim can score candidate exports with the fast scorers.
_REFSUM_ENTRY_KEYS = ("site", "files", "refs")


@dataclass(frozen=True)
class StealRequest(ClientMessage):
    """A drained peer shard asks for pending, unleased tasks.

    ``site_refsums`` carries one ``{site, files, refs}`` entry per
    thief-side site (``files[i]`` has been referenced ``refs[i]``
    times there); the victim exports the tasks whose inputs overlap
    the thief's caches the most — lowest locality loss.
    """
    TYPE = wire.STEAL_REQUEST
    max_tasks: int
    site_refsums: List[dict] = dataclasses.field(default_factory=list)

    def validate(self) -> None:
        _need_int(self.TYPE, "max_tasks", self.max_tasks, minimum=1)
        if not isinstance(self.site_refsums, list):
            raise ProtocolError(
                f"{self.TYPE}.site_refsums must be a list")
        for entry in self.site_refsums:
            if not isinstance(entry, dict):
                raise ProtocolError(
                    f"{self.TYPE}.site_refsums entries must be objects")
            for key in _REFSUM_ENTRY_KEYS:
                if key not in entry:
                    raise ProtocolError(
                        f"{self.TYPE} site_refsums entry missing "
                        f"{key!r}")
            _need_int(self.TYPE, "site_refsums[].site", entry["site"],
                      minimum=0)
            _need_int_list(self.TYPE, "site_refsums[].files",
                           entry["files"])
            _need_int_list(self.TYPE, "site_refsums[].refs",
                           entry["refs"])
            if len(entry["files"]) != len(entry["refs"]):
                raise ProtocolError(
                    f"{self.TYPE} site_refsums entry files/refs "
                    f"length mismatch")


@dataclass(frozen=True)
class StealAck(ClientMessage):
    """The thief durably recorded the grant; commit the export.

    The victim answers with ``ACK``: ``accepted`` True means the
    export is committed and the thief must activate the batch,
    False means the victim aborted it (e.g. crash recovery already
    requeued the tasks) and the thief must drop it.  Idempotent —
    re-acking an already-committed export answers True again.
    """
    TYPE = wire.STEAL_ACK
    export_id: int

    def validate(self) -> None:
        _need_int(self.TYPE, "export_id", self.export_id, minimum=0)


@dataclass(frozen=True)
class StealDone(ClientMessage):
    """Completions of stolen tasks, forwarded to the owning shard.

    At-least-once from the thief, idempotent at the victim: a task id
    already completed is counted as a duplicate and ignored.
    """
    TYPE = wire.STEAL_DONE
    task_ids: List[int]

    def validate(self) -> None:
        _need_int_list(self.TYPE, "task_ids", self.task_ids)
        if not self.task_ids:
            raise ProtocolError(
                f"{self.TYPE}.task_ids must be non-empty")


# -- server -> client --------------------------------------------------------

@dataclass(frozen=True)
class Welcome(ServerMessage):
    """HELLO ack, carrying the negotiated protocol and lease terms.

    ``codec`` (v3) is the server's pick from ``HELLO.codecs`` — the
    wire format of every message after this one.  It is only set when
    the client offered codecs, so v2 clients never see the field.
    """
    TYPE = wire.WELCOME
    server: str
    metric: str
    n: int
    protocol: int = wire.PROTOCOL_VERSION
    lease_ttl: float = 0.0
    heartbeat_interval: float = 0.0
    codec: Optional[str] = None

    def validate(self) -> None:
        _need_str(self.TYPE, "server", self.server)
        _need_str(self.TYPE, "metric", self.metric)
        _need_int(self.TYPE, "n", self.n, minimum=1)
        _need_int(self.TYPE, "protocol", self.protocol, minimum=1)
        _need_number(self.TYPE, "lease_ttl", self.lease_ttl)
        _need_number(self.TYPE, "heartbeat_interval",
                     self.heartbeat_interval)
        if self.codec is not None:
            _need_str(self.TYPE, "codec", self.codec)


@dataclass(frozen=True)
class TaskAssign(ServerMessage):
    """An assignment: the task plus the lease that guards it."""
    TYPE = wire.TASK
    task_id: int
    files: List[int]
    flops: float
    lease_id: int
    lease_ttl: float
    job_id: int

    def validate(self) -> None:
        _need_int(self.TYPE, "task_id", self.task_id, minimum=0)
        _need_int_list(self.TYPE, "files", self.files)
        _need_number(self.TYPE, "flops", self.flops)
        _need_int(self.TYPE, "lease_id", self.lease_id, minimum=0)
        _need_number(self.TYPE, "lease_ttl", self.lease_ttl)
        _need_int(self.TYPE, "job_id", self.job_id, minimum=0)


#: The per-task keys of one ``TASK_BATCH`` entry (``lease_ttl`` is
#: batch-level: every lease in a batch is granted with the same TTL).
_BATCH_ENTRY_INT_KEYS = ("task_id", "lease_id", "job_id")


@dataclass(frozen=True)
class TaskBatch(ServerMessage):
    """Up to ``max_tasks`` leased assignments in one reply.

    Entries stay JSON-native dicts on the dataclass (so
    ``decode(encode())`` round-trips exactly); :meth:`assignments`
    lifts them into per-task :class:`TaskAssign` values, which is what
    clients iterate — every task in a batch carries its own lease and
    job id, exactly as if it had arrived in its own ``TASK``.
    """
    TYPE = wire.TASK_BATCH
    tasks: List[dict]
    lease_ttl: float

    def validate(self) -> None:
        if not isinstance(self.tasks, list) or not self.tasks:
            raise ProtocolError(
                f"{self.TYPE}.tasks must be a non-empty list")
        _need_number(self.TYPE, "lease_ttl", self.lease_ttl)
        for entry in self.tasks:
            if not isinstance(entry, dict):
                raise ProtocolError(
                    f"{self.TYPE}.tasks entries must be objects")
            for key in _BATCH_ENTRY_INT_KEYS:
                if key not in entry:
                    raise ProtocolError(
                        f"{self.TYPE} entry missing {key!r}")
                _need_int(self.TYPE, f"tasks[].{key}", entry[key],
                          minimum=0)
            _need_int_list(self.TYPE, "tasks[].files",
                           entry.get("files"))
            _need_number(self.TYPE, "tasks[].flops",
                         entry.get("flops"))

    def assignments(self) -> List["TaskAssign"]:
        """The batch as per-task ``TASK`` messages (validated)."""
        return [TaskAssign(task_id=entry["task_id"],
                           files=entry["files"],
                           flops=entry["flops"],
                           lease_id=entry["lease_id"],
                           lease_ttl=self.lease_ttl,
                           job_id=entry["job_id"])
                for entry in self.tasks]


@dataclass(frozen=True)
class NoTask(ServerMessage):
    """No task will ever come; ``reason`` is a closed enum."""
    TYPE = wire.NO_TASK
    reason: str

    def validate(self) -> None:
        if self.reason not in wire.NO_TASK_REASONS:
            raise ProtocolError(
                f"{self.TYPE}.reason must be one of "
                f"{sorted(wire.NO_TASK_REASONS)}, got {self.reason!r}")


@dataclass(frozen=True)
class Ack(ServerMessage):
    """Success/rejection ack (TASK_DONE / FILE_DELTA / DRAIN).

    ``accepted`` is False when a ``TASK_DONE`` presented an invalid
    lease (``reason`` then says why: ``stale-lease`` or
    ``already-complete``) or when admission control rejected a
    ``JOB_SUBMIT`` (``reason`` is ``overloaded`` and ``retry_after``
    tells the submitter how many seconds to back off before retrying
    the same chunk).
    """
    TYPE = wire.ACK
    accepted: bool = True
    reason: Optional[str] = None
    draining: Optional[bool] = None
    retry_after: Optional[float] = None

    def validate(self) -> None:
        _need_bool(self.TYPE, "accepted", self.accepted)
        if self.reason is not None:
            _need_str(self.TYPE, "reason", self.reason)
        if self.retry_after is not None:
            _need_number(self.TYPE, "retry_after", self.retry_after)


@dataclass(frozen=True)
class HeartbeatAck(ServerMessage):
    """Renewal outcome: which leases renewed, which no longer exist."""
    TYPE = wire.HEARTBEAT_ACK
    renewed: List[int] = dataclasses.field(default_factory=list)
    expired: List[int] = dataclasses.field(default_factory=list)

    def validate(self) -> None:
        _need_int_list(self.TYPE, "renewed", self.renewed)
        _need_int_list(self.TYPE, "expired", self.expired)


@dataclass(frozen=True)
class JobAccepted(ServerMessage):
    TYPE = wire.JOB_ACCEPTED
    job_id: int
    task_ids: List[int]

    def validate(self) -> None:
        _need_int(self.TYPE, "job_id", self.job_id, minimum=0)
        _need_int_list(self.TYPE, "task_ids", self.task_ids)


@dataclass(frozen=True)
class JobStatusReply(ServerMessage):
    """Per-job progress: ``tasks = completed + pending + outstanding``."""
    TYPE = wire.JOB_STATUS
    job_id: int
    tasks: int
    completed: int
    pending: int
    outstanding: int
    done: bool

    def validate(self) -> None:
        _need_int(self.TYPE, "job_id", self.job_id, minimum=0)
        for name in ("tasks", "completed", "pending", "outstanding"):
            _need_int(self.TYPE, name, getattr(self, name), minimum=0)
        _need_bool(self.TYPE, "done", self.done)


@dataclass(frozen=True)
class StatsReply(ServerMessage):
    TYPE = wire.STATS
    stats: Dict[str, Any]

    def validate(self) -> None:
        if not isinstance(self.stats, dict):
            raise ProtocolError(f"{self.TYPE}.stats must be an object")


#: Required keys of one ``REDIRECT.shards`` entry.
_SHARD_ENTRY_KEYS = ("shard", "host", "port")


@dataclass(frozen=True)
class Redirect(ServerMessage):
    """A cluster router's shard map, answering a cluster-aware HELLO.

    ``partition`` names the routing rule; the only rule today is
    ``job-mod`` (the shard owning job ``j`` is ``shards[j %
    shard_count]``).  Workers connect to their job's shard for the
    data plane; the router connection stays usable for control
    traffic.
    """
    TYPE = wire.REDIRECT
    shards: List[dict]
    shard_count: int
    partition: str = "job-mod"
    codec: Optional[str] = None

    def validate(self) -> None:
        if self.codec is not None:
            _need_str(self.TYPE, "codec", self.codec)
        if not isinstance(self.shards, list) or not self.shards:
            raise ProtocolError(
                f"{self.TYPE}.shards must be a non-empty list")
        _need_int(self.TYPE, "shard_count", self.shard_count, minimum=1)
        _need_str(self.TYPE, "partition", self.partition)
        for entry in self.shards:
            if not isinstance(entry, dict):
                raise ProtocolError(
                    f"{self.TYPE}.shards entries must be objects")
            for key in _SHARD_ENTRY_KEYS:
                if key not in entry:
                    raise ProtocolError(
                        f"{self.TYPE} shard entry missing {key!r}")
            _need_int(self.TYPE, "shards[].shard", entry["shard"],
                      minimum=0)
            _need_str(self.TYPE, "shards[].host", entry["host"])
            _need_int(self.TYPE, "shards[].port", entry["port"],
                      minimum=1)


@dataclass(frozen=True)
class Error(ServerMessage):
    TYPE = wire.ERROR
    error: str

    def validate(self) -> None:
        _need_str(self.TYPE, "error", self.error)


#: Required keys of one ``STEAL_GRANT.tasks`` entry — a bare task
#: spec, not an assignment: no lease, the thief grants its own.
_STEAL_ENTRY_KEYS = ("task_id", "job_id")


@dataclass(frozen=True)
class StealGrant(ServerMessage):
    """Reply to ``STEAL_REQUEST``: the exported batch.

    The tasks are already removed from the victim's pending queue and
    the export is WAL-durable before this message is sent.  They keep
    their original (victim-space) task/job ids — shard id spaces are
    strided and therefore globally disjoint.  An empty ``tasks`` list
    (``export_id`` absent) is a refusal: nothing above the victim's
    own watermark, or stealing raced a drain.
    """
    TYPE = wire.STEAL_GRANT
    tasks: List[dict] = dataclasses.field(default_factory=list)
    export_id: Optional[int] = None

    def validate(self) -> None:
        if not isinstance(self.tasks, list):
            raise ProtocolError(f"{self.TYPE}.tasks must be a list")
        if self.tasks and self.export_id is None:
            raise ProtocolError(
                f"{self.TYPE} with tasks must carry export_id")
        if self.export_id is not None:
            _need_int(self.TYPE, "export_id", self.export_id, minimum=0)
        for entry in self.tasks:
            if not isinstance(entry, dict):
                raise ProtocolError(
                    f"{self.TYPE}.tasks entries must be objects")
            for key in _STEAL_ENTRY_KEYS:
                if key not in entry:
                    raise ProtocolError(
                        f"{self.TYPE} entry missing {key!r}")
                _need_int(self.TYPE, f"tasks[].{key}", entry[key],
                          minimum=0)
            _need_int_list(self.TYPE, "tasks[].files",
                           entry.get("files"))
            _need_number(self.TYPE, "tasks[].flops",
                         entry.get("flops"))
