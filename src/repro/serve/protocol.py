"""JSON-lines wire protocol between scheduler daemon and workers.

One message per line, UTF-8 JSON with a mandatory string ``type``
field.  Strict request/response: every client message gets exactly one
reply, in order, so clients never need to correlate (a parked
``REQUEST_TASK`` simply delays its reply until a task frees up or the
job ends).

Client -> server
----------------
``HELLO``         ``{worker, site}`` — register; must precede the rest.
``REQUEST_TASK``  pull the next task for the client's site.
``TASK_DONE``     ``{task_id}`` — a task finished (duplicate-tolerant).
``FILE_DELTA``    ``{added, removed, referenced}`` — site cache deltas.
``JOB_SUBMIT``    ``{tasks: [{files, flops}, ...]}`` — append work.
``STATS``         request the observability snapshot.
``DRAIN``         stop handing out tasks; shut down once idle.

Server -> client
----------------
``WELCOME``       hello ack: server name, metric, n.
``TASK``          ``{task_id, files, flops}`` — an assignment.
``NO_TASK``       ``{reason}`` — nothing left (or draining): disconnect.
``ACK``           generic success (``TASK_DONE``/``FILE_DELTA``/...).
``JOB_ACCEPTED``  ``{job_id, task_ids}`` — globally-assigned task ids.
``STATS``         ``{stats}`` — the snapshot.
``ERROR``         ``{error}`` — the request was rejected.
"""

from __future__ import annotations

import json
from typing import Any, Dict

#: Hard cap on one encoded message; JOB_SUBMIT chunks below this.
MAX_MESSAGE_BYTES = 1 << 20

# client -> server
HELLO = "HELLO"
REQUEST_TASK = "REQUEST_TASK"
TASK_DONE = "TASK_DONE"
FILE_DELTA = "FILE_DELTA"
JOB_SUBMIT = "JOB_SUBMIT"
STATS = "STATS"
DRAIN = "DRAIN"

# server -> client
WELCOME = "WELCOME"
TASK = "TASK"
NO_TASK = "NO_TASK"
ACK = "ACK"
JOB_ACCEPTED = "JOB_ACCEPTED"
ERROR = "ERROR"

CLIENT_TYPES = frozenset({HELLO, REQUEST_TASK, TASK_DONE, FILE_DELTA,
                          JOB_SUBMIT, STATS, DRAIN})


class ProtocolError(ValueError):
    """A message violated the wire format."""


def encode(message: Dict[str, Any]) -> bytes:
    """One message -> one ``\\n``-terminated JSON line."""
    if "type" not in message:
        raise ProtocolError("message has no 'type'")
    line = json.dumps(message, separators=(",", ":"),
                      ensure_ascii=True).encode("ascii")
    if len(line) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(line)} bytes exceeds {MAX_MESSAGE_BYTES}")
    return line + b"\n"


def decode(line: bytes) -> Dict[str, Any]:
    """One received line -> message dict (validated)."""
    if len(line) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"line of {len(line)} bytes exceeds {MAX_MESSAGE_BYTES}")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"bad JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message must be an object, got {type(message).__name__}")
    kind = message.get("type")
    if not isinstance(kind, str):
        raise ProtocolError("message 'type' missing or not a string")
    return message


def int_list(message: Dict[str, Any], field: str) -> list:
    """Validate an optional homogeneous list-of-ints field."""
    value = message.get(field, [])
    if not isinstance(value, list) or any(
            not isinstance(item, int) for item in value):
        raise ProtocolError(f"{field!r} must be a list of ints")
    return value
