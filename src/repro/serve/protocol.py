"""Wire protocol between scheduler daemon and workers (v3).

Messages are typed (one frozen dataclass per message type, in
:mod:`repro.serve.messages`); *how* they travel is a per-connection
:class:`~repro.serve.codec.Codec` chosen at ``HELLO`` time.  Strict
request/response: every client message gets exactly one reply, in
order, so clients never need to correlate (a parked ``REQUEST_TASK``
simply delays its reply until a task frees up or the job ends).

This module is the thin constants-and-negotiation layer: wire type
names, version/codec negotiation, JSON line framing primitives, and
low-level field validators.  The codec implementations live in
:mod:`repro.serve.codec`.

Protocol version 3 (see ``docs/architecture.md`` for the full
reference) adds on top of v2:

* **codec negotiation** — ``HELLO`` may carry ``codecs``, an ordered
  capability list (e.g. ``["binary-1", "json-2"]``); the server picks
  the first mutually-supported name, replies with it as
  ``WELCOME.codec`` (or ``REDIRECT.codec`` at a router), and both
  sides switch immediately after that exchange.  A ``HELLO`` without
  ``codecs`` — every v2 client — keeps JSON lines end to end, so v2
  peers interoperate unmodified.
* **binary framing** — the ``binary-1`` codec: length-prefixed,
  struct-packed frames (see :mod:`repro.serve.codec`).
* Connections always *start* in JSON lines; ``HELLO`` itself is never
  binary.  Clients must await the ``HELLO`` reply before sending more
  (pipelining across negotiation is a protocol error).

Protocol version 2 added on top of v1:

* **version negotiation** — ``HELLO`` carries ``protocol``; the
  server rejects unsupported versions with a clean ``ERROR``.  A v3
  server accepts ``protocol`` 2 and 3.
* **leases** — every ``TASK`` reply carries a ``lease_id`` and a TTL;
  ``TASK_DONE`` must present the lease, and ``HEARTBEAT`` renews it.
  An expired lease requeues the task to another worker.
* **multi-job tenancy** — ``JOB_SUBMIT`` tracks completion per
  ``job_id``, ``REQUEST_TASK`` can scope to a job, ``JOB_STATUS``
  reports per-job progress, and ``NO_TASK.reason`` is a closed enum
  distinguishing "your job is done" from "server idle/draining".

Client -> server
----------------
``HELLO``         ``{worker, site, protocol}`` — register; must precede
                  the rest.
``REQUEST_TASK``  ``{job_id?, max_tasks?}`` — pull the next task(s) for
                  the client's site, optionally scoped to one job.
                  ``max_tasks`` (v2-compatible: absent means 1) asks
                  for up to k leased tasks in one ``TASK_BATCH`` reply.
``TASK_DONE``     ``{task_id, lease_id}`` — a task finished; the lease
                  must still be valid or the completion is rejected.
``HEARTBEAT``     ``{lease_ids?}`` — renew leases (all held if omitted).
``FILE_DELTA``    ``{added, removed, referenced}`` — site cache deltas.
``JOB_SUBMIT``    ``{tasks: [{files, flops}, ...], job_id?}`` — append
                  work (to an existing job when ``job_id`` is given).
``JOB_STATUS``    ``{job_id}`` — per-job completion counters.
``STATS``         request the observability snapshot.
``DRAIN``         stop handing out tasks; shut down once idle.
``STEAL_REQUEST`` ``{max_tasks, site_refsums}`` — a drained peer shard
                  (the thief) asks this shard (the victim) to export a
                  batch of pending, unleased tasks; ``site_refsums``
                  describes the thief's site caches so the victim can
                  pick the tasks with the lowest locality loss.
``STEAL_ACK``     ``{export_id}`` — the thief durably recorded the
                  grant and asks the victim to commit the export.
                  Answered with ``ACK``: ``accepted`` tells the thief
                  whether to activate (true) or drop (false) the batch.
``STEAL_DONE``    ``{task_ids}`` — completions of previously stolen
                  tasks, forwarded back to the owning shard so per-job
                  counters stay exact.  Idempotent.

Server -> client
----------------
``WELCOME``        hello ack: server name, metric, n, protocol version,
                   lease TTL and suggested heartbeat interval.
``TASK``           ``{task_id, files, flops, lease_id, lease_ttl,
                   job_id}`` — a leased assignment.
``TASK_BATCH``     ``{tasks: [{task_id, files, flops, lease_id,
                   job_id}, ...], lease_ttl}`` — up to ``max_tasks``
                   leased assignments, one lease per task; only ever
                   sent in reply to a ``REQUEST_TASK`` that carried
                   ``max_tasks``.
``NO_TASK``        ``{reason}`` — one of :data:`NO_TASK_REASONS`;
                   disconnect.  Batched requests get the same closed
                   enum.
``ACK``            ``{accepted, reason?}`` — success/rejection for
                   ``TASK_DONE``/``FILE_DELTA``/``DRAIN``.
``HEARTBEAT_ACK``  ``{renewed, expired}`` — lease renewal outcome.
``JOB_ACCEPTED``   ``{job_id, task_ids}`` — globally-assigned task ids.
``JOB_STATUS``     ``{job_id, tasks, completed, pending, outstanding,
                   done}`` — the per-job snapshot.
``STATS``          ``{stats}`` — the snapshot.
``REDIRECT``       ``{shards, partition, shard_count}`` — cluster
                   router's answer to a ``HELLO`` that carried
                   ``accept_redirect``: the shard map (one
                   ``{shard, host, port}`` entry per shard) plus the
                   partition rule (``job-mod``: ``job_id %
                   shard_count`` names the owning shard).  The
                   connection stays open for control traffic (submit,
                   status, stats, drain); data-plane messages must go
                   to the shard.  A ``HELLO`` *without*
                   ``accept_redirect`` at a router gets a clean
                   ``ERROR`` — old clients are never silently
                   misrouted.
``ERROR``          ``{error}`` — the request was rejected.
``STEAL_GRANT``    ``{export_id?, tasks}`` — reply to ``STEAL_REQUEST``:
                   the exported batch (``{task_id, job_id, files,
                   flops}`` per entry), already removed from the
                   victim's pending queue and durably WAL-logged.  An
                   empty ``tasks`` (no ``export_id``) is a refusal.
"""

from __future__ import annotations

import dataclasses
import json
import warnings
from typing import Any, Dict, Iterable, List, Sequence

#: The protocol version this codebase offers in its own ``HELLO``.
PROTOCOL_VERSION = 3

#: ``HELLO.protocol`` values a v3 endpoint accepts.  v2 peers (JSON
#: lines, no ``codecs`` field) interoperate unmodified.
SUPPORTED_PROTOCOLS = frozenset({2, 3})

#: ``"2-3"`` — for ERROR texts during version negotiation.
SUPPORTED_PROTOCOLS_TEXT = "-".join(
    str(version) for version in sorted(SUPPORTED_PROTOCOLS))

#: Hard cap on one encoded message; JOB_SUBMIT chunks below this.
MAX_MESSAGE_BYTES = 1 << 20

# client -> server
HELLO = "HELLO"
REQUEST_TASK = "REQUEST_TASK"
TASK_DONE = "TASK_DONE"
HEARTBEAT = "HEARTBEAT"
FILE_DELTA = "FILE_DELTA"
JOB_SUBMIT = "JOB_SUBMIT"
JOB_STATUS = "JOB_STATUS"
STATS = "STATS"
DRAIN = "DRAIN"
# Shard-to-shard work stealing (the thief is the TCP client).
STEAL_REQUEST = "STEAL_REQUEST"
STEAL_ACK = "STEAL_ACK"
STEAL_DONE = "STEAL_DONE"

# server -> client
WELCOME = "WELCOME"
TASK = "TASK"
TASK_BATCH = "TASK_BATCH"
NO_TASK = "NO_TASK"
ACK = "ACK"
HEARTBEAT_ACK = "HEARTBEAT_ACK"
JOB_ACCEPTED = "JOB_ACCEPTED"
REDIRECT = "REDIRECT"
ERROR = "ERROR"
STEAL_GRANT = "STEAL_GRANT"

CLIENT_TYPES = frozenset({HELLO, REQUEST_TASK, TASK_DONE, HEARTBEAT,
                          FILE_DELTA, JOB_SUBMIT, JOB_STATUS, STATS,
                          DRAIN, STEAL_REQUEST, STEAL_ACK, STEAL_DONE})

#: ``NO_TASK.reason`` is a closed enum — clients may switch on it.
REASON_JOB_DONE = "job-done"    #: the job you scoped to is complete
REASON_IDLE = "idle"            #: all submitted work is complete
REASON_DRAINING = "draining"    #: the server is shutting down

NO_TASK_REASONS = frozenset({REASON_JOB_DONE, REASON_IDLE,
                             REASON_DRAINING})

#: ``ACK.reason`` when admission control rejects a ``JOB_SUBMIT``
#: because the pending queue is over its watermark; the ack carries
#: ``retry_after`` seconds the submitter should back off before
#: retrying the same chunk.
REASON_OVERLOADED = "overloaded"

# -- codec negotiation --------------------------------------------------------

#: Negotiation name of the v2 JSON-lines wire format (the fallback
#: every endpoint must speak).
CODEC_JSON = "json-2"
#: Negotiation name of the v3 length-prefixed binary frame format.
CODEC_BINARY = "binary-1"

#: What this codebase offers/accepts, in preference order.
DEFAULT_CODECS = (CODEC_BINARY, CODEC_JSON)

#: The ``--codec`` CLI/kwarg vocabulary -> ``HELLO.codecs`` offers.
CODEC_OPTIONS = ("auto", "json", "binary")


@dataclasses.dataclass(frozen=True)
class CodecNegotiation:
    """What a connection's ``HELLO`` exchange settled on."""

    protocol: int
    codec: str


def negotiate_codec(offered: Iterable[str],
                    supported: Sequence[str] = DEFAULT_CODECS) -> str:
    """Server-side pick: first of the client's ``offered`` names this
    side supports; JSON lines when nothing matches (or the client
    offered nothing) — the fallback every v2 peer speaks."""
    supported_set = frozenset(supported)
    for name in offered:
        if name in supported_set:
            return name
    return CODEC_JSON


def codec_offers(option: str) -> List[str]:
    """``--codec`` option (``auto``/``json``/``binary`` or an exact
    codec name) -> the ordered ``HELLO.codecs`` capability list."""
    if option == "auto":
        return list(DEFAULT_CODECS)
    if option == "json" or option == CODEC_JSON:
        return [CODEC_JSON]
    if option == "binary" or option == CODEC_BINARY:
        return [CODEC_BINARY]
    raise ValueError(
        f"codec must be one of {CODEC_OPTIONS} "
        f"or {DEFAULT_CODECS}, got {option!r}")


class ProtocolError(ValueError):
    """A message violated the wire format."""


#: Shared encoder: ``json.dumps`` with non-default separators builds a
#: fresh ``JSONEncoder`` per call, which shows up at wire rates.
_ENCODER = json.JSONEncoder(separators=(",", ":"), ensure_ascii=True)


def encode_line(message: Dict[str, Any]) -> bytes:
    """One message dict -> one ``\\n``-terminated JSON line (the
    ``json-2`` wire format)."""
    if "type" not in message:
        raise ProtocolError("message has no 'type'")
    line = _ENCODER.encode(message).encode("ascii")
    if len(line) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(line)} bytes exceeds {MAX_MESSAGE_BYTES}")
    return line + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """One received JSON line -> message dict (validated)."""
    if len(line) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"line of {len(line)} bytes exceeds {MAX_MESSAGE_BYTES}")
    try:
        # Explicit decode: skips json's pure-python encoding sniffing
        # and turns undecodable bytes into a clean ProtocolError.
        message = json.loads(line.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"bad JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message must be an object, got {type(message).__name__}")
    kind = message.get("type")
    if not isinstance(kind, str):
        raise ProtocolError("message 'type' missing or not a string")
    return message


def encode(message: Dict[str, Any]) -> bytes:
    """Deprecated v2 free function; use a
    :class:`repro.serve.codec.Codec` (or :func:`encode_line` for raw
    JSON-lines framing).  Will be removed with protocol v4."""
    warnings.warn(
        "repro.serve.protocol.encode() is deprecated since protocol "
        "v3; use a repro.serve.codec.Codec instance (or encode_line "
        "for raw JSON-lines framing)",
        DeprecationWarning, stacklevel=2)
    return encode_line(message)


def decode(line: bytes) -> Dict[str, Any]:
    """Deprecated v2 free function; use a
    :class:`repro.serve.codec.Codec` (or :func:`decode_line` for raw
    JSON-lines framing).  Will be removed with protocol v4."""
    warnings.warn(
        "repro.serve.protocol.decode() is deprecated since protocol "
        "v3; use a repro.serve.codec.Codec instance (or decode_line "
        "for raw JSON-lines framing)",
        DeprecationWarning, stacklevel=2)
    return decode_line(line)


def is_int(value: Any) -> bool:
    """True for real ints only — ``bool`` is a subclass of ``int`` in
    Python, so ``isinstance(True, int)`` holds and would let ``true``
    masquerade as a file or task id on the wire."""
    return isinstance(value, int) and not isinstance(value, bool)


def int_list(message: Dict[str, Any], field: str) -> list:
    """Validate an optional homogeneous list-of-ints field."""
    value = message.get(field, [])
    if not isinstance(value, list) or any(
            not is_int(item) for item in value):
        raise ProtocolError(f"{field!r} must be a list of ints")
    return value
