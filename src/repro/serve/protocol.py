"""JSON-lines wire protocol between scheduler daemon and workers (v2).

One message per line, UTF-8 JSON with a mandatory string ``type``
field.  Strict request/response: every client message gets exactly one
reply, in order, so clients never need to correlate (a parked
``REQUEST_TASK`` simply delays its reply until a task frees up or the
job ends).

This module is the thin codec layer: wire constants, line framing, and
low-level field validators.  The typed message surface — one frozen
dataclass per message type with ``encode()``/``decode()`` round-trip —
lives in :mod:`repro.serve.messages`.

Protocol version 2 (see ``docs/architecture.md`` for the full
reference) adds on top of v1:

* **version negotiation** — ``HELLO`` carries ``protocol: 2``; the
  server rejects other versions with a clean ``ERROR``.
* **leases** — every ``TASK`` reply carries a ``lease_id`` and a TTL;
  ``TASK_DONE`` must present the lease, and ``HEARTBEAT`` renews it.
  An expired lease requeues the task to another worker.
* **multi-job tenancy** — ``JOB_SUBMIT`` tracks completion per
  ``job_id``, ``REQUEST_TASK`` can scope to a job, ``JOB_STATUS``
  reports per-job progress, and ``NO_TASK.reason`` is a closed enum
  distinguishing "your job is done" from "server idle/draining".

Client -> server
----------------
``HELLO``         ``{worker, site, protocol}`` — register; must precede
                  the rest.
``REQUEST_TASK``  ``{job_id?, max_tasks?}`` — pull the next task(s) for
                  the client's site, optionally scoped to one job.
                  ``max_tasks`` (v2-compatible: absent means 1) asks
                  for up to k leased tasks in one ``TASK_BATCH`` reply.
``TASK_DONE``     ``{task_id, lease_id}`` — a task finished; the lease
                  must still be valid or the completion is rejected.
``HEARTBEAT``     ``{lease_ids?}`` — renew leases (all held if omitted).
``FILE_DELTA``    ``{added, removed, referenced}`` — site cache deltas.
``JOB_SUBMIT``    ``{tasks: [{files, flops}, ...], job_id?}`` — append
                  work (to an existing job when ``job_id`` is given).
``JOB_STATUS``    ``{job_id}`` — per-job completion counters.
``STATS``         request the observability snapshot.
``DRAIN``         stop handing out tasks; shut down once idle.

Server -> client
----------------
``WELCOME``        hello ack: server name, metric, n, protocol version,
                   lease TTL and suggested heartbeat interval.
``TASK``           ``{task_id, files, flops, lease_id, lease_ttl,
                   job_id}`` — a leased assignment.
``TASK_BATCH``     ``{tasks: [{task_id, files, flops, lease_id,
                   job_id}, ...], lease_ttl}`` — up to ``max_tasks``
                   leased assignments, one lease per task; only ever
                   sent in reply to a ``REQUEST_TASK`` that carried
                   ``max_tasks``.
``NO_TASK``        ``{reason}`` — one of :data:`NO_TASK_REASONS`;
                   disconnect.  Batched requests get the same closed
                   enum.
``ACK``            ``{accepted, reason?}`` — success/rejection for
                   ``TASK_DONE``/``FILE_DELTA``/``DRAIN``.
``HEARTBEAT_ACK``  ``{renewed, expired}`` — lease renewal outcome.
``JOB_ACCEPTED``   ``{job_id, task_ids}`` — globally-assigned task ids.
``JOB_STATUS``     ``{job_id, tasks, completed, pending, outstanding,
                   done}`` — the per-job snapshot.
``STATS``          ``{stats}`` — the snapshot.
``REDIRECT``       ``{shards, partition, shard_count}`` — cluster
                   router's answer to a ``HELLO`` that carried
                   ``accept_redirect``: the shard map (one
                   ``{shard, host, port}`` entry per shard) plus the
                   partition rule (``job-mod``: ``job_id %
                   shard_count`` names the owning shard).  The
                   connection stays open for control traffic (submit,
                   status, stats, drain); data-plane messages must go
                   to the shard.  A ``HELLO`` *without*
                   ``accept_redirect`` at a router gets a clean
                   ``ERROR`` — old clients are never silently
                   misrouted.
``ERROR``          ``{error}`` — the request was rejected.
"""

from __future__ import annotations

import json
from typing import Any, Dict

#: The protocol version this codebase speaks.  ``HELLO`` messages must
#: carry it; anything else is rejected during negotiation.
PROTOCOL_VERSION = 2

#: Hard cap on one encoded message; JOB_SUBMIT chunks below this.
MAX_MESSAGE_BYTES = 1 << 20

# client -> server
HELLO = "HELLO"
REQUEST_TASK = "REQUEST_TASK"
TASK_DONE = "TASK_DONE"
HEARTBEAT = "HEARTBEAT"
FILE_DELTA = "FILE_DELTA"
JOB_SUBMIT = "JOB_SUBMIT"
JOB_STATUS = "JOB_STATUS"
STATS = "STATS"
DRAIN = "DRAIN"

# server -> client
WELCOME = "WELCOME"
TASK = "TASK"
TASK_BATCH = "TASK_BATCH"
NO_TASK = "NO_TASK"
ACK = "ACK"
HEARTBEAT_ACK = "HEARTBEAT_ACK"
JOB_ACCEPTED = "JOB_ACCEPTED"
REDIRECT = "REDIRECT"
ERROR = "ERROR"

CLIENT_TYPES = frozenset({HELLO, REQUEST_TASK, TASK_DONE, HEARTBEAT,
                          FILE_DELTA, JOB_SUBMIT, JOB_STATUS, STATS,
                          DRAIN})

#: ``NO_TASK.reason`` is a closed enum — clients may switch on it.
REASON_JOB_DONE = "job-done"    #: the job you scoped to is complete
REASON_IDLE = "idle"            #: all submitted work is complete
REASON_DRAINING = "draining"    #: the server is shutting down

NO_TASK_REASONS = frozenset({REASON_JOB_DONE, REASON_IDLE,
                             REASON_DRAINING})


class ProtocolError(ValueError):
    """A message violated the wire format."""


#: Shared encoder: ``json.dumps`` with non-default separators builds a
#: fresh ``JSONEncoder`` per call, which shows up at wire rates.
_ENCODER = json.JSONEncoder(separators=(",", ":"), ensure_ascii=True)


def encode(message: Dict[str, Any]) -> bytes:
    """One message -> one ``\\n``-terminated JSON line."""
    if "type" not in message:
        raise ProtocolError("message has no 'type'")
    line = _ENCODER.encode(message).encode("ascii")
    if len(line) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(line)} bytes exceeds {MAX_MESSAGE_BYTES}")
    return line + b"\n"


def decode(line: bytes) -> Dict[str, Any]:
    """One received line -> message dict (validated)."""
    if len(line) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"line of {len(line)} bytes exceeds {MAX_MESSAGE_BYTES}")
    try:
        # Explicit decode: skips json's pure-python encoding sniffing
        # and turns undecodable bytes into a clean ProtocolError.
        message = json.loads(line.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"bad JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message must be an object, got {type(message).__name__}")
    kind = message.get("type")
    if not isinstance(kind, str):
        raise ProtocolError("message 'type' missing or not a string")
    return message


def is_int(value: Any) -> bool:
    """True for real ints only — ``bool`` is a subclass of ``int`` in
    Python, so ``isinstance(True, int)`` holds and would let ``true``
    masquerade as a file or task id on the wire."""
    return isinstance(value, int) and not isinstance(value, bool)


def int_list(message: Dict[str, Any], field: str) -> list:
    """Validate an optional homogeneous list-of-ints field."""
    value = message.get(field, [])
    if not isinstance(value, list) or any(
            not is_int(item) for item in value):
        raise ProtocolError(f"{field!r} must be a list of ints")
    return value
