"""Record a simulated schedule; replay it into a sim-free engine.

The live service trusts :class:`~repro.core.policy_engine.PolicyEngine`
to make the same decisions the validated simulator makes.  This module
is the proof harness: :func:`record_run` executes a normal simulation
with a :class:`WorkerCentricScheduler` while logging the *exact*
information the live engine would receive over the wire — site
registrations, task arrivals, storage insert/evict/touch deltas — plus
every decision taken.  :func:`replay_decisions` then feeds the same
stream into a fresh delta-driven :class:`PolicyEngine` and returns the
decisions it makes.  Equality of the two decision sequences (asserted
property-style in the test suite, across metrics × n × seeds) is the
guarantee that deploying the engine behind TCP changes nothing about
the policy.

Events are uniform ``(kind, site_id, value)`` tuples:

======== ========= ===========================================
kind     site_id   value
======== ========= ===========================================
"site"   site id   ``-1`` (site registered, in watch order)
"add"    ``-1``    task id entering the pending set
"insert" site id   file id becoming resident
"evict"  site id   file id leaving residency
"touch"  site id   file id referenced (``r_i`` += 1)
"choose" site id   task id the scheduler picked
======== ========= ===========================================
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..core.policy_engine import PolicyEngine
from ..core.worker_centric import WorkerCentricScheduler
from ..grid.cluster import Grid
from ..grid.job import Job
from ..net.tiers import TiersParams, generate as generate_tiers
from ..sim.engine import Environment

Event = Tuple[str, int, int]


def instrument_engine(engine: PolicyEngine, events: List[Event]) -> None:
    """Shadow an engine's entry points so they log to ``events``.

    Must run before the scheduler binds (sites and initial tasks are
    registered at bind time and belong in the log).
    """
    orig_watch = engine.watch_storage
    orig_add = engine.add_task
    orig_choose = engine.choose

    def watch_storage(site_id, storage):
        orig_watch(site_id, storage)
        events.append(("site", site_id, -1))
        storage.on_insert(
            lambda fid, s=site_id: events.append(("insert", s, fid)))
        storage.on_evict(
            lambda fid, s=site_id: events.append(("evict", s, fid)))
        storage.on_touch(
            lambda fid, s=site_id: events.append(("touch", s, fid)))

    def add_task(task):
        orig_add(task)
        events.append(("add", -1, task.task_id))

    def choose(site_id):
        task = orig_choose(site_id)
        events.append(("choose", site_id, task.task_id))
        return task

    engine.watch_storage = watch_storage
    engine.add_task = add_task
    engine.choose = choose


def record_run(job: Job, metric: str = "rest", n: int = 1, seed: int = 0,
               *, num_sites: int = 2, workers_per_site: int = 1,
               capacity_files: int = 100, speed_mflops: float = 1000.0,
               topology_seed: int = 1,
               initial_task_ids=None) -> List[Event]:
    """Simulate ``job`` under the worker-centric policy, logging deltas."""
    env = Environment()
    topology = generate_tiers(TiersParams(num_sites=num_sites),
                              seed=topology_seed)
    speeds = [[speed_mflops] * workers_per_site
              for _ in range(num_sites)]
    grid = Grid(env, topology, job, capacity_files, speeds)
    scheduler = WorkerCentricScheduler(
        job, metric=metric, n=n, rng=random.Random(seed),
        initial_task_ids=initial_task_ids)
    events: List[Event] = []
    instrument_engine(scheduler.engine, events)
    grid.attach_scheduler(scheduler)
    grid.run()
    return events


def recorded_decisions(events: List[Event]) -> List[Tuple[int, int]]:
    """The ``(site_id, task_id)`` decision sequence of a recording."""
    return [(site_id, value) for kind, site_id, value in events
            if kind == "choose"]


def replay_decisions(job, events: List[Event], metric: str = "rest",
                     n: int = 1, seed: int = 0,
                     engine: Optional[PolicyEngine] = None,
                     ) -> List[Tuple[int, int]]:
    """Drive a delta-fed engine through a recording; return its picks.

    The engine sees only what a live server would: registrations,
    arrivals and file deltas.  At each "choose" event it makes its own
    decision (the recording's choice is *not* consulted), so comparing
    the result against :func:`recorded_decisions` is a real test.
    """
    if engine is None:
        engine = PolicyEngine(job, metric=metric, n=n,
                              rng=random.Random(seed))
    decisions: List[Tuple[int, int]] = []
    for kind, site_id, value in events:
        if kind == "site":
            engine.attach_site(site_id)
        elif kind == "add":
            engine.add_task(job[value])
        elif kind == "insert":
            engine.file_added(site_id, value)
        elif kind == "evict":
            engine.file_removed(site_id, value)
        elif kind == "touch":
            engine.file_referenced(site_id, value)
        elif kind == "choose":
            task = engine.choose(site_id)
            decisions.append((site_id, task.task_id))
            engine.remove_task(task)
        else:
            raise ValueError(f"unknown recorded event kind {kind!r}")
    return decisions
