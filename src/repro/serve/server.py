"""Asyncio TCP front-end for :class:`SchedulerService` (protocol v2).

One coroutine per connection reads newline-framed JSON messages,
decodes them into the typed dataclasses of
:mod:`repro.serve.messages`, calls into the single-threaded service,
and writes the typed reply.  Backpressure is per-connection: every
write is followed by ``await writer.drain()``, so a slow worker
throttles only its own stream, never the scheduler.  A parked
``REQUEST_TASK`` blocks only that connection's read loop — the client
is waiting for the reply anyway — while other connections keep being
served.

Version negotiation: ``HELLO`` must carry ``protocol == 2``.  A v1
client (or any other version) gets a clean ``ERROR`` naming the
supported version and its connection is closed — never a crash or a
silent hang.

Lease sweeping: :meth:`start` spawns a monotonic-clock sweeper task
that calls :meth:`SchedulerService.expire_leases` every
``sweep_interval`` seconds, so a worker that dies *without* closing
its TCP connection (kill -9, network partition, frozen VM) still has
its tasks requeued within one lease TTL plus one sweep.

Shutdown: a ``DRAIN`` message (or :meth:`SchedulerServer.drain`) flips
the service into draining mode; once the last outstanding task
completes the server closes its listener and all idle connections, and
:meth:`serve_until_drained` returns.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
from typing import Optional, Set, Tuple

from . import messages, protocol
from .service import SchedulerService, ServiceError

log = logging.getLogger("repro.serve.server")
stats_log = logging.getLogger("repro.serve.stats")


class SchedulerServer:
    """Serves one :class:`SchedulerService` on a TCP port."""

    def __init__(self, service: SchedulerService,
                 host: str = "127.0.0.1", port: int = 0,
                 sweep_interval: Optional[float] = None,
                 stats_interval: Optional[float] = None):
        self.service = service
        self.host = host
        self.port = port
        #: How often the lease sweeper runs; defaults to a quarter of
        #: the lease TTL (bounded to [10 ms, 1 s]) so expiry lag is a
        #: small fraction of the TTL without busy-looping.
        if sweep_interval is None:
            sweep_interval = min(max(service.lease_ttl / 4.0, 0.01), 1.0)
        self.sweep_interval = sweep_interval
        #: Every ``stats_interval`` seconds the full stats snapshot is
        #: logged as one JSON line at INFO on ``repro.serve.stats`` —
        #: greppable history for runs without a scraper.  None (the
        #: default) disables the ticker.
        if stats_interval is not None and stats_interval <= 0:
            raise ValueError(
                f"stats_interval must be > 0, got {stats_interval}")
        self.stats_interval = stats_interval
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.StreamWriter] = set()
        self._handler_tasks: Set[asyncio.Task] = set()
        self._sweeper: Optional[asyncio.Task] = None
        self._stats_ticker: Optional[asyncio.Task] = None
        self._drained = asyncio.Event()
        self._conn_seq = 0
        service.on_drained = self._drained.set

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        """Bind and listen; resolves :attr:`port` when it was 0."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=protocol.MAX_MESSAGE_BYTES + 1024)
        self.port = self._server.sockets[0].getsockname()[1]
        loop = asyncio.get_running_loop()
        self._sweeper = loop.create_task(self._sweep_leases())
        if self.stats_interval is not None:
            self._stats_ticker = loop.create_task(self._tick_stats())
        log.info("listening on %s:%d (metric=%s, n=%d, lease_ttl=%.1fs)",
                 self.host, self.port, self.service.engine.metric_name,
                 self.service.engine.n, self.service.lease_ttl)

    async def _sweep_leases(self) -> None:
        while True:
            await asyncio.sleep(self.sweep_interval)
            expired = self.service.expire_leases()
            if expired:
                log.info("lease sweep requeued %d task(s)", expired)

    async def _tick_stats(self) -> None:
        while True:
            await asyncio.sleep(self.stats_interval)
            stats_log.info("%s", json.dumps(
                self.service.stats_snapshot(), sort_keys=True,
                separators=(",", ":")))

    async def serve_until_drained(self) -> None:
        """Serve until a DRAIN completes, then close everything."""
        if self._server is None:
            await self.start()
        await self._drained.wait()
        await self.stop()

    def drain(self) -> None:
        log.info("drain requested (%d outstanding, %d queued)",
                 self.service.outstanding, self.service.queue_depth)
        self.service.drain()

    async def stop(self) -> None:
        for task_attr in ("_sweeper", "_stats_ticker"):
            task = getattr(self, task_attr)
            if task is not None:
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task
                setattr(self, task_attr, None)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._connections):
            writer.close()
        if self._handler_tasks:
            # Closed transports EOF the read loops; let them finish so
            # loop teardown never has to cancel a live handler.
            await asyncio.wait(self._handler_tasks, timeout=5)
        self._drained.set()

    # -- per-connection loop ---------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._conn_seq += 1
        worker_key = f"conn-{self._conn_seq}"
        site_id: Optional[int] = None
        self._connections.add(writer)
        self._handler_tasks.add(asyncio.current_task())
        log.debug("connection %s opened", worker_key)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer,
                                     messages.Error("line too long"))
                    break
                if not line:
                    break  # EOF
                if line.strip() == b"":
                    continue
                try:
                    message = messages.decode_client(line)
                except protocol.ProtocolError as exc:
                    await self._send(writer, messages.Error(str(exc)))
                    continue
                try:
                    reply, site_id, worker_key = await self._dispatch(
                        message, worker_key, site_id)
                except (ServiceError, protocol.ProtocolError) as exc:
                    reply = messages.Error(str(exc))
                await self._send(writer, reply)
                if isinstance(reply, messages.NoTask):
                    break  # the worker is done; close our side too
                if (isinstance(reply, messages.Error)
                        and isinstance(message, messages.Hello)):
                    break  # failed negotiation: clean close
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._handler_tasks.discard(asyncio.current_task())
            self._connections.discard(writer)
            requeued = self.service.disconnect(worker_key)
            if requeued:
                log.info("connection %s closed; requeued %d task(s)",
                         worker_key, requeued)
            else:
                log.debug("connection %s closed", worker_key)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _send(self, writer: asyncio.StreamWriter,
                    message: messages.ServerMessage) -> None:
        writer.write(message.encode())
        await writer.drain()  # per-connection backpressure

    async def _dispatch(self, message: messages.ClientMessage,
                        worker_key: str, site_id: Optional[int],
                        ) -> Tuple[messages.ServerMessage,
                                   Optional[int], str]:
        service = self.service

        if isinstance(message, messages.Hello):
            if message.protocol != protocol.PROTOCOL_VERSION:
                # v1 (or future) clients get a clean refusal, and the
                # read loop closes the connection after sending it.
                return (messages.Error(
                    f"unsupported protocol version {message.protocol}; "
                    f"this server speaks "
                    f"{protocol.PROTOCOL_VERSION}"), site_id, worker_key)
            worker_key = f"{message.worker}/{worker_key}"
            service.ensure_site(message.site)
            return (messages.Welcome(
                server=service.name,
                metric=service.engine.metric_name,
                n=service.engine.n,
                protocol=protocol.PROTOCOL_VERSION,
                lease_ttl=service.lease_ttl,
                heartbeat_interval=service.heartbeat_interval),
                message.site, worker_key)

        if isinstance(message, messages.RequestTask):
            if site_id is None:
                raise protocol.ProtocolError("REQUEST_TASK before HELLO")
            future: asyncio.Future = (
                asyncio.get_running_loop().create_future())

            def deliver(outcome) -> None:
                if not future.done():
                    future.set_result(outcome)

            if message.max_tasks is None:
                # Plain v2 single-task pull: unchanged TASK reply.
                service.request_task(worker_key, site_id, deliver,
                                     job_id=message.job_id)
            else:
                service.request_tasks(worker_key, site_id,
                                      message.max_tasks, deliver,
                                      job_id=message.job_id)
            outcome = await future
            if isinstance(outcome, str):  # a NO_TASK reason
                # Batched or not, the refusal carries the same closed
                # reason enum.
                return (messages.NoTask(reason=outcome),
                        site_id, worker_key)
            if isinstance(outcome, list):  # batched pull
                return (messages.TaskBatch(
                    tasks=[{"task_id": granted.task.task_id,
                            "files": sorted(granted.task.files),
                            "flops": granted.task.flops,
                            "lease_id": granted.lease_id,
                            "job_id": granted.job_id}
                           for granted in outcome],
                    lease_ttl=service.lease_ttl), site_id, worker_key)
            return (messages.TaskAssign(
                task_id=outcome.task.task_id,
                files=sorted(outcome.task.files),
                flops=outcome.task.flops,
                lease_id=outcome.lease_id,
                lease_ttl=outcome.lease_ttl,
                job_id=outcome.job_id), site_id, worker_key)

        if isinstance(message, messages.TaskDone):
            result = service.task_done(worker_key, message.task_id,
                                       message.lease_id)
            return (messages.Ack(accepted=result.accepted,
                                 reason=result.reason),
                    site_id, worker_key)

        if isinstance(message, messages.Heartbeat):
            renewed, gone = service.heartbeat(worker_key,
                                              message.lease_ids)
            return (messages.HeartbeatAck(renewed=renewed, expired=gone),
                    site_id, worker_key)

        if isinstance(message, messages.FileDelta):
            site = message.site if message.site is not None else site_id
            if site is None:
                raise protocol.ProtocolError(
                    "FILE_DELTA needs an int 'site' (or a prior HELLO)")
            service.file_delta(site, added=message.added,
                               removed=message.removed,
                               referenced=message.referenced)
            return (messages.Ack(), site_id, worker_key)

        if isinstance(message, messages.JobSubmit):
            accepted = service.submit_job(message.tasks,
                                          job_id=message.job_id)
            return (messages.JobAccepted(**accepted),
                    site_id, worker_key)

        if isinstance(message, messages.JobStatusRequest):
            return (messages.JobStatusReply(
                **service.job_status(message.job_id)),
                site_id, worker_key)

        if isinstance(message, messages.StatsRequest):
            return (messages.StatsReply(stats=service.stats_snapshot()),
                    site_id, worker_key)

        if isinstance(message, messages.Drain):
            service.drain()
            return (messages.Ack(draining=True), site_id, worker_key)

        raise protocol.ProtocolError(
            f"unhandled message type {message.TYPE!r}")
