"""Asyncio TCP front-end for :class:`SchedulerService` (protocol v3).

One coroutine per connection reads socket chunks, feeds them through
the connection's :class:`~repro.serve.codec.Codec` (JSON lines until
``HELLO`` negotiates otherwise, binary frames after), dispatches each
decoded message into the single-threaded service, and writes the
replies back.  I/O is coalesced per burst: one ``read()`` can surface
a whole pipelined ``TASK_DONE`` train or ``TASK_BATCH`` worth of
messages, and their replies accumulate into a single buffered
write + ``drain()`` instead of one syscall per message.
Backpressure stays per-connection — the drain happens on the
connection's own writer, so a slow worker throttles only its own
stream, never the scheduler.  A parked ``REQUEST_TASK`` blocks only
that connection's read loop (already-buffered replies are flushed
first, so pipelined acks are never held hostage by a parked pull).

Version negotiation: ``HELLO`` must carry a ``protocol`` in
:data:`~repro.serve.protocol.SUPPORTED_PROTOCOLS` (2 or 3).  Anything
else gets a clean ``ERROR`` naming the supported range and its
connection is closed — never a crash or a silent hang.  When the
``HELLO`` offers ``codecs``, the server picks the first mutual name,
announces it in ``WELCOME.codec``, and switches the connection's
codec right after encoding that reply; bytes pipelined *past* the
``HELLO`` before its reply arrived are a protocol error (the client
cannot know the codec they should be in).

Framing errors — bad magic/version, oversized frames or lines,
malformed JSON/msgpack bodies, unknown types — are unrecoverable by
definition (the stream position is lost), so both codecs share the
same closed-ERROR behavior: the server sends one final ``ERROR`` and
closes the connection.  Semantic errors on well-framed messages
(``REQUEST_TASK`` before ``HELLO``, a stale lease, an unknown job)
still get an ``ERROR``/negative-ack reply on a connection that stays
open.

Lease sweeping: :meth:`start` spawns a monotonic-clock sweeper task
that calls :meth:`SchedulerService.expire_leases` every
``sweep_interval`` seconds, so a worker that dies *without* closing
its TCP connection (kill -9, network partition, frozen VM) still has
its tasks requeued within one lease TTL plus one sweep.

Shutdown: a ``DRAIN`` message (or :meth:`SchedulerServer.drain`) flips
the service into draining mode; once the last outstanding task
completes the server closes its listener and all idle connections, and
:meth:`serve_until_drained` returns.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
from typing import Optional, Sequence, Set

from . import messages, protocol
from .codec import Codec, JsonLinesCodec, make_codec
from .service import AdmissionRejected, SchedulerService, ServiceError

log = logging.getLogger("repro.serve.server")
stats_log = logging.getLogger("repro.serve.stats")

#: One socket read's worth of pipelined traffic.
READ_CHUNK = 64 * 1024


def install_uvloop() -> bool:
    """Swap in uvloop's event-loop policy when the package is
    available; a graceful no-op (returning False) when it is not —
    uvloop is an optional accelerator, never a dependency."""
    try:
        import uvloop
    except ImportError:
        return False
    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
    return True


class _Conn:
    """One connection's mutable state: identity, codec, reply buffer."""

    __slots__ = ("writer", "codec", "out", "worker_key", "site_id",
                 "next_codec")

    def __init__(self, writer: asyncio.StreamWriter, worker_key: str):
        self.writer = writer
        #: Connections always start in JSON lines; ``HELLO`` itself is
        #: never binary.
        self.codec: Codec = JsonLinesCodec(decodes="client")
        self.out = bytearray()
        self.worker_key = worker_key
        self.site_id: Optional[int] = None
        #: Codec name to switch to after the pending reply is encoded
        #: (set while dispatching a ``HELLO`` that offered codecs).
        self.next_codec: Optional[str] = None

    async def flush(self) -> None:
        """One buffered write + drain for everything accumulated."""
        if self.out:
            self.writer.write(bytes(self.out))
            self.out.clear()
            await self.writer.drain()  # per-connection backpressure


class SchedulerServer:
    """Serves one :class:`SchedulerService` on a TCP port."""

    def __init__(self, service: SchedulerService,
                 host: str = "127.0.0.1", port: int = 0,
                 sweep_interval: Optional[float] = None,
                 stats_interval: Optional[float] = None,
                 codecs: Optional[Sequence[str]] = None):
        self.service = service
        self.host = host
        self.port = port
        #: How often the lease sweeper runs; defaults to a quarter of
        #: the lease TTL (bounded to [10 ms, 1 s]) so expiry lag is a
        #: small fraction of the TTL without busy-looping.
        if sweep_interval is None:
            sweep_interval = min(max(service.lease_ttl / 4.0, 0.01), 1.0)
        self.sweep_interval = sweep_interval
        #: Every ``stats_interval`` seconds the full stats snapshot is
        #: logged as one JSON line at INFO on ``repro.serve.stats`` —
        #: greppable history for runs without a scraper.  None (the
        #: default) disables the ticker.
        if stats_interval is not None and stats_interval <= 0:
            raise ValueError(
                f"stats_interval must be > 0, got {stats_interval}")
        self.stats_interval = stats_interval
        #: Wire codecs this server accepts in ``HELLO.codecs``, in its
        #: own preference order.  JSON lines is always spoken (it is
        #: the pre-negotiation format), so a ``(CODEC_BINARY,)``
        #: restriction only stops *negotiating* json-2, it cannot
        #: break v2 clients.
        self.codecs: Sequence[str] = (tuple(codecs) if codecs is not None
                                      else protocol.DEFAULT_CODECS)
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.StreamWriter] = set()
        self._handler_tasks: Set[asyncio.Task] = set()
        self._sweeper: Optional[asyncio.Task] = None
        self._stats_ticker: Optional[asyncio.Task] = None
        self._drained = asyncio.Event()
        self._conn_seq = 0
        service.on_drained = self._drained.set

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        """Bind and listen; resolves :attr:`port` when it was 0."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=protocol.MAX_MESSAGE_BYTES + 1024)
        self.port = self._server.sockets[0].getsockname()[1]
        loop = asyncio.get_running_loop()
        self._sweeper = loop.create_task(self._sweep_leases())
        if self.stats_interval is not None:
            self._stats_ticker = loop.create_task(self._tick_stats())
        log.info("listening on %s:%d (metric=%s, n=%d, lease_ttl=%.1fs)",
                 self.host, self.port, self.service.engine.metric_name,
                 self.service.engine.n, self.service.lease_ttl)

    async def _sweep_leases(self) -> None:
        while True:
            await asyncio.sleep(self.sweep_interval)
            expired = self.service.expire_leases()
            if expired:
                log.info("lease sweep requeued %d task(s)", expired)

    async def _tick_stats(self) -> None:
        while True:
            await asyncio.sleep(self.stats_interval)
            stats_log.info("%s", json.dumps(
                self.service.stats_snapshot(), sort_keys=True,
                separators=(",", ":")))

    async def serve_until_drained(self) -> None:
        """Serve until a DRAIN completes, then close everything."""
        if self._server is None:
            await self.start()
        await self._drained.wait()
        await self.stop()

    def drain(self) -> None:
        log.info("drain requested (%d outstanding, %d queued)",
                 self.service.outstanding, self.service.queue_depth)
        self.service.drain()

    async def stop(self) -> None:
        for task_attr in ("_sweeper", "_stats_ticker"):
            task = getattr(self, task_attr)
            if task is not None:
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task
                setattr(self, task_attr, None)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._connections):
            writer.close()
        if self._handler_tasks:
            # Closed transports EOF the read loops; let them finish so
            # loop teardown never has to cancel a live handler.
            await asyncio.wait(self._handler_tasks, timeout=5)
        self._drained.set()

    # -- per-connection loop ---------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._conn_seq += 1
        conn = _Conn(writer, f"conn-{self._conn_seq}")
        self._connections.add(writer)
        self._handler_tasks.add(asyncio.current_task())
        log.debug("connection %s opened", conn.worker_key)
        try:
            chunk = b""
            closing = False
            while not closing:
                try:
                    inbound = conn.codec.feed(chunk)
                except protocol.ProtocolError as exc:
                    # Framing/decode errors lose the stream position:
                    # one final ERROR, then close (both codecs).
                    conn.out += conn.codec.encode(
                        messages.Error(str(exc)))
                    break
                if not inbound:
                    chunk = await reader.read(READ_CHUNK)
                    if not chunk:
                        break  # EOF
                    continue
                chunk = b""  # drain the codec buffer before reading on
                for index, message in enumerate(inbound):
                    try:
                        reply = await self._dispatch(message, conn)
                    except (ServiceError,
                            protocol.ProtocolError) as exc:
                        reply = messages.Error(str(exc))
                    conn.out += conn.codec.encode(reply)
                    if isinstance(reply, messages.NoTask):
                        # The worker is done; close our side too.
                        closing = True
                        break
                    if (isinstance(reply, messages.Error)
                            and isinstance(message, messages.Hello)):
                        closing = True  # failed negotiation
                        break
                    if conn.next_codec is not None:
                        name, conn.next_codec = conn.next_codec, None
                        if name == conn.codec.name:
                            continue
                        if (index + 1 < len(inbound)
                                or conn.codec.buffered):
                            # The client cannot know which codec bytes
                            # after HELLO should be in until our reply
                            # lands — pipelining across negotiation is
                            # unrecoverable.
                            conn.out += conn.codec.encode(
                                messages.Error(
                                    "messages pipelined across codec "
                                    "negotiation; await the HELLO "
                                    "reply before sending more"))
                            closing = True
                            break
                        conn.codec = make_codec(name, decodes="client")
                # One coalesced write + drain for the whole burst.
                await conn.flush()
            await conn.flush()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._handler_tasks.discard(asyncio.current_task())
            self._connections.discard(writer)
            requeued = self.service.disconnect(conn.worker_key)
            if requeued:
                log.info("connection %s closed; requeued %d task(s)",
                         conn.worker_key, requeued)
            else:
                log.debug("connection %s closed", conn.worker_key)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, message: messages.ClientMessage,
                        conn: _Conn) -> messages.ServerMessage:
        service = self.service

        if isinstance(message, messages.Hello):
            if message.protocol not in protocol.SUPPORTED_PROTOCOLS:
                # v1 (or future) clients get a clean refusal, and the
                # read loop closes the connection after sending it.
                return messages.Error(
                    f"unsupported protocol version {message.protocol}; "
                    f"this server speaks "
                    f"{protocol.SUPPORTED_PROTOCOLS_TEXT}")
            conn.worker_key = f"{message.worker}/{conn.worker_key}"
            conn.site_id = message.site
            codec_name = None
            if message.codecs is not None:
                codec_name = protocol.negotiate_codec(message.codecs,
                                                      self.codecs)
                conn.next_codec = codec_name
            service.ensure_site(message.site)
            return messages.Welcome(
                server=service.name,
                metric=service.engine.metric_name,
                n=service.engine.n,
                protocol=message.protocol,
                lease_ttl=service.lease_ttl,
                heartbeat_interval=service.heartbeat_interval,
                codec=codec_name)

        if isinstance(message, messages.RequestTask):
            if conn.site_id is None:
                raise protocol.ProtocolError("REQUEST_TASK before HELLO")
            future: asyncio.Future = (
                asyncio.get_running_loop().create_future())

            def deliver(outcome) -> None:
                if not future.done():
                    future.set_result(outcome)

            if message.max_tasks is None:
                # Plain v2 single-task pull: unchanged TASK reply.
                service.request_task(conn.worker_key, conn.site_id,
                                     deliver, job_id=message.job_id)
            else:
                service.request_tasks(conn.worker_key, conn.site_id,
                                      message.max_tasks, deliver,
                                      job_id=message.job_id)
            if not future.done():
                # Parking: flush buffered replies (pipelined acks)
                # before waiting, so they are never held hostage.
                await conn.flush()
            outcome = await future
            if isinstance(outcome, str):  # a NO_TASK reason
                # Batched or not, the refusal carries the same closed
                # reason enum.
                return messages.NoTask(reason=outcome)
            if isinstance(outcome, list):  # batched pull
                return messages.TaskBatch(
                    tasks=[{"task_id": granted.task.task_id,
                            "files": sorted(granted.task.files),
                            "flops": granted.task.flops,
                            "lease_id": granted.lease_id,
                            "job_id": granted.job_id}
                           for granted in outcome],
                    lease_ttl=service.lease_ttl)
            return messages.TaskAssign(
                task_id=outcome.task.task_id,
                files=sorted(outcome.task.files),
                flops=outcome.task.flops,
                lease_id=outcome.lease_id,
                lease_ttl=outcome.lease_ttl,
                job_id=outcome.job_id)

        if isinstance(message, messages.TaskDone):
            result = service.task_done(conn.worker_key,
                                       message.task_id,
                                       message.lease_id)
            return messages.Ack(accepted=result.accepted,
                                reason=result.reason)

        if isinstance(message, messages.Heartbeat):
            renewed, gone = service.heartbeat(conn.worker_key,
                                              message.lease_ids)
            return messages.HeartbeatAck(renewed=renewed, expired=gone)

        if isinstance(message, messages.FileDelta):
            site = (message.site if message.site is not None
                    else conn.site_id)
            if site is None:
                raise protocol.ProtocolError(
                    "FILE_DELTA needs an int 'site' (or a prior HELLO)")
            service.file_delta(site, added=message.added,
                               removed=message.removed,
                               referenced=message.referenced)
            return messages.Ack()

        if isinstance(message, messages.JobSubmit):
            try:
                accepted = service.submit_job(message.tasks,
                                              job_id=message.job_id,
                                              weight=message.weight)
            except AdmissionRejected as exc:
                return messages.Ack(accepted=False,
                                    reason=protocol.REASON_OVERLOADED,
                                    retry_after=exc.retry_after)
            return messages.JobAccepted(**accepted)

        if isinstance(message, messages.JobStatusRequest):
            return messages.JobStatusReply(
                **service.job_status(message.job_id))

        if isinstance(message, messages.StatsRequest):
            return messages.StatsReply(stats=service.stats_snapshot())

        if isinstance(message, messages.Drain):
            service.drain()
            return messages.Ack(draining=True)

        if isinstance(message, messages.StealRequest):
            # The thief is this connection; the victim is us.  The
            # export is WAL'd (and flushed) inside the service before
            # the grant is encoded.
            try:
                grant = service.export_steal_batch(
                    conn.worker_key, message.max_tasks,
                    message.site_refsums)
            except Exception:
                service.stats.record_steal_request("error")
                raise
            if grant is None:
                return messages.StealGrant(tasks=[])
            return messages.StealGrant(tasks=grant["tasks"],
                                       export_id=grant["export_id"])

        if isinstance(message, messages.StealAck):
            accepted = service.steal_export_acked(message.export_id)
            return messages.Ack(accepted=accepted)

        if isinstance(message, messages.StealDone):
            service.steal_done(message.task_ids,
                               worker=conn.worker_key)
            return messages.Ack(accepted=True)

        raise protocol.ProtocolError(
            f"unhandled message type {message.TYPE!r}")
