"""Asyncio TCP front-end for :class:`SchedulerService`.

One coroutine per connection reads newline-framed JSON messages
(:mod:`repro.serve.protocol`), calls into the single-threaded service,
and writes the reply.  Backpressure is per-connection: every write is
followed by ``await writer.drain()``, so a slow worker throttles only
its own stream, never the scheduler.  A parked ``REQUEST_TASK`` blocks
only that connection's read loop — the client is waiting for the reply
anyway — while other connections keep being served.

Shutdown: a ``DRAIN`` message (or :meth:`SchedulerServer.drain`) flips
the service into draining mode; once the last outstanding task
completes the server closes its listener and all idle connections, and
:meth:`serve_until_drained` returns.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional, Set

from ..grid.job import Task
from . import protocol
from .service import SchedulerService, ServiceError


class SchedulerServer:
    """Serves one :class:`SchedulerService` on a TCP port."""

    def __init__(self, service: SchedulerService,
                 host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.StreamWriter] = set()
        self._handler_tasks: Set[asyncio.Task] = set()
        self._drained = asyncio.Event()
        self._conn_seq = 0
        service.on_drained = self._drained.set

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        """Bind and listen; resolves :attr:`port` when it was 0."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=protocol.MAX_MESSAGE_BYTES + 1024)
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_until_drained(self) -> None:
        """Serve until a DRAIN completes, then close everything."""
        if self._server is None:
            await self.start()
        await self._drained.wait()
        await self.stop()

    def drain(self) -> None:
        self.service.drain()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._connections):
            writer.close()
        if self._handler_tasks:
            # Closed transports EOF the read loops; let them finish so
            # loop teardown never has to cancel a live handler.
            await asyncio.wait(self._handler_tasks, timeout=5)
        self._drained.set()

    # -- per-connection loop ---------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._conn_seq += 1
        worker_key = f"conn-{self._conn_seq}"
        site_id: Optional[int] = None
        self._connections.add(writer)
        self._handler_tasks.add(asyncio.current_task())
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer, {
                        "type": protocol.ERROR,
                        "error": "line too long"})
                    break
                if not line:
                    break  # EOF
                if line.strip() == b"":
                    continue
                try:
                    message = protocol.decode(line)
                except protocol.ProtocolError as exc:
                    await self._send(writer, {"type": protocol.ERROR,
                                              "error": str(exc)})
                    continue
                try:
                    reply, site_id, worker_key = await self._dispatch(
                        message, worker_key, site_id)
                except (ServiceError, protocol.ProtocolError) as exc:
                    reply = {"type": protocol.ERROR, "error": str(exc)}
                await self._send(writer, reply)
                if reply["type"] == protocol.NO_TASK:
                    break  # the worker is done; close our side too
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._handler_tasks.discard(asyncio.current_task())
            self._connections.discard(writer)
            self.service.disconnect(worker_key)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _send(self, writer: asyncio.StreamWriter,
                    message: Dict) -> None:
        writer.write(protocol.encode(message))
        await writer.drain()  # per-connection backpressure

    async def _dispatch(self, message: Dict, worker_key: str,
                        site_id: Optional[int]):
        kind = message["type"]
        service = self.service
        if kind == protocol.HELLO:
            name = message.get("worker")
            site = message.get("site")
            if not isinstance(name, str) or not isinstance(site, int):
                raise protocol.ProtocolError(
                    "HELLO needs string 'worker' and int 'site'")
            worker_key = f"{name}/{worker_key}"
            service.ensure_site(site)
            return ({"type": protocol.WELCOME, "server": service.name,
                     "metric": service.engine.metric_name,
                     "n": service.engine.n}, site, worker_key)

        if kind == protocol.REQUEST_TASK:
            if site_id is None:
                raise protocol.ProtocolError("REQUEST_TASK before HELLO")
            future: asyncio.Future = (
                asyncio.get_running_loop().create_future())

            def deliver(task: Optional[Task]) -> None:
                if not future.done():
                    future.set_result(task)

            service.request_task(worker_key, site_id, deliver)
            task = await future
            if task is None:
                reason = ("draining" if service.draining
                          else "job complete")
                return ({"type": protocol.NO_TASK, "reason": reason},
                        site_id, worker_key)
            return ({"type": protocol.TASK, "task_id": task.task_id,
                     "files": sorted(task.files), "flops": task.flops},
                    site_id, worker_key)

        if kind == protocol.TASK_DONE:
            duplicate = service.task_done(worker_key,
                                          message.get("task_id"))
            return ({"type": protocol.ACK, "duplicate": duplicate},
                    site_id, worker_key)

        if kind == protocol.FILE_DELTA:
            site = message.get("site", site_id)
            if not isinstance(site, int):
                raise protocol.ProtocolError(
                    "FILE_DELTA needs an int 'site' (or a prior HELLO)")
            service.file_delta(
                site,
                added=protocol.int_list(message, "added"),
                removed=protocol.int_list(message, "removed"),
                referenced=protocol.int_list(message, "referenced"))
            return ({"type": protocol.ACK}, site_id, worker_key)

        if kind == protocol.JOB_SUBMIT:
            accepted = service.submit_job(message.get("tasks"))
            return ({"type": protocol.JOB_ACCEPTED, **accepted},
                    site_id, worker_key)

        if kind == protocol.STATS:
            return ({"type": protocol.STATS,
                     "stats": service.stats_snapshot()},
                    site_id, worker_key)

        if kind == protocol.DRAIN:
            service.drain()
            return ({"type": protocol.ACK, "draining": True},
                    site_id, worker_key)

        raise protocol.ProtocolError(f"unknown message type {kind!r}")
