"""Transport-agnostic scheduler service around a :class:`PolicyEngine`.

The asyncio server in :mod:`repro.serve.server` is a thin shell; every
scheduling rule lives here, synchronously, so the semantics are
testable without sockets:

* **pull dispatch** — ``request_task`` scores the pending set for the
  requesting worker's site via the engine and hands out the winner;
* **lease-based assignment** — every assignment is guarded by a lease
  (monotonic-clock expiry, renewed by ``heartbeat``).  The
  :meth:`expire_leases` sweeper requeues tasks whose worker went
  silent, and :meth:`task_done` must present the still-valid lease, so
  a zombie worker returning after expiry cannot double-complete a
  task another worker already finished;
* **multi-job tenancy** — every task belongs to the job that submitted
  it; completion is tracked per job, pulls can scope to one job, and
  the "no task" answer distinguishes *your job is done*
  (``job-done``) from *the whole server is idle* (``idle``) and
  *shutting down* (``draining``);
* **idle parking** — when nothing is pending but tasks are still
  outstanding (or no job has arrived yet) the request is parked and
  answered later, FIFO, when work appears;
* **requeue on disconnect** — a worker that vanishes with assigned
  tasks returns them to the pending set immediately (faster than
  waiting for the lease to lapse);
* **graceful drain** — stop handing out tasks, answer parked requests
  with ``draining``, and report idle once the last outstanding
  completion lands (or lease expires).

Everything is single-threaded: callers (the asyncio event loop, or a
test) serialize calls.  Replies to parked requests are delivered
through the ``deliver`` callback handed to ``request_task``: it
receives either an :class:`Assignment` or a ``NO_TASK`` reason string
from :data:`repro.serve.protocol.NO_TASK_REASONS`.
"""

from __future__ import annotations

import random
import time
from collections import deque
from dataclasses import dataclass
from typing import (Callable, Deque, Dict, List, Optional, Set, Tuple,
                    Union)

from ..core.metrics import FAST_SCORERS
from ..core.policy_engine import PolicyEngine, SiteFileState
from ..grid.job import Task
from ..obs.events import EventLog
from ..obs.trace import DecisionTracer
from . import protocol
from .stats import ServeStats

#: Default lease time-to-live in seconds.  Workers are told to
#: heartbeat every ``ttl / HEARTBEATS_PER_TTL`` so a healthy worker
#: gets multiple renewal chances before its lease can lapse.
DEFAULT_LEASE_TTL = 30.0
HEARTBEATS_PER_TTL = 3.0


class ServiceError(RuntimeError):
    """A request the service rejects (reported as a protocol ERROR)."""


class AdmissionRejected(ServiceError):
    """A ``JOB_SUBMIT`` bounced off the admission watermark.

    Not a protocol error: the server answers with
    ``ACK {accepted: false, reason: "overloaded"}`` carrying
    :attr:`retry_after`, and the submitter retries the same chunk
    after backing off — backpressure, not failure.
    """

    def __init__(self, retry_after: float):
        super().__init__(
            "pending queue is over the admission watermark; "
            f"retry in {retry_after:g}s")
        self.retry_after = retry_after


@dataclass(frozen=True)
class Assignment:
    """A granted task: what ``TASK`` puts on the wire."""
    task: Task
    lease_id: int
    job_id: int
    lease_ttl: float


@dataclass(frozen=True)
class CompletionResult:
    """Outcome of a ``task_done``; rejections carry the reason."""
    accepted: bool
    reason: Optional[str] = None


#: ``deliver`` receives an Assignment (single pull), a non-empty list
#: of Assignments (batched pull), or a NO_TASK reason string.
Deliver = Callable[[Union[Assignment, List[Assignment], str]], None]


class _Lease:
    """One outstanding assignment's liveness contract."""

    __slots__ = ("lease_id", "task_id", "worker", "site_id",
                 "expires_at", "granted_at")

    def __init__(self, lease_id: int, task_id: int, worker: str,
                 site_id: int, expires_at: float,
                 granted_at: float = 0.0):
        self.lease_id = lease_id
        self.task_id = task_id
        self.worker = worker
        self.site_id = site_id
        self.expires_at = expires_at
        #: When the lease was granted — the straggler heuristic ranks
        #: replication candidates by longest-running primary lease.
        self.granted_at = granted_at


class _JobState:
    """Per-job bookkeeping: which tasks are pending/assigned/done."""

    __slots__ = ("job_id", "task_ids", "pending", "completed",
                 "weight", "assigned")

    def __init__(self, job_id: int):
        self.job_id = job_id
        self.task_ids: Set[int] = set()
        self.pending: Set[int] = set()
        self.completed: Set[int] = set()
        #: Fair-share weight; None = the job never asked for one.
        self.weight: Optional[float] = None
        #: Assignments granted to this job (the stride scheduler's
        #: pass count numerator: next pick minimizes assigned/weight).
        self.assigned = 0

    @property
    def outstanding(self) -> int:
        return (len(self.task_ids) - len(self.pending)
                - len(self.completed))

    @property
    def done(self) -> bool:
        return bool(self.task_ids) and (
            len(self.completed) == len(self.task_ids))


class _ParkedRequest:
    __slots__ = ("worker", "site_id", "job_id", "deliver", "max_tasks",
                 "batched")

    def __init__(self, worker: str, site_id: int,
                 job_id: Optional[int], deliver: Deliver,
                 max_tasks: int = 1, batched: bool = False):
        self.worker = worker
        self.site_id = site_id
        self.job_id = job_id
        self.deliver = deliver
        #: Up to how many tasks one answer may grant.
        self.max_tasks = max_tasks
        #: Whether ``deliver`` expects a list (``TASK_BATCH`` shape)
        #: instead of a bare :class:`Assignment`.
        self.batched = batched


class _TaskTable:
    """Growable task lookup satisfying the engine's ``job[id]`` needs."""

    def __init__(self) -> None:
        self._tasks: Dict[int, Task] = {}

    def add(self, task: Task) -> None:
        self._tasks[task.task_id] = task

    def __getitem__(self, task_id: int) -> Task:
        return self._tasks[task_id]

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self):
        return iter(self._tasks.values())


class SchedulerService:
    """Live counterpart of the simulator's global scheduler."""

    def __init__(self, metric: str = "rest", n: int = 1, seed: int = 0,
                 name: str = "repro-serve",
                 lease_ttl: float = DEFAULT_LEASE_TTL,
                 clock: Callable[[], float] = time.monotonic,
                 events: Optional[EventLog] = None,
                 tracer: Optional[DecisionTracer] = None,
                 fast_path: bool = True,
                 id_start: int = 0, id_stride: int = 1,
                 wal_events: bool = False,
                 admission_watermark: Optional[int] = None,
                 admission_retry_after: float = 0.25,
                 replicate_tail: bool = False,
                 max_replicas: int = 1,
                 steal_watermark: Optional[int] = None):
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be > 0, got {lease_ttl}")
        if id_stride < 1 or not (0 <= id_start < id_stride):
            raise ValueError(
                f"need 0 <= id_start < id_stride, got "
                f"{id_start}/{id_stride}")
        if admission_watermark is not None and admission_watermark < 1:
            raise ValueError(f"admission_watermark must be >= 1, "
                             f"got {admission_watermark}")
        if admission_retry_after <= 0:
            raise ValueError(f"admission_retry_after must be > 0, "
                             f"got {admission_retry_after}")
        if max_replicas < 1:
            raise ValueError(
                f"max_replicas must be >= 1, got {max_replicas}")
        if steal_watermark is not None and steal_watermark < 1:
            raise ValueError(f"steal_watermark must be >= 1, "
                             f"got {steal_watermark}")
        self.name = name
        self.lease_ttl = float(lease_ttl)
        self._clock = clock
        self._table = _TaskTable()
        # ``fast_path=False`` pins the engine to the reference decision
        # loop — decision-identical but linear in queue depth; only the
        # latency ablation (``repro serve --kernel reference``) wants it.
        self.engine = PolicyEngine(self._table, metric=metric, n=n,
                                   rng=random.Random(seed),
                                   fast_path=fast_path)
        self.stats = ServeStats()
        self.events = events
        self.tracer = tracer
        if tracer is not None:
            # The hook observes the already-made decision; it cannot
            # change it (no RNG use, fires after sampling).
            self.engine.on_decision = self._on_decision
        self.stats.bind_live(
            queue_depth=lambda: self.queue_depth,
            outstanding=lambda: self.outstanding,
            parked_workers=lambda: self.parked_workers,
            active_leases=lambda: self.active_leases,
            jobs_active=lambda: sum(1 for job in self._jobs.values()
                                    if not job.done),
            draining=lambda: 1.0 if self._draining else 0.0)
        self._completed: Set[int] = set()
        self._assigned: Dict[int, _Lease] = {}     # task_id -> lease
        self._leases: Dict[int, _Lease] = {}       # lease_id -> lease
        self._by_worker: Dict[str, Set[int]] = {}  # worker -> task_ids
        #: Admission control: a JOB_SUBMIT that would push the pending
        #: queue past the watermark is bounced with ``overloaded`` and
        #: the advertised retry-after, instead of queued.  None = no
        #: limit (the pre-watermark behavior).
        self._admission_watermark = admission_watermark
        self._admission_retry_after = float(admission_retry_after)
        #: Straggler-aware tail replication: when a pull would park
        #: (nothing pending, work outstanding) the service may instead
        #: grant a *replica* lease on the longest-running outstanding
        #: task.  First completion wins; the loser's TASK_DONE is
        #: rejected by the ordinary lease machinery.
        self._replicate_tail = replicate_tail
        self._max_replicas = max_replicas
        self._replicas: Dict[int, List[_Lease]] = {}  # task -> replicas
        #: Shard-to-shard work stealing.  A non-None watermark enables
        #: both halves: as the *victim*, export pending unleased tasks
        #: down to the watermark when a thief asks; as the *thief*,
        #: park idle unscoped pulls (instead of answering ``idle``) so
        #: imported work has someone to run it.  None = stealing off,
        #: every path below is bit-identical to the pre-steal service.
        self._steal_watermark = steal_watermark
        #: Victim side: export_id -> {thief, acked, specs, remaining}.
        #: An export lives from the grant until its last task's
        #: forwarded completion (or its abort).
        self._steal_exports: Dict[int, Dict] = {}
        self._exported_tasks: Dict[int, int] = {}  # task -> export_id
        self._next_export_id = 1
        #: Thief side: (origin shard, export_id) -> task specs, held
        #: *tentatively* between the WAL import record and the
        #: victim's STEAL_ACK answer; activation requires the answer.
        self._steal_imports: Dict[Tuple[int, int], List[Dict]] = {}
        self._foreign_jobs: Dict[int, int] = {}    # job_id -> origin
        #: Completions of stolen tasks awaiting forwarding, per origin.
        self._steal_outbox: Dict[int, List[int]] = {}
        #: Weighted-fair mode is sticky: it turns on at the first
        #: weighted JOB_SUBMIT and stays on, so a server that never
        #: sees a weight keeps the bit-identical unscoped choose path.
        self._weighted = False
        self._jobs: Dict[int, _JobState] = {}
        self._task_job: Dict[int, int] = {}        # task_id -> job_id
        self._parked: Deque[_ParkedRequest] = deque()
        #: Shard-aware id allocation: shard ``i`` of ``N`` constructs
        #: with ``id_start=i, id_stride=N`` so every job/task id it
        #: assigns satisfies ``id % N == i`` — the cluster router can
        #: route any id to its owning shard arithmetically, and a
        #: 1-shard cluster (start 0, stride 1) allocates exactly the
        #: ids a standalone server would.
        self._id_start = id_start
        self._id_stride = id_stride
        #: WAL mode: emitted events carry enough extra fields
        #: (``submit.specs``, per-id delta lists) that
        #: :meth:`replay_record` can rebuild the full scheduler state
        #: from the log alone.  Off by default so non-WAL event logs
        #: stay byte-stable.
        self.wal_events = wal_events
        self._next_task_id = id_start
        self._next_job_id = id_start
        self._next_lease_id = 1
        self._draining = False
        #: Called (once) when a drain completes: draining and no
        #: outstanding work.  The server uses it to shut down.
        self.on_drained: Optional[Callable[[], None]] = None

    # -- introspection ---------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return self.engine.pending_count

    @property
    def outstanding(self) -> int:
        return len(self._assigned)

    @property
    def active_leases(self) -> int:
        return len(self._leases)

    @property
    def parked_workers(self) -> int:
        return len(self._parked)

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def is_idle(self) -> bool:
        return self.queue_depth == 0 and self.outstanding == 0

    @property
    def heartbeat_interval(self) -> float:
        """The renewal cadence advertised in ``WELCOME``."""
        return self.lease_ttl / HEARTBEATS_PER_TTL

    def ensure_site(self, site_id: int) -> None:
        if site_id not in self.engine.site_ids:
            self.engine.attach_site(site_id)

    # -- observability hooks ---------------------------------------------
    def _emit(self, event: str, **fields) -> None:
        if self.events is not None:
            self.events.emit(event, **fields)

    def _on_decision(self, span: Dict) -> None:
        """``PolicyEngine.on_decision`` target: record, maybe log."""
        stamped = self.tracer.record(span)
        if self.events is not None:
            self._emit("decision", site=span["site"],
                       metric=span["metric"], chosen=span["chosen"],
                       candidates=span["candidates"],
                       decision=stamped["decision"])

    # -- job intake ------------------------------------------------------
    def submit_job(self, tasks_payload: List[dict],
                   job_id: Optional[int] = None,
                   weight: Optional[float] = None) -> Dict:
        """Append a batch of tasks; returns the job id and task ids.

        ``tasks_payload`` items need ``files`` (non-empty int list) and
        optional ``flops``.  Task ids are assigned by the service so
        independent submitters can never collide.  ``job_id`` of None
        opens a new job; otherwise the batch extends an existing job
        (how large submissions are chunked across messages).

        ``weight`` sets the job's fair-share weight: when any job has
        one, unscoped pulls pick the job with the lowest
        ``assigned / weight`` ratio (min-pass stride scheduling) and
        score only its tasks; weightless jobs count as weight 1.  With
        a watermark configured, a batch that would push the pending
        queue past it raises :class:`AdmissionRejected` before any
        task id is allocated.
        """
        if self._draining:
            raise ServiceError("server is draining; job rejected")
        if not isinstance(tasks_payload, list) or not tasks_payload:
            raise ServiceError("JOB_SUBMIT needs a non-empty task list")
        if job_id is not None and job_id not in self._jobs:
            raise ServiceError(f"unknown job id {job_id!r}")
        if weight is not None and (
                isinstance(weight, bool)
                or not isinstance(weight, (int, float)) or weight <= 0):
            raise ServiceError("'weight' must be a number > 0")
        if (self._admission_watermark is not None
                and self.queue_depth + len(tasks_payload)
                > self._admission_watermark):
            self.stats.admission_rejections += 1
            raise AdmissionRejected(self._admission_retry_after)
        tasks: List[Task] = []
        for spec in tasks_payload:
            if not isinstance(spec, dict):
                raise ServiceError("each task must be an object")
            files = spec.get("files")
            if (not isinstance(files, list) or not files
                    or any(not protocol.is_int(fid) for fid in files)):
                raise ServiceError(
                    "each task needs a non-empty int 'files' list")
            flops = spec.get("flops", 0.0)
            if (isinstance(flops, bool)
                    or not isinstance(flops, (int, float)) or flops < 0):
                raise ServiceError("'flops' must be a number >= 0")
            tasks.append(Task(task_id=self._next_task_id,
                              files=frozenset(files), flops=float(flops)))
            self._next_task_id += self._id_stride
        if job_id is None:
            job_id = self._next_job_id
            self._next_job_id += self._id_stride
            self._jobs[job_id] = _JobState(job_id)
            self.stats.jobs_submitted += 1
        job = self._jobs[job_id]
        if weight is not None:
            job.weight = float(weight)
            self._weighted = True
        for task in tasks:
            self._table.add(task)
            self.engine.add_task(task)
            job.task_ids.add(task.task_id)
            job.pending.add(task.task_id)
            self._task_job[task.task_id] = job_id
        self.stats.tasks_submitted += len(tasks)
        self.stats.record_queue_depth(self.queue_depth)
        extra = {}
        if self.wal_events:
            # Enough to re-create the tasks on replay.
            extra["specs"] = [{"files": sorted(task.files),
                               "flops": task.flops} for task in tasks]
        self._emit("submit", job_id=job_id, tasks=len(tasks),
                   task_ids=[task.task_id for task in tasks], **extra)
        self._service_parked()
        return {"job_id": job_id,
                "task_ids": [task.task_id for task in tasks]}

    def job_status(self, job_id: int) -> Dict:
        """The ``JOB_STATUS`` snapshot for one job."""
        job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job id {job_id!r}")
        return {"job_id": job_id,
                "tasks": len(job.task_ids),
                "completed": len(job.completed),
                "pending": len(job.pending),
                "outstanding": job.outstanding,
                "done": job.done}

    # -- the pull loop ---------------------------------------------------
    def request_task(self, worker: str, site_id: int, deliver: Deliver,
                     job_id: Optional[int] = None) -> None:
        """Answer a worker's pull, now or later, via ``deliver``.

        ``deliver(assignment)`` hands out a leased task;
        ``deliver(reason)`` with a ``NO_TASK`` reason string means "no
        task will ever come — disconnect".  ``job_id`` scopes the pull
        to one job's tasks (and its completion answers ``job-done``).
        """
        self._request(worker, site_id, deliver, job_id=job_id,
                      max_tasks=1, batched=False)

    def request_tasks(self, worker: str, site_id: int, max_tasks: int,
                      deliver: Deliver,
                      job_id: Optional[int] = None) -> None:
        """Batched pull: answer with up to ``max_tasks`` leased tasks.

        ``deliver`` receives a non-empty ``List[Assignment]`` (the
        ``TASK_BATCH`` shape — between 1 and ``max_tasks`` tasks, each
        under its own lease) or a ``NO_TASK`` reason string; a pull
        that cannot be answered yet parks exactly like a single-task
        one.  Tasks are drawn by iterated sampling without
        replacement (see :meth:`PolicyEngine.choose_many`), so
        ``max_tasks == 1`` is decision-for-decision identical to
        :meth:`request_task`.
        """
        if not protocol.is_int(max_tasks) or max_tasks < 1:
            raise ServiceError(
                f"max_tasks must be an int >= 1, got {max_tasks!r}")
        self._request(worker, site_id, deliver, job_id=job_id,
                      max_tasks=max_tasks, batched=True)

    def _request(self, worker: str, site_id: int, deliver: Deliver,
                 job_id: Optional[int], max_tasks: int,
                 batched: bool) -> None:
        self.ensure_site(site_id)
        if job_id is not None and job_id not in self._jobs:
            raise ServiceError(f"unknown job id {job_id!r}")
        entry = _ParkedRequest(worker, site_id, job_id, deliver,
                               max_tasks=max_tasks, batched=batched)
        if not self._try_answer(entry):
            # Park until the situation changes (work arrives, a lease
            # expires, the job/server finishes, or a drain starts).
            self._parked.append(entry)

    def _try_answer(self, entry: _ParkedRequest) -> bool:
        """Answer a pull if its outcome is decided; False to park."""
        if entry.job_id is not None:
            job = self._jobs[entry.job_id]
            if job.done:
                entry.deliver(protocol.REASON_JOB_DONE)
            elif self._draining:
                entry.deliver(protocol.REASON_DRAINING)
            elif job.pending:
                self._deliver_assignments(entry, job)
            elif self._replicate_tail and self._grant_replica(entry,
                                                              job):
                pass  # job tail: replicate a straggling task instead
            else:
                return False  # all of the job's tasks are outstanding
            return True
        if self._draining:
            entry.deliver(protocol.REASON_DRAINING)
        elif self.engine.has_pending:
            self._deliver_assignments(entry, None)
        elif self._jobs and self.is_idle:
            if self._steal_watermark is not None:
                # Stealing may import work at any time: park the idle
                # pull instead of sending the worker away.  Drain
                # still releases parked workers (handled above).
                return False
            entry.deliver(protocol.REASON_IDLE)
        elif (self._replicate_tail and self._jobs
                and self._grant_replica(entry, None)):
            pass  # global tail: replicate instead of parking
        else:
            return False  # no job yet, or work outstanding: park
        return True

    def _deliver_assignments(self, entry: _ParkedRequest,
                             job: Optional[_JobState]) -> None:
        """Grant up to ``entry.max_tasks`` tasks and deliver them.

        Each grant goes through :meth:`_assign` — one full decision
        (weights recomputed), one lease, one stats/event record — so
        the draw sequence is exactly ``PolicyEngine.choose_many``'s
        iterated sampling without replacement, with the service's
        bookkeeping interleaved per task.
        """
        assignments = [self._assign(entry.worker, entry.site_id, job)]
        while (len(assignments) < entry.max_tasks
               and (job.pending if job is not None
                    else self.engine.has_pending)):
            assignments.append(
                self._assign(entry.worker, entry.site_id, job))
        if entry.batched:
            self.stats.record_batch(len(assignments))
            entry.deliver(assignments)
        else:
            entry.deliver(assignments[0])

    def _pick_weighted_job(self) -> Optional[_JobState]:
        """Stride pick: the pending job with the lowest pass value.

        Only consulted once a weighted JOB_SUBMIT flipped the server
        into weighted-fair mode; weightless jobs ride along at weight
        1.  Ties break on the lower job id, so the pick order is
        deterministic.
        """
        best: Optional[_JobState] = None
        best_pass = 0.0
        for job_id in sorted(self._jobs):
            job = self._jobs[job_id]
            if not job.pending:
                continue
            weight = job.weight if job.weight is not None else 1.0
            pass_value = job.assigned / weight
            if best is None or pass_value < best_pass:
                best, best_pass = job, pass_value
        return best

    def _assign(self, worker: str, site_id: int,
                job: Optional[_JobState]) -> Assignment:
        start = self._clock()
        if job is None and self._weighted:
            # Weighted-fair pick-order: choose the tenant first, then
            # let the engine score only that tenant's tasks.  Servers
            # that never saw a weight skip this branch entirely, so
            # the unscoped path stays bit-identical to the reference.
            job = self._pick_weighted_job()
        eligible = job.pending if job is not None else None
        task = self.engine.choose(site_id, eligible=eligible)
        latency = self._clock() - start
        overlap = self.engine.overlap(site_id, task.task_id)
        self.engine.remove_task(task)
        owner_id = self._task_job[task.task_id]
        owner = self._jobs[owner_id]
        owner.pending.discard(task.task_id)
        owner.assigned += 1
        lease = _Lease(self._next_lease_id, task.task_id, worker,
                       site_id, self._clock() + self.lease_ttl,
                       granted_at=start)
        self._next_lease_id += 1
        self._assigned[task.task_id] = lease
        self._leases[lease.lease_id] = lease
        self._by_worker.setdefault(worker, set()).add(task.task_id)
        self.stats.record_assignment(site_id, latency, overlap > 0,
                                     metric=self.engine.metric_name)
        self.stats.record_tenant_assignment(owner_id)
        self.stats.leases_granted += 1
        self._emit("assign", task_id=task.task_id, site=site_id,
                   worker=worker, job_id=owner_id,
                   lease_id=lease.lease_id, overlap=overlap,
                   latency_us=round(latency * 1e6, 3))
        return Assignment(task=task, lease_id=lease.lease_id,
                          job_id=owner_id, lease_ttl=self.lease_ttl)

    def _grant_replica(self, entry: _ParkedRequest,
                       job: Optional[_JobState]) -> bool:
        """Lease the longest-running outstanding task to ``entry``.

        The straggler trick of the task-centric baselines, done
        worker-centrically: an idle pull at the tail (nothing pending,
        work outstanding) gets a *replica* lease on the outstanding
        task whose primary lease has been running longest — skipping
        tasks the same worker already holds and tasks already at
        ``max_replicas``.  Whichever lease completes first wins;
        :meth:`task_done` releases every other lease on the task, so
        the loser's report is rejected as ``already-complete`` and
        nothing is double-counted.  Returns False when no task
        qualifies (the pull parks as before).
        """
        if job is not None:
            candidates = (task_id for task_id in job.task_ids
                          if task_id in self._assigned)
        else:
            candidates = iter(self._assigned)
        best: Optional[_Lease] = None
        for task_id in candidates:
            primary = self._assigned[task_id]
            if primary.worker == entry.worker:
                continue
            replicas = self._replicas.get(task_id, ())
            if len(replicas) >= self._max_replicas:
                continue
            if any(r.worker == entry.worker for r in replicas):
                continue
            if (best is None
                    or (primary.granted_at, primary.task_id)
                    < (best.granted_at, best.task_id)):
                best = primary
        if best is None:
            return False
        now = self._clock()
        lease = _Lease(self._next_lease_id, best.task_id, entry.worker,
                       entry.site_id, now + self.lease_ttl,
                       granted_at=now)
        self._next_lease_id += 1
        self._leases[lease.lease_id] = lease
        self._replicas.setdefault(best.task_id, []).append(lease)
        self._by_worker.setdefault(entry.worker, set()).add(
            best.task_id)
        self.stats.task_replications += 1
        self.stats.leases_granted += 1
        owner_id = self._task_job[best.task_id]
        self._emit("assign", task_id=best.task_id, site=entry.site_id,
                   worker=entry.worker, job_id=owner_id,
                   lease_id=lease.lease_id, replica=True)
        task = self._table[best.task_id]
        granted = Assignment(task=task, lease_id=lease.lease_id,
                             job_id=owner_id, lease_ttl=self.lease_ttl)
        if entry.batched:
            self.stats.record_batch(1)
            entry.deliver([granted])
        else:
            entry.deliver(granted)
        return True

    def _service_parked(self) -> None:
        """Re-answer every parked pull whose outcome is now decided."""
        if not self._parked:
            return
        remaining: Deque[_ParkedRequest] = deque()
        while self._parked:
            entry = self._parked.popleft()
            if not self._try_answer(entry):
                remaining.append(entry)
        self._parked = remaining

    # -- completions -----------------------------------------------------
    def task_done(self, worker: str, task_id: int,
                  lease_id: int) -> CompletionResult:
        """Record a completion if ``lease_id`` still guards the task.

        A stale lease (expired, superseded by a reassignment, or for a
        task already completed) is rejected without touching the
        completion counters — the zombie-worker double-complete guard.
        A still-valid *replica* lease completes the task exactly like
        the primary would; the first accepted completion releases
        every lease on the task, so whichever copy reports second is
        rejected as ``already-complete``.
        """
        if not protocol.is_int(task_id) or task_id not in self._task_job:
            raise ServiceError(f"unknown task id {task_id!r}")
        lease = self._leases.get(lease_id)
        if lease is None or lease.task_id != task_id:
            if task_id in self._completed:
                self.stats.duplicate_completions += 1
                return CompletionResult(False, "already-complete")
            self.stats.stale_completions += 1
            return CompletionResult(False, "stale-lease")
        if self._assigned.get(task_id) is not lease:
            self.stats.replica_wins += 1
        self._release_task_leases(task_id)
        self._completed.add(task_id)
        job = self._jobs[self._task_job[task_id]]
        job.completed.add(task_id)
        origin = self._foreign_jobs.get(job.job_id)
        if origin is None:
            self.stats.completions += 1
            self._emit("complete", task_id=task_id, worker=worker,
                       job_id=job.job_id, lease_id=lease_id)
            if job.done:
                self.stats.jobs_completed += 1
        else:
            # Stolen task: the owning shard keeps the canonical
            # ``complete`` record and the per-job counters.  Record
            # the thief-side marker and queue the id for forwarding.
            self._emit("steal-task-done", task_id=task_id,
                       worker=worker, job_id=job.job_id,
                       lease_id=lease_id)
            self._steal_outbox.setdefault(origin, []).append(task_id)
        self._service_parked()
        self._maybe_drained()
        return CompletionResult(True)

    def _release_lease(self, lease: _Lease) -> None:
        if self._assigned.get(lease.task_id) is lease:
            del self._assigned[lease.task_id]
        else:
            replicas = self._replicas.get(lease.task_id)
            if replicas is not None and lease in replicas:
                replicas.remove(lease)
                if not replicas:
                    del self._replicas[lease.task_id]
        self._leases.pop(lease.lease_id, None)
        self._by_worker.get(lease.worker, set()).discard(lease.task_id)

    def _release_task_leases(self, task_id: int) -> None:
        """Drop the primary and every replica lease of one task."""
        primary = self._assigned.get(task_id)
        if primary is not None:
            self._release_lease(primary)
        for replica in list(self._replicas.get(task_id, ())):
            self._release_lease(replica)

    def _promote_replica(self, task_id: int) -> Optional[_Lease]:
        """Make the oldest live replica the task's primary lease.

        Called when a primary lapses or its worker disconnects: a
        live replica means the task is still being computed, so it
        must not be requeued (that would start a third copy).
        """
        replicas = self._replicas.get(task_id)
        if not replicas:
            return None
        lease = replicas.pop(0)
        if not replicas:
            del self._replicas[task_id]
        self._assigned[task_id] = lease
        return lease

    # -- leases ----------------------------------------------------------
    def heartbeat(self, worker: str,
                  lease_ids: Optional[List[int]] = None,
                  ) -> Tuple[List[int], List[int]]:
        """Renew leases; returns ``(renewed, gone)`` lease-id lists.

        ``lease_ids`` of None renews every lease the worker holds.  A
        lease that expired (and was requeued) before the heartbeat
        arrived lands in ``gone`` — the worker should abandon that
        task.
        """
        now = self._clock()
        if lease_ids is None:
            lease_ids = []
            for task_id in self._by_worker.get(worker, set()):
                primary = self._assigned.get(task_id)
                if primary is not None and primary.worker == worker:
                    lease_ids.append(primary.lease_id)
                    continue
                lease_ids.extend(
                    replica.lease_id
                    for replica in self._replicas.get(task_id, ())
                    if replica.worker == worker)
            lease_ids.sort()
        renewed: List[int] = []
        gone: List[int] = []
        for lease_id in lease_ids:
            lease = self._leases.get(lease_id)
            if lease is None:
                gone.append(lease_id)
            else:
                lease.expires_at = now + self.lease_ttl
                renewed.append(lease_id)
        self.stats.lease_renewals += len(renewed)
        return renewed, gone

    def expire_leases(self, now: Optional[float] = None) -> int:
        """Requeue tasks whose lease lapsed; returns how many expired.

        The server calls this from a periodic sweeper; tests drive it
        directly with a fake clock.
        """
        now = self._clock() if now is None else now
        lapsed = [lease for lease in self._assigned.values()
                  if lease.expires_at <= now]
        requeued = 0
        for lease in lapsed:
            self._release_lease(lease)
            self.stats.lease_expiries += 1
            self._emit("lease-expire", task_id=lease.task_id,
                       lease_id=lease.lease_id, worker=lease.worker)
            if self._promote_replica(lease.task_id) is not None:
                continue  # a replica is still computing the task
            self._requeue(lease.task_id)
            requeued += 1
            self._emit("requeue", task_id=lease.task_id,
                       reason="lease-expired")
        # Replica leases lapse quietly: the primary still covers the
        # task, so an expired replica is dropped without a requeue.
        lapsed_replicas = [
            replica for replicas in self._replicas.values()
            for replica in replicas if replica.expires_at <= now]
        for replica in lapsed_replicas:
            self._release_lease(replica)
            self.stats.lease_expiries += 1
            self._emit("lease-expire", task_id=replica.task_id,
                       lease_id=replica.lease_id,
                       worker=replica.worker)
        if lapsed or lapsed_replicas:
            self.stats.requeues += requeued
            self.stats.record_queue_depth(self.queue_depth)
            self._service_parked()
            self._maybe_drained()
        return len(lapsed) + len(lapsed_replicas)

    def _requeue(self, task_id: int) -> None:
        self.engine.add_task(self._table[task_id])
        self._jobs[self._task_job[task_id]].pending.add(task_id)

    # -- file-state deltas ----------------------------------------------
    def file_delta(self, site_id: int, added: List[int],
                   removed: List[int], referenced: List[int]) -> None:
        """Apply a worker's report of its site cache changes.

        Removals apply first (an LRU reports the eviction a new file
        caused), then insertions, then references — the same order the
        simulator's storage emits.  Redundant adds/removes (two workers
        sharing a site) are idempotent no-ops.
        """
        self.ensure_site(site_id)
        duplicate_removes = sum(
            0 if self.engine.file_removed(site_id, fid) else 1
            for fid in removed)
        duplicate_adds = sum(
            0 if self.engine.file_added(site_id, fid) else 1
            for fid in added)
        for fid in referenced:
            self.engine.file_referenced(site_id, fid)
        self.stats.record_delta(len(added), len(removed), len(referenced),
                                duplicate_adds=duplicate_adds,
                                duplicate_removes=duplicate_removes)
        extra = {}
        if self.wal_events:
            # Full id lists so replay can re-apply the delta exactly.
            extra.update(added_ids=list(added),
                         removed_ids=list(removed),
                         referenced_ids=list(referenced))
        self._emit("delta", site=site_id, added=len(added),
                   removed=len(removed), referenced=len(referenced),
                   duplicates=duplicate_adds + duplicate_removes,
                   **extra)

    # -- lifecycle -------------------------------------------------------
    def disconnect(self, worker: str) -> int:
        """A worker's connection closed; requeue its assigned tasks.

        Disconnect detection is instant requeue; the lease sweeper
        covers the harder case of a worker that stays connected (or
        whose TCP death goes unnoticed) but stops making progress.
        """
        self._parked = deque(entry for entry in self._parked
                             if entry.worker != worker)
        lost = self._by_worker.pop(worker, set())
        requeued = 0
        for task_id in sorted(lost):
            primary = self._assigned.get(task_id)
            if primary is None or primary.worker != worker:
                # The worker only held a replica: drop it, the
                # primary still covers the task.
                for replica in list(self._replicas.get(task_id, ())):
                    if replica.worker == worker:
                        replica_leases = self._replicas[task_id]
                        replica_leases.remove(replica)
                        if not replica_leases:
                            del self._replicas[task_id]
                        self._leases.pop(replica.lease_id, None)
                continue
            del self._assigned[task_id]
            self._leases.pop(primary.lease_id, None)
            if task_id not in self._completed:
                if self._promote_replica(task_id) is not None:
                    continue  # a replica is still computing the task
                self._requeue(task_id)
                requeued += 1
                self._emit("requeue", task_id=task_id,
                           reason="disconnect", worker=worker)
        if requeued:
            self.stats.requeues += requeued
            self.stats.record_queue_depth(self.queue_depth)
            self._service_parked()
        self._abort_exports_for(worker)
        self._maybe_drained()
        return requeued

    def drain(self) -> None:
        """Stop handing out tasks; finish outstanding work, then idle."""
        self._draining = True
        self._service_parked()
        self._maybe_drained()

    def _maybe_drained(self) -> None:
        # A drain is complete only when nothing is out under a local
        # lease, no exported task is still computing on a thief, and
        # every stolen completion has been forwarded home.
        if (self._draining and self.outstanding == 0
                and not self._exported_tasks and not self._steal_outbox):
            callback, self.on_drained = self.on_drained, None
            if callback is not None:
                callback()

    # -- work stealing (repro.cluster shard-to-shard) --------------------
    @property
    def steal_enabled(self) -> bool:
        return self._steal_watermark is not None

    @property
    def steal_watermark(self) -> Optional[int]:
        return self._steal_watermark

    @property
    def steal_outbox_depth(self) -> int:
        """Completions of stolen tasks not yet forwarded home."""
        return sum(len(ids) for ids in self._steal_outbox.values())

    @property
    def exported_outstanding(self) -> int:
        """Exported tasks still computing (or pending) on a thief."""
        return len(self._exported_tasks)

    def export_steal_batch(self, thief: str, max_tasks: int,
                           site_refsums: List[Dict]) -> Optional[Dict]:
        """Victim half of ``STEAL_REQUEST``: pick, detach, and grant.

        Chooses up to ``max_tasks`` pending *unleased* tasks — never
        dipping below the victim's own watermark — by lowest locality
        loss: each candidate is scored against the thief's shipped
        per-site file/refcount summaries with the allocation-free
        :data:`~repro.core.metrics.FAST_SCORERS`, and the
        highest-scoring tasks (ties broken by lower task id) move.
        The selection never touches the engine's RNG, so a victim
        that is never asked keeps a bit-identical decision stream.

        The export record is written to the WAL (and flushed) *before*
        this returns, i.e. before ``STEAL_GRANT`` hits the wire — a
        victim crash after the grant recovers the export and requeues
        it locally unless the thief's ack landed first.  Returns
        ``{"export_id", "tasks"}`` or None (nothing to grant).
        """
        if not self.steal_enabled or self._draining:
            self.stats.record_steal_request("rejected")
            return None
        budget = min(max_tasks,
                     self.queue_depth - self._steal_watermark)
        if budget <= 0:
            self.stats.record_steal_request("empty")
            return None
        chosen = self._select_steal_tasks(budget, site_refsums)
        if not chosen:
            self.stats.record_steal_request("empty")
            return None
        export_id = self._next_export_id
        self._next_export_id += 1
        specs: List[Dict] = []
        for task_id in chosen:
            task = self._table[task_id]
            self.engine.remove_task(task)
            job_id = self._task_job[task_id]
            self._jobs[job_id].pending.discard(task_id)
            self._exported_tasks[task_id] = export_id
            specs.append({"task_id": task_id, "job_id": job_id,
                          "files": sorted(task.files),
                          "flops": task.flops})
        self._steal_exports[export_id] = {
            "thief": thief, "acked": False, "specs": specs,
            "remaining": set(chosen)}
        self.stats.tasks_exported += len(specs)
        self.stats.record_steal_request("granted")
        self._emit("steal-export", export_id=export_id, thief=thief,
                   specs=specs)
        return {"export_id": export_id, "tasks": specs}

    def _select_steal_tasks(self, budget: int,
                            site_refsums: List[Dict]) -> List[int]:
        """Rank pending tasks by their score *at the thief's sites*.

        ``site_refsums`` entries are ``{"site", "files", "refs"}``
        (parallel id/refcount lists).  A task's score is the best it
        would earn at any thief site under this service's metric; the
        per-site totals stand in for the thief's aggregate normalizers
        (only the relative order matters here).  No allocation beyond
        the candidate list, no RNG.
        """
        sites: List[Tuple[Dict[int, float], float]] = []
        for entry in site_refsums:
            refs = {fid: float(count)
                    for fid, count in zip(entry.get("files", ()),
                                          entry.get("refs", ()))}
            sites.append((refs, sum(refs.values())))
        scorer = FAST_SCORERS[self.engine.metric_name]
        scored: List[Tuple[float, int]] = []
        for task_id, task in self.engine.pending.items():
            num_files = len(task.files)
            best = scorer(num_files, 0, 0.0, 0.0, 1.0)
            for refs, total_refsum in sites:
                overlap = 0
                refsum = 0.0
                for fid in task.files:
                    count = refs.get(fid)
                    if count is not None:
                        overlap += 1
                        refsum += count
                score = scorer(num_files, overlap, refsum,
                               total_refsum, 1.0)
                if score > best:
                    best = score
            scored.append((best, task_id))
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        return [task_id for _score, task_id in scored[:budget]]

    def steal_export_acked(self, export_id: int) -> bool:
        """Victim half of ``STEAL_ACK``: commit or refuse an export.

        True = the export is live (the thief may activate the tasks);
        the commit marker is WAL'd before the answer so a recovered
        victim never requeues an export a thief was told to keep.
        False = unknown or aborted export: the thief must drop its
        tentative import.  Idempotent — a re-ack after a thief crash
        gets the same answer.
        """
        record = self._steal_exports.get(export_id)
        if record is None:
            return False
        if not record["acked"]:
            record["acked"] = True
            self._emit("steal-export-ack", export_id=export_id)
        return True

    def steal_done(self, task_ids: List[int], worker: str) -> Dict:
        """Victim half of ``STEAL_DONE``: land forwarded completions.

        Each task completes exactly as a local ``task_done`` would —
        canonical ``complete`` WAL record, per-job counters, stats —
        and its export bookkeeping is retired.  Already-completed
        tasks (a re-forward after a thief crash) count as duplicates
        and change nothing: the receiver is idempotent, so the
        thief's at-least-once forwarding is exactly-once end to end.
        """
        completed = duplicates = 0
        for task_id in task_ids:
            job_id = self._task_job.get(task_id)
            if job_id is None:
                raise ServiceError(f"unknown task id {task_id!r}")
            if task_id in self._completed:
                self.stats.duplicate_completions += 1
                duplicates += 1
                continue
            self._clear_export_entry(task_id)
            if task_id in self._assigned:
                self._release_task_leases(task_id)
            elif self.engine.is_pending(task_id):
                self.engine.remove_task(self._table[task_id])
            job = self._jobs[job_id]
            job.pending.discard(task_id)
            self._completed.add(task_id)
            job.completed.add(task_id)
            self.stats.completions += 1
            self._emit("complete", task_id=task_id, worker=worker,
                       job_id=job_id)
            if job.done:
                self.stats.jobs_completed += 1
            completed += 1
        if completed:
            self._service_parked()
            self._maybe_drained()
        return {"completed": completed, "duplicates": duplicates}

    def _clear_export_entry(self, task_id: int) -> None:
        export_id = self._exported_tasks.pop(task_id, None)
        if export_id is None:
            return
        record = self._steal_exports.get(export_id)
        if record is not None:
            record["remaining"].discard(task_id)
            if not record["remaining"]:
                del self._steal_exports[export_id]

    def _abort_exports_for(self, worker: str) -> None:
        """Abort live un-acked exports granted to a vanished thief.

        Only un-acked exports abort: an acked export is the thief's to
        run even across its own reconnects, and the forwarded
        completion (or the operator) is the only way it resolves.
        """
        doomed = sorted(
            export_id
            for export_id, record in self._steal_exports.items()
            if record["thief"] == worker and not record["acked"])
        for export_id in doomed:
            self._abort_export(export_id)

    def _abort_export(self, export_id: int) -> int:
        record = self._steal_exports.pop(export_id)
        self._emit("steal-export-abort", export_id=export_id)
        requeued = 0
        for task_id in sorted(record["remaining"]):
            self._exported_tasks.pop(task_id, None)
            if (task_id in self._completed or task_id in self._assigned
                    or self.engine.is_pending(task_id)):
                continue
            self._requeue(task_id)
            requeued += 1
        if requeued:
            self.stats.requeues += requeued
            self.stats.record_queue_depth(self.queue_depth)
            self._service_parked()
        return requeued

    def requeue_unacked_exports(self) -> int:
        """Crash recovery: reclaim exports whose ack never landed.

        Called by the shard recovery path after the WAL tail is
        folded.  An export with no durable ack may or may not have
        reached the thief — but the thief cannot have *activated* it
        (activation requires the victim's acked answer), so requeueing
        locally is safe and loses nothing.  A thief holding the
        matching tentative import will re-ack, find the export gone,
        and drop it.  Emits nothing: the fold is reproduced by the
        same call on the next recovery.
        """
        requeued = 0
        for export_id in sorted(self._steal_exports):
            record = self._steal_exports[export_id]
            if record["acked"]:
                continue
            del self._steal_exports[export_id]
            for task_id in sorted(record["remaining"]):
                self._exported_tasks.pop(task_id, None)
                if (task_id in self._completed
                        or task_id in self._assigned
                        or self.engine.is_pending(task_id)):
                    continue
                self._requeue(task_id)
                requeued += 1
        return requeued

    def steal_import_tentative(self, origin: int, export_id: int,
                               specs: List[Dict]) -> None:
        """Thief: durably hold a grant *without* activating it.

        The WAL import record makes the grant survive a thief crash;
        the tasks stay invisible to the scheduler until
        :meth:`steal_commit_import` — which requires the victim's
        acked answer — so a crash here can never double-run them.
        """
        key = (origin, export_id)
        if key in self._steal_imports:
            return
        self._steal_imports[key] = [dict(spec) for spec in specs]
        self._emit("steal-import", origin=origin, export_id=export_id,
                   specs=self._steal_imports[key])

    def pending_steal_imports(self) -> List[Tuple[int, int]]:
        """Tentative imports awaiting the victim's answer (recovery)."""
        return sorted(self._steal_imports)

    def steal_commit_import(self, origin: int, export_id: int) -> int:
        """Thief: activate a tentative import the victim acked."""
        specs = self._steal_imports.pop((origin, export_id), None)
        if specs is None:
            return 0
        self._emit("steal-import-commit", origin=origin,
                   export_id=export_id)
        count = self._activate_import(origin, specs)
        self.stats.tasks_stolen += count
        self.stats.record_queue_depth(self.queue_depth)
        self._service_parked()
        return count

    def steal_abort_import(self, origin: int, export_id: int) -> None:
        """Thief: drop a tentative import the victim refused."""
        if self._steal_imports.pop((origin, export_id),
                                   None) is not None:
            self._emit("steal-import-abort", origin=origin,
                       export_id=export_id)

    def _activate_import(self, origin: int, specs: List[Dict]) -> int:
        """Add stolen tasks under their original (foreign) ids.

        Shard id striding keeps foreign ids disjoint from anything
        this service allocates, so the id counters are deliberately
        *not* advanced.  The foreign job shell tracks only the stolen
        tasks; its completions forward home instead of counting here.
        """
        count = 0
        for spec in specs:
            task_id = spec["task_id"]
            if task_id in self._task_job:
                continue  # idempotent re-activation
            job_id = spec["job_id"]
            job = self._jobs.get(job_id)
            if job is None:
                job = _JobState(job_id)
                self._jobs[job_id] = job
                self._foreign_jobs[job_id] = origin
            task = Task(task_id=task_id,
                        files=frozenset(spec["files"]),
                        flops=float(spec.get("flops", 0.0)))
            self._table.add(task)
            self.engine.add_task(task)
            job.task_ids.add(task_id)
            job.pending.add(task_id)
            self._task_job[task_id] = job_id
            count += 1
        return count

    def take_steal_completions(self) -> Dict[int, List[int]]:
        """Snapshot (without clearing) the forwarding outbox.

        The sender is at-least-once: entries leave the outbox only via
        :meth:`steal_forwarded` after the origin's ack, and the origin
        dedups re-forwards.
        """
        return {origin: list(task_ids)
                for origin, task_ids in self._steal_outbox.items()
                if task_ids}

    def steal_forwarded(self, origin: int, task_ids: List[int]) -> None:
        """Thief: the origin acked these forwarded completions."""
        queue = self._steal_outbox.get(origin)
        if not queue:
            return
        delivered = set(task_ids)
        forwarded = [tid for tid in queue if tid in delivered]
        if not forwarded:
            return
        kept = [tid for tid in queue if tid not in delivered]
        if kept:
            self._steal_outbox[origin] = kept
        else:
            del self._steal_outbox[origin]
        self._emit("steal-forwarded", task_ids=forwarded,
                   origin=origin)
        self._maybe_drained()

    # -- observability ---------------------------------------------------
    def stats_snapshot(self) -> Dict:
        return self.stats.snapshot(
            queue_depth=self.queue_depth,
            outstanding=self.outstanding,
            parked_workers=self.parked_workers,
            draining=self._draining,
            active_leases=self.active_leases,
            jobs_active=sum(1 for job in self._jobs.values()
                            if not job.done))

    def jobs_overview(self) -> List[Dict]:
        """Per-job progress rows (what ``repro top`` renders as bars)."""
        return [self.job_status(job_id)
                for job_id in sorted(self._jobs)]

    # -- durability (repro.cluster snapshot + WAL replay) ----------------
    #: Bump when :meth:`export_state`'s shape changes incompatibly.
    STATE_VERSION = 1

    def export_state(self) -> Dict:
        """Everything a restarted shard needs, as JSON-native data.

        Captures the task table, per-job progress, outstanding leases,
        per-site file state and the engine's RNG stream.  Lease
        *deadlines* are deliberately not exported: a restore re-arms
        every outstanding lease with a fresh TTL (monotonic clocks do
        not survive a process), which can only delay a requeue, never
        lose or duplicate a completion.  Stats counters restart at
        zero — they describe a process, not the schedule.
        """
        engine = self.engine
        rng_state = engine.rng.getstate()
        tasks = sorted(self._table, key=lambda task: task.task_id)
        assigned = [self._assigned[task_id]
                    for task_id in sorted(self._assigned)]
        state = {
            "version": self.STATE_VERSION,
            "metric": engine.metric_name,
            "n": engine.n,
            "fast_path": engine.fast_path,
            "id_start": self._id_start,
            "id_stride": self._id_stride,
            "next_task_id": self._next_task_id,
            "next_job_id": self._next_job_id,
            "next_lease_id": self._next_lease_id,
            "rng": [rng_state[0], list(rng_state[1]), rng_state[2]],
            "decisions": engine.decisions,
            "tasks_scored": engine.tasks_scored,
            "tasks": [[task.task_id, sorted(task.files), task.flops]
                      for task in tasks],
            "jobs": [[job_id, sorted(job.task_ids),
                      sorted(job.completed)]
                     for job_id, job in sorted(self._jobs.items())],
            "assigned": [[lease.task_id, lease.lease_id, lease.worker,
                          lease.site_id] for lease in assigned],
            "completed": sorted(self._completed),
            "sites": [[site_id, engine.site_state(site_id).export()]
                      for site_id in sorted(engine.site_ids)],
            "draining": self._draining,
        }
        steal = self._export_steal_state()
        if steal:
            # Only present once stealing has actually moved something,
            # so a stealing-off (or never-triggered) service exports
            # byte-identical state to the pre-steal service.
            state["steal"] = steal
        return state

    def _export_steal_state(self) -> Dict:
        steal: Dict = {}
        if self._steal_exports:
            steal["exports"] = [
                [export_id, record["thief"], record["acked"],
                 [dict(spec) for spec in record["specs"]],
                 sorted(record["remaining"])]
                for export_id, record
                in sorted(self._steal_exports.items())]
        if self._next_export_id != 1:
            # Exported even with no live exports: export ids must
            # never be reused across restarts (a thief may still hold
            # a tentative import keyed by one).
            steal["next_export_id"] = self._next_export_id
        if self._steal_imports:
            steal["imports"] = [
                [origin, export_id, [dict(spec) for spec in specs]]
                for (origin, export_id), specs
                in sorted(self._steal_imports.items())]
        if self._foreign_jobs:
            steal["foreign_jobs"] = [
                [job_id, origin] for job_id, origin
                in sorted(self._foreign_jobs.items())]
        if self._steal_outbox:
            steal["outbox"] = [
                [origin, list(task_ids)] for origin, task_ids
                in sorted(self._steal_outbox.items())]
        return steal

    def import_state(self, state: Dict) -> None:
        """Rebuild from :meth:`export_state` output (fresh service only).

        Restore order matters for bit-identical future decisions:
        sites are attached *before* tasks are re-added (so every
        task's overlap/refsum folds against the restored residency,
        exactly as ``watch_site`` + ``add_task`` maintain it live),
        pending tasks re-enter in ascending id order (the zero-overlap
        heap ends up with the same entry set, and pop order is fully
        determined by entry tuples), and the RNG stream resumes from
        the captured state.
        """
        if state.get("version") != self.STATE_VERSION:
            raise ServiceError(
                f"snapshot state version {state.get('version')!r} != "
                f"{self.STATE_VERSION}")
        engine = self.engine
        for key, mine in (("metric", engine.metric_name),
                          ("n", engine.n),
                          ("id_start", self._id_start),
                          ("id_stride", self._id_stride)):
            if state.get(key) != mine:
                raise ServiceError(
                    f"snapshot {key}={state.get(key)!r} does not match "
                    f"this service's {key}={mine!r}")
        if len(self._table) or self._jobs:
            raise ServiceError(
                "import_state needs a freshly constructed service")
        for site_id, payload in state["sites"]:
            engine.attach_site(site_id, state=SiteFileState.restore(
                payload["resident"], payload["references"]))
        for task_id, files, flops in state["tasks"]:
            self._table.add(Task(task_id=task_id,
                                 files=frozenset(files),
                                 flops=float(flops)))
        assigned_ids = {entry[0] for entry in state["assigned"]}
        completed = set(state["completed"])
        steal = state.get("steal", {})
        exported_ids: Set[int] = set()
        for _eid, _thief, _acked, _specs, remaining in steal.get(
                "exports", []):
            exported_ids.update(remaining)
        pending: List[int] = []
        for job_id, task_ids, job_completed in state["jobs"]:
            job = _JobState(job_id)
            job.task_ids.update(task_ids)
            job.completed.update(job_completed)
            self._jobs[job_id] = job
            for task_id in task_ids:
                self._task_job[task_id] = job_id
                if (task_id not in completed
                        and task_id not in assigned_ids
                        and task_id not in exported_ids):
                    job.pending.add(task_id)
                    pending.append(task_id)
        for task_id in sorted(pending):
            engine.add_task(self._table[task_id])
        now = self._clock()
        for task_id, lease_id, worker, site_id in state["assigned"]:
            self.ensure_site(site_id)
            lease = _Lease(lease_id, task_id, worker, site_id,
                           now + self.lease_ttl)
            self._assigned[task_id] = lease
            self._leases[lease_id] = lease
            self._by_worker.setdefault(worker, set()).add(task_id)
        self._completed = completed
        self._next_task_id = state["next_task_id"]
        self._next_job_id = state["next_job_id"]
        self._next_lease_id = state["next_lease_id"]
        rng_version, rng_internal, rng_gauss = state["rng"]
        engine.rng.setstate((rng_version, tuple(rng_internal),
                             rng_gauss))
        engine.decisions = state.get("decisions", 0)
        engine.tasks_scored = state.get("tasks_scored", 0)
        self._draining = bool(state.get("draining", False))
        for export_id, thief, acked, specs, remaining in steal.get(
                "exports", []):
            self._steal_exports[export_id] = {
                "thief": thief, "acked": bool(acked),
                "specs": [dict(spec) for spec in specs],
                "remaining": set(remaining)}
            for task_id in remaining:
                self._exported_tasks[task_id] = export_id
        self._next_export_id = steal.get("next_export_id", 1)
        for origin, export_id, specs in steal.get("imports", []):
            self._steal_imports[(origin, export_id)] = [
                dict(spec) for spec in specs]
        for job_id, origin in steal.get("foreign_jobs", []):
            self._foreign_jobs[job_id] = origin
        for origin, task_ids in steal.get("outbox", []):
            self._steal_outbox[origin] = list(task_ids)

    def replay_record(self, record: Dict) -> bool:
        """Re-apply one WAL record emitted by a ``wal_events`` service.

        Returns True when the record mutated state (``decision``
        records and redundant/duplicate records do not).  Replay is a
        pure state fold: nothing is emitted, no parked request is
        answered, stats counters stay untouched — the caller attaches
        the live event log only after the tail is folded in.  Leases
        recreated for in-flight assignments get a fresh TTL; the
        worker either reconnects and completes under its original
        lease id, or the sweeper requeues the task — exactly-once
        either way.
        """
        kind = record.get("event")
        if kind == "submit":
            return self._replay_submit(record)
        if kind == "assign":
            return self._replay_assign(record)
        if kind == "complete":
            return self._replay_complete(record)
        if kind == "lease-expire":
            lease = self._leases.get(record["lease_id"])
            if lease is None or lease.task_id != record["task_id"]:
                return False
            self._release_lease(lease)
            return True
        if kind == "requeue":
            return self._replay_requeue(record)
        if kind == "delta":
            return self._replay_delta(record)
        if kind == "steal-export":
            return self._replay_steal_export(record)
        if kind == "steal-export-ack":
            export = self._steal_exports.get(record["export_id"])
            if export is None or export["acked"]:
                return False
            export["acked"] = True
            return True
        if kind == "steal-export-abort":
            return self._replay_steal_export_abort(record)
        if kind == "steal-import":
            key = (record["origin"], record["export_id"])
            if key in self._steal_imports:
                return False
            self._steal_imports[key] = [dict(spec)
                                        for spec in record["specs"]]
            return True
        if kind == "steal-import-commit":
            specs = self._steal_imports.pop(
                (record["origin"], record["export_id"]), None)
            if specs is None:
                return False
            self._activate_import(record["origin"], specs)
            return True
        if kind == "steal-import-abort":
            return self._steal_imports.pop(
                (record["origin"], record["export_id"]),
                None) is not None
        if kind == "steal-task-done":
            return self._replay_steal_task_done(record)
        if kind == "steal-forwarded":
            return self._replay_steal_forwarded(record)
        return False  # decision spans and unknown kinds: no state

    def _replay_submit(self, record: Dict) -> bool:
        specs = record.get("specs")
        task_ids = record.get("task_ids")
        if specs is None or task_ids is None:
            raise ServiceError(
                "submit record lacks 'specs'/'task_ids' — this event "
                "log was not written in WAL mode")
        job_id = record["job_id"]
        job = self._jobs.get(job_id)
        if job is None:
            job = _JobState(job_id)
            self._jobs[job_id] = job
        for task_id, spec in zip(task_ids, specs):
            if task_id in self._task_job:
                continue  # idempotent re-replay
            task = Task(task_id=task_id,
                        files=frozenset(spec["files"]),
                        flops=float(spec.get("flops", 0.0)))
            self._table.add(task)
            self.engine.add_task(task)
            job.task_ids.add(task_id)
            job.pending.add(task_id)
            self._task_job[task_id] = job_id
            self._next_task_id = max(self._next_task_id,
                                     task_id + self._id_stride)
        self._next_job_id = max(self._next_job_id,
                                job_id + self._id_stride)
        return True

    def _replay_assign(self, record: Dict) -> bool:
        if record.get("replica"):
            # Replica leases are a live-tail optimisation only; the
            # primary assign record already covers the task.
            return False
        task_id = record["task_id"]
        if task_id not in self._task_job:
            raise ServiceError(
                f"assign record for unknown task {task_id}")
        if task_id in self._completed or task_id in self._assigned:
            return False
        if self.engine.is_pending(task_id):
            self.engine.remove_task(self._table[task_id])
        self._jobs[self._task_job[task_id]].pending.discard(task_id)
        lease = _Lease(record["lease_id"], task_id, record["worker"],
                       record["site"], self._clock() + self.lease_ttl)
        self.ensure_site(lease.site_id)
        self._assigned[task_id] = lease
        self._leases[lease.lease_id] = lease
        self._by_worker.setdefault(lease.worker, set()).add(task_id)
        self._next_lease_id = max(self._next_lease_id,
                                  lease.lease_id + 1)
        return True

    def _replay_complete(self, record: Dict) -> bool:
        task_id = record["task_id"]
        if task_id in self._completed:
            return False
        lease = self._assigned.get(task_id)
        if lease is not None:
            self._release_lease(lease)
        elif self.engine.is_pending(task_id):
            # complete raced a requeue in the original run order;
            # honor the completion, it is what the worker was told.
            self.engine.remove_task(self._table[task_id])
        self._completed.add(task_id)
        job = self._jobs[self._task_job[task_id]]
        job.pending.discard(task_id)
        job.completed.add(task_id)
        # A forwarded completion of an exported task also retires the
        # export bookkeeping, exactly as the live steal_done did.
        self._clear_export_entry(task_id)
        return True

    def _replay_steal_export(self, record: Dict) -> bool:
        export_id = record["export_id"]
        if export_id in self._steal_exports:
            return False
        specs = [dict(spec) for spec in record["specs"]]
        remaining: Set[int] = set()
        for spec in specs:
            task_id = spec["task_id"]
            if task_id in self._completed:
                continue
            remaining.add(task_id)
            self._exported_tasks[task_id] = export_id
            if self.engine.is_pending(task_id):
                self.engine.remove_task(self._table[task_id])
            job_id = self._task_job.get(task_id)
            if job_id is not None:
                self._jobs[job_id].pending.discard(task_id)
        self._steal_exports[export_id] = {
            "thief": record["thief"], "acked": False, "specs": specs,
            "remaining": remaining}
        self._next_export_id = max(self._next_export_id,
                                   export_id + 1)
        return True

    def _replay_steal_export_abort(self, record: Dict) -> bool:
        export = self._steal_exports.pop(record["export_id"], None)
        if export is None:
            return False
        for task_id in sorted(export["remaining"]):
            self._exported_tasks.pop(task_id, None)
            if (task_id in self._completed or task_id in self._assigned
                    or self.engine.is_pending(task_id)):
                continue
            self._requeue(task_id)
        return True

    def _replay_steal_task_done(self, record: Dict) -> bool:
        task_id = record["task_id"]
        if task_id in self._completed:
            return False
        lease = self._assigned.get(task_id)
        if lease is not None:
            self._release_lease(lease)
        elif self.engine.is_pending(task_id):
            self.engine.remove_task(self._table[task_id])
        self._completed.add(task_id)
        job = self._jobs[self._task_job[task_id]]
        job.pending.discard(task_id)
        job.completed.add(task_id)
        origin = self._foreign_jobs.get(job.job_id)
        if origin is not None:
            self._steal_outbox.setdefault(origin, []).append(task_id)
        return True

    def _replay_steal_forwarded(self, record: Dict) -> bool:
        delivered = set(record["task_ids"])
        changed = False
        for origin in list(self._steal_outbox):
            queue = self._steal_outbox[origin]
            kept = [tid for tid in queue if tid not in delivered]
            if len(kept) == len(queue):
                continue
            changed = True
            if kept:
                self._steal_outbox[origin] = kept
            else:
                del self._steal_outbox[origin]
        return changed

    def _replay_requeue(self, record: Dict) -> bool:
        task_id = record["task_id"]
        lease = self._assigned.get(task_id)
        if lease is not None:
            # Disconnect requeues have no separate release record.
            self._release_lease(lease)
        if (task_id in self._completed
                or self.engine.is_pending(task_id)):
            return lease is not None
        self._requeue(task_id)
        return True

    def _replay_delta(self, record: Dict) -> bool:
        if "added_ids" not in record:
            raise ServiceError(
                "delta record lacks id lists — this event log was "
                "not written in WAL mode")
        site_id = record["site"]
        self.ensure_site(site_id)
        for fid in record["removed_ids"]:
            self.engine.file_removed(site_id, fid)
        for fid in record["added_ids"]:
            self.engine.file_added(site_id, fid)
        for fid in record["referenced_ids"]:
            self.engine.file_referenced(site_id, fid)
        return True
