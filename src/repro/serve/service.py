"""Transport-agnostic scheduler service around a :class:`PolicyEngine`.

The asyncio server in :mod:`repro.serve.server` is a thin shell; every
scheduling rule lives here, synchronously, so the semantics are
testable without sockets:

* **pull dispatch** — ``request_task`` scores the pending set for the
  requesting worker's site via the engine and hands out the winner;
* **idle parking** — when nothing is pending but tasks are still
  outstanding (or no job has arrived yet) the request is parked and
  answered later, FIFO, when work appears;
* **duplicate-completion tolerance** — ``task_done`` of an
  already-completed task is acknowledged and counted, matching
  :meth:`BaseScheduler.notify_complete`'s contract;
* **requeue on disconnect** — a worker that vanishes with assigned
  tasks returns them to the pending set (first-order failure handling;
  heartbeats are a ROADMAP item);
* **graceful drain** — stop handing out tasks, answer parked requests
  with "no task", and report idle once the last outstanding completion
  lands.

Everything is single-threaded: callers (the asyncio event loop, or a
test) serialize calls.  Replies to parked requests are delivered
through the ``deliver`` callback handed to ``request_task``.
"""

from __future__ import annotations

import random
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from ..core.policy_engine import PolicyEngine
from ..grid.job import Task
from .stats import ServeStats

Deliver = Callable[[Optional[Task]], None]


class ServiceError(RuntimeError):
    """A request the service rejects (reported as a protocol ERROR)."""


class _TaskTable:
    """Growable task lookup satisfying the engine's ``job[id]`` needs."""

    def __init__(self) -> None:
        self._tasks: Dict[int, Task] = {}

    def add(self, task: Task) -> None:
        self._tasks[task.task_id] = task

    def __getitem__(self, task_id: int) -> Task:
        return self._tasks[task_id]

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self):
        return iter(self._tasks.values())


class SchedulerService:
    """Live counterpart of the simulator's global scheduler."""

    def __init__(self, metric: str = "rest", n: int = 1, seed: int = 0,
                 name: str = "repro-serve",
                 clock: Callable[[], float] = time.perf_counter):
        self.name = name
        self._clock = clock
        self._table = _TaskTable()
        self.engine = PolicyEngine(self._table, metric=metric, n=n,
                                   rng=random.Random(seed))
        self.stats = ServeStats()
        self._completed: Set[int] = set()
        self._assigned: Dict[int, str] = {}        # task_id -> worker key
        self._by_worker: Dict[str, Set[int]] = {}  # worker key -> task_ids
        self._parked: Deque[Tuple[str, int, Deliver]] = deque()
        self._next_task_id = 0
        self._next_job_id = 0
        self._draining = False
        #: Called (once) when a drain completes: draining and no
        #: outstanding work.  The server uses it to shut down.
        self.on_drained: Optional[Callable[[], None]] = None

    # -- introspection ---------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return self.engine.pending_count

    @property
    def outstanding(self) -> int:
        return len(self._assigned)

    @property
    def parked_workers(self) -> int:
        return len(self._parked)

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def is_idle(self) -> bool:
        return self.queue_depth == 0 and self.outstanding == 0

    def ensure_site(self, site_id: int) -> None:
        if site_id not in self.engine.site_ids:
            self.engine.attach_site(site_id)

    # -- job intake ------------------------------------------------------
    def submit_job(self, tasks_payload: List[dict]) -> Dict:
        """Append a batch of tasks; returns their global ids.

        ``tasks_payload`` items need ``files`` (non-empty int list) and
        optional ``flops``.  Task ids are assigned by the service so
        independent submitters can never collide.
        """
        if self._draining:
            raise ServiceError("server is draining; job rejected")
        if not isinstance(tasks_payload, list) or not tasks_payload:
            raise ServiceError("JOB_SUBMIT needs a non-empty task list")
        tasks: List[Task] = []
        for spec in tasks_payload:
            if not isinstance(spec, dict):
                raise ServiceError("each task must be an object")
            files = spec.get("files")
            if (not isinstance(files, list) or not files
                    or any(not isinstance(fid, int) for fid in files)):
                raise ServiceError(
                    "each task needs a non-empty int 'files' list")
            flops = spec.get("flops", 0.0)
            if not isinstance(flops, (int, float)) or flops < 0:
                raise ServiceError("'flops' must be a number >= 0")
            tasks.append(Task(task_id=self._next_task_id,
                              files=frozenset(files), flops=float(flops)))
            self._next_task_id += 1
        job_id = self._next_job_id
        self._next_job_id += 1
        for task in tasks:
            self._table.add(task)
            self.engine.add_task(task)
        self.stats.jobs_submitted += 1
        self.stats.tasks_submitted += len(tasks)
        self.stats.record_queue_depth(self.queue_depth)
        self._dispatch_parked()
        return {"job_id": job_id,
                "task_ids": [task.task_id for task in tasks]}

    # -- the pull loop ---------------------------------------------------
    def request_task(self, worker: str, site_id: int,
                     deliver: Deliver) -> None:
        """Answer a worker's pull, now or later, via ``deliver``.

        ``deliver(task)`` hands out an assignment; ``deliver(None)``
        means "no task will ever come — disconnect" (drain, or the
        submitted work is fully complete).
        """
        self.ensure_site(site_id)
        if self.engine.has_pending and not self._draining:
            deliver(self._assign(worker, site_id))
        elif self._draining or (self._next_task_id > 0 and self.is_idle):
            deliver(None)
        else:
            # Nothing pending but work outstanding (may be requeued), or
            # no job submitted yet: park until the situation changes.
            self._parked.append((worker, site_id, deliver))

    def _assign(self, worker: str, site_id: int) -> Task:
        start = self._clock()
        task = self.engine.choose(site_id)
        latency = self._clock() - start
        overlap = self.engine.overlap(site_id, task.task_id)
        self.engine.remove_task(task)
        self._assigned[task.task_id] = worker
        self._by_worker.setdefault(worker, set()).add(task.task_id)
        self.stats.record_assignment(site_id, latency, overlap > 0)
        return task

    def _dispatch_parked(self) -> None:
        while (self._parked and self.engine.has_pending
               and not self._draining):
            worker, site_id, deliver = self._parked.popleft()
            deliver(self._assign(worker, site_id))
        if self._draining or (self._next_task_id > 0 and self.is_idle):
            self._release_parked()

    def _release_parked(self) -> None:
        parked, self._parked = self._parked, deque()
        for _worker, _site_id, deliver in parked:
            deliver(None)

    # -- completions -----------------------------------------------------
    def task_done(self, worker: str, task_id: int) -> bool:
        """Record a completion; True if it was a duplicate."""
        if not isinstance(task_id, int) or not (
                0 <= task_id < self._next_task_id):
            raise ServiceError(f"unknown task id {task_id!r}")
        owner = self._assigned.pop(task_id, None)
        if owner is not None:
            self._by_worker.get(owner, set()).discard(task_id)
        if task_id in self._completed:
            self.stats.duplicate_completions += 1
            return True
        self._completed.add(task_id)
        self.stats.completions += 1
        if self.is_idle:
            self._release_parked()
        self._maybe_drained()
        return False

    # -- file-state deltas ----------------------------------------------
    def file_delta(self, site_id: int, added: List[int],
                   removed: List[int], referenced: List[int]) -> None:
        """Apply a worker's report of its site cache changes.

        Removals apply first (an LRU reports the eviction a new file
        caused), then insertions, then references — the same order the
        simulator's storage emits.  Redundant adds/removes (two workers
        sharing a site) are idempotent no-ops.
        """
        self.ensure_site(site_id)
        for fid in removed:
            self.engine.file_removed(site_id, fid)
        for fid in added:
            self.engine.file_added(site_id, fid)
        for fid in referenced:
            self.engine.file_referenced(site_id, fid)
        self.stats.record_delta(len(added), len(removed), len(referenced))

    # -- lifecycle -------------------------------------------------------
    def disconnect(self, worker: str) -> int:
        """A worker's connection closed; requeue its assigned tasks."""
        self._parked = deque(entry for entry in self._parked
                             if entry[0] != worker)
        lost = self._by_worker.pop(worker, set())
        requeued = 0
        for task_id in sorted(lost):
            self._assigned.pop(task_id, None)
            if task_id not in self._completed:
                self.engine.add_task(self._table[task_id])
                requeued += 1
        if requeued:
            self.stats.requeues += requeued
            self.stats.record_queue_depth(self.queue_depth)
            self._dispatch_parked()
        self._maybe_drained()
        return requeued

    def drain(self) -> None:
        """Stop handing out tasks; finish outstanding work, then idle."""
        self._draining = True
        self._release_parked()
        self._maybe_drained()

    def _maybe_drained(self) -> None:
        if self._draining and self.outstanding == 0:
            callback, self.on_drained = self.on_drained, None
            if callback is not None:
                callback()

    # -- observability ---------------------------------------------------
    def stats_snapshot(self) -> Dict:
        return self.stats.snapshot(
            queue_depth=self.queue_depth,
            outstanding=self.outstanding,
            parked_workers=self.parked_workers,
            draining=self._draining)
