"""Observability for the live scheduler: latency histogram + counters.

Everything the ``STATS`` request exposes is maintained here, O(1) per
event: a geometric-bucket latency histogram for scheduling decisions,
assignment/completion counters, per-site overlap hit rates, and
file-delta volume.  No external metrics dependency — the snapshot is a
plain dict, ready for JSON.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional


class LatencyHistogram:
    """Geometric buckets from 1 µs up, doubling; O(1) record/quantile.

    Bucket ``k`` holds samples in ``(base·2^(k-1), base·2^k]``; an
    underflow bucket catches anything ≤ base.  Quantiles return the
    upper edge of the containing bucket — a ≤2× overestimate, which is
    the right bias for latency reporting.
    """

    def __init__(self, base_seconds: float = 1e-6, num_buckets: int = 36):
        self._base = base_seconds
        self._counts = [0] * (num_buckets + 1)  # [underflow, b1..bN]
        self._edges = [base_seconds * (2 ** k)
                       for k in range(num_buckets + 1)]
        self.count = 0
        self.max = 0.0
        self.total = 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds
        index = 0
        edge = self._base
        while seconds > edge and index < len(self._counts) - 1:
            index += 1
            edge *= 2
        self._counts[index] += 1

    def quantile(self, q: float) -> float:
        """Upper bucket edge containing the q-quantile (0 if empty)."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for index, bucket in enumerate(self._counts):
            seen += bucket
            if seen >= target:
                return min(self._edges[index], self.max)
        return self.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_us": self.mean * 1e6,
            "p50_us": self.quantile(0.50) * 1e6,
            "p90_us": self.quantile(0.90) * 1e6,
            "p99_us": self.quantile(0.99) * 1e6,
            "max_us": self.max * 1e6,
        }


class _SiteCounters:
    __slots__ = ("assignments", "overlap_hits")

    def __init__(self) -> None:
        self.assignments = 0
        self.overlap_hits = 0


class ServeStats:
    """All counters behind the ``STATS`` request."""

    def __init__(self, clock=time.monotonic):
        self._clock = clock
        self.started_at = clock()
        self.decision_latency = LatencyHistogram()
        self.tasks_submitted = 0
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.assignments = 0
        self.completions = 0
        self.duplicate_completions = 0
        self.stale_completions = 0
        self.requeues = 0
        self.leases_granted = 0
        self.lease_renewals = 0
        self.lease_expiries = 0
        self.peak_queue_depth = 0
        self.files_added = 0
        self.files_removed = 0
        self.files_referenced = 0
        self._sites: Dict[int, _SiteCounters] = {}

    # -- recording -------------------------------------------------------
    def record_queue_depth(self, depth: int) -> None:
        if depth > self.peak_queue_depth:
            self.peak_queue_depth = depth

    def record_assignment(self, site_id: int, latency_s: float,
                          overlap_hit: bool) -> None:
        self.assignments += 1
        self.decision_latency.record(latency_s)
        site = self._sites.setdefault(site_id, _SiteCounters())
        site.assignments += 1
        if overlap_hit:
            site.overlap_hits += 1

    def record_delta(self, added: int, removed: int,
                     referenced: int) -> None:
        self.files_added += added
        self.files_removed += removed
        self.files_referenced += referenced

    # -- reporting -------------------------------------------------------
    @property
    def uptime(self) -> float:
        return self._clock() - self.started_at

    def snapshot(self, queue_depth: int = 0, outstanding: int = 0,
                 parked_workers: int = 0,
                 draining: Optional[bool] = None,
                 active_leases: int = 0,
                 jobs_active: int = 0) -> Dict:
        uptime = max(self.uptime, 1e-9)
        sites = {
            str(site_id): {
                "assignments": counters.assignments,
                "overlap_hits": counters.overlap_hits,
                "overlap_hit_rate": (counters.overlap_hits
                                     / counters.assignments
                                     if counters.assignments else 0.0),
            }
            for site_id, counters in sorted(self._sites.items())
        }
        snap = {
            "uptime_s": uptime,
            "jobs_submitted": self.jobs_submitted,
            "jobs_completed": self.jobs_completed,
            "jobs_active": jobs_active,
            "tasks_submitted": self.tasks_submitted,
            "assignments": self.assignments,
            "assignments_per_sec": self.assignments / uptime,
            "completions": self.completions,
            "duplicate_completions": self.duplicate_completions,
            "stale_completions": self.stale_completions,
            "requeues": self.requeues,
            "leases": {
                "active": active_leases,
                "granted": self.leases_granted,
                "renewals": self.lease_renewals,
                "expiries": self.lease_expiries,
            },
            "queue_depth": queue_depth,
            "peak_queue_depth": self.peak_queue_depth,
            "outstanding": outstanding,
            "parked_workers": parked_workers,
            "decision_latency": self.decision_latency.snapshot(),
            "file_deltas": {
                "added": self.files_added,
                "removed": self.files_removed,
                "referenced": self.files_referenced,
            },
            "sites": sites,
        }
        if draining is not None:
            snap["draining"] = draining
        return snap


def format_stats(snapshot: Dict) -> str:
    """Human-readable multi-line rendering of a stats snapshot."""
    latency = snapshot["decision_latency"]
    lines: List[str] = [
        f"uptime            : {snapshot['uptime_s']:.1f} s",
        f"jobs / tasks      : {snapshot['jobs_submitted']} / "
        f"{snapshot['tasks_submitted']}",
        f"assignments       : {snapshot['assignments']} "
        f"({snapshot['assignments_per_sec']:.1f}/s)",
        f"completions       : {snapshot['completions']} "
        f"(+{snapshot['duplicate_completions']} duplicate, "
        f"{snapshot['stale_completions']} stale, "
        f"{snapshot['requeues']} requeued)",
        f"leases            : {snapshot['leases']['active']} active, "
        f"{snapshot['leases']['granted']} granted, "
        f"{snapshot['leases']['renewals']} renewed, "
        f"{snapshot['leases']['expiries']} expired",
        f"queue depth       : {snapshot['queue_depth']} now, "
        f"{snapshot['peak_queue_depth']} peak, "
        f"{snapshot['outstanding']} outstanding, "
        f"{snapshot['parked_workers']} parked",
        f"decision latency  : p50 {latency['p50_us']:.0f} us, "
        f"p99 {latency['p99_us']:.0f} us, "
        f"max {latency['max_us']:.0f} us over {latency['count']}",
    ]
    for site_id, site in snapshot["sites"].items():
        lines.append(
            f"site {site_id:>3} overlap : "
            f"{site['overlap_hit_rate']:6.1%} "
            f"({site['overlap_hits']}/{site['assignments']})")
    return "\n".join(lines)
