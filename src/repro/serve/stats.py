"""Observability for the live scheduler, on the unified registry.

Every counter behind the ``STATS`` request now lives in a
:class:`~repro.obs.metrics.MetricsRegistry` (one scrape of
``/metrics`` sees exactly what ``STATS`` reports), but the *wire
shape* of the snapshot is unchanged — :meth:`ServeStats.snapshot`
builds the same plain dict as before, byte-compatible with protocol
v2.  The old attribute API (``stats.completions += 1``) keeps working
through properties that read and write the underlying metrics.

:class:`~repro.obs.metrics.LatencyHistogram` used to be defined here;
it is promoted to :mod:`repro.obs.metrics` (with O(1)
``int.bit_length()`` bucket indexing) and re-exported for
compatibility.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from ..obs.metrics import Counter, LatencyHistogram, MetricsRegistry

__all__ = ["LatencyHistogram", "ServeStats", "format_stats"]

#: ``ServeStats`` attribute -> (metric name, help).  One monotonic
#: counter each; the attribute names are the legacy public API.
_COUNTERS = {
    "jobs_submitted": ("repro_jobs_submitted_total",
                       "Jobs opened by JOB_SUBMIT"),
    "jobs_completed": ("repro_jobs_completed_total",
                       "Jobs whose every task completed"),
    "tasks_submitted": ("repro_tasks_submitted_total",
                        "Tasks accepted across all jobs"),
    "assignments": ("repro_assignments_total",
                    "Tasks handed to workers"),
    "completions": ("repro_completions_total",
                    "Completions accepted with a valid lease"),
    "duplicate_completions": ("repro_duplicate_completions_total",
                              "Completions for already-complete tasks"),
    "stale_completions": ("repro_stale_completions_total",
                          "Completions rejected for a stale lease"),
    "requeues": ("repro_requeues_total",
                 "Tasks returned to the pending set"),
    "leases_granted": ("repro_leases_granted_total",
                       "Leases granted (one per assignment)"),
    "lease_renewals": ("repro_lease_renewals_total",
                       "Lease renewals via HEARTBEAT"),
    "lease_expiries": ("repro_lease_expiries_total",
                       "Leases lapsed and swept"),
    "files_added": ("repro_files_added_total",
                    "File-delta insertions reported by workers"),
    "files_removed": ("repro_files_removed_total",
                      "File-delta evictions reported by workers"),
    "files_referenced": ("repro_files_referenced_total",
                         "File references reported by workers"),
    "batch_requests": ("repro_batch_requests_total",
                       "REQUEST_TASK pulls that carried max_tasks"),
    "batched_assignments": ("repro_batched_assignments_total",
                            "Tasks handed out inside TASK_BATCH replies"),
    "delta_duplicate_adds": ("repro_delta_duplicate_adds_total",
                             "FILE_DELTA adds that were already "
                             "resident (redundant wire traffic)"),
    "delta_duplicate_removes": ("repro_delta_duplicate_removes_total",
                                "FILE_DELTA removes that were already "
                                "gone (redundant wire traffic)"),
    "admission_rejections": ("repro_admission_rejections_total",
                             "JOB_SUBMITs rejected by the pending-"
                             "queue admission watermark"),
    "task_replications": ("repro_task_replications_total",
                          "Replica leases granted on straggling "
                          "tail tasks"),
    "replica_wins": ("repro_replica_wins_total",
                     "Completions that landed via a replica lease "
                     "(first-completion-wins)"),
    "tasks_stolen": ("repro_tasks_stolen_total",
                     "Tasks imported from a peer shard by work "
                     "stealing"),
    "tasks_exported": ("repro_tasks_exported_total",
                       "Tasks exported to a thief shard by work "
                       "stealing"),
}

#: ``bind_live`` keyword -> (gauge name, help).  Callback gauges over
#: live service state, so a scrape never reads a stale copy.
_LIVE_GAUGES = {
    "queue_depth": ("repro_queue_depth",
                    "Pending tasks in the scheduler queue"),
    "outstanding": ("repro_outstanding_tasks",
                    "Tasks assigned and not yet completed"),
    "parked_workers": ("repro_parked_workers",
                       "Worker pulls parked waiting for work"),
    "active_leases": ("repro_active_leases",
                      "Leases currently guarding assignments"),
    "jobs_active": ("repro_jobs_active",
                    "Jobs with incomplete tasks"),
    "draining": ("repro_draining",
                 "1 while the server is draining, else 0"),
}


def _counter_property(attr: str) -> property:
    def getter(self: "ServeStats") -> int:
        return int(self._counters[attr].value)

    def setter(self: "ServeStats", value) -> None:
        # Legacy ``stats.completions += 1`` support: the augmented
        # assignment reads the property then writes the new total.
        counter = self._counters[attr]
        delta = float(value) - counter.value
        if delta < 0:
            raise ValueError(f"{attr} is monotonic; cannot go from "
                             f"{counter.value:g} to {value}")
        counter.inc(delta)

    return property(getter, setter)


class _SiteCounters:
    """Per-site metric children plus the derived hit-rate gauge."""

    __slots__ = ("assignment_counter", "hit_counter", "rate_gauge")

    def __init__(self, assignment_counter: Counter, hit_counter: Counter,
                 rate_gauge) -> None:
        self.assignment_counter = assignment_counter
        self.hit_counter = hit_counter
        self.rate_gauge = rate_gauge

    @property
    def assignments(self) -> int:
        return int(self.assignment_counter.value)

    @property
    def overlap_hits(self) -> int:
        return int(self.hit_counter.value)


class ServeStats:
    """All counters behind the ``STATS`` request, registry-backed."""

    def __init__(self, clock=time.monotonic,
                 registry: Optional[MetricsRegistry] = None):
        self._clock = clock
        self.started_at = clock()
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        reg = self.registry
        reg.gauge("repro_uptime_seconds",
                  "Seconds since the stats epoch",
                  callback=lambda: self.uptime)
        self.decision_latency = reg.histogram(
            "repro_decision_latency_seconds",
            "Scheduling decision latency (PolicyEngine.choose)")
        #: The same decisions, labeled by scheduling metric, so the
        #: decision kernel's latency profile is visible per policy in
        #: ``/metrics`` and ``repro top`` (a daemon only runs one
        #: metric, but dashboards aggregating several daemons need the
        #: label to keep the series apart).
        self.scheduler_decision = reg.histogram(
            "repro_scheduler_decision_seconds",
            "Decision-kernel latency by scheduling metric",
            labelnames=("metric",))
        self._counters: Dict[str, Counter] = {
            attr: reg.counter(name, help_text)
            for attr, (name, help_text) in _COUNTERS.items()}
        self._peak_queue_depth = reg.gauge(
            "repro_peak_queue_depth",
            "High-water mark of the pending queue")
        self._site_assignments = reg.counter(
            "repro_site_assignments_total",
            "Tasks assigned to workers of one site",
            labelnames=("site",))
        self._site_overlap_hits = reg.counter(
            "repro_site_overlap_hits_total",
            "Assignments with at least one input already resident",
            labelnames=("site",))
        self._site_hit_rate = reg.gauge(
            "repro_site_overlap_hit_rate",
            "overlap_hits / assignments per site",
            labelnames=("site",))
        self._sites: Dict[int, _SiteCounters] = {}
        #: Batch-size histogram: granted batch size -> request count.
        #: (Small closed domain — sizes are 1..k — so exact counts per
        #: size beat log-spaced latency buckets.)
        self._batch_size_counter = reg.counter(
            "repro_assignment_batch_size_total",
            "REQUEST_TASK batch pulls by granted batch size",
            labelnames=("size",))
        self._batch_sizes: Dict[int, int] = {}
        #: Per-tenant (per-job) assignment counter: which job each
        #: grant went to, so weighted-fair shares are observable.
        self._tenant_assignments = reg.counter(
            "repro_tenant_assignments_total",
            "Tasks assigned, by owning job (tenant)",
            labelnames=("job",))
        self._tenants: Dict[int, int] = {}
        #: STEAL_REQUESTs answered by this shard (as the victim), by
        #: outcome: granted / empty / rejected / error.
        self._steal_requests = reg.counter(
            "repro_steal_requests_total",
            "STEAL_REQUESTs answered, by outcome",
            labelnames=("outcome",))
        self._steal_outcomes: Dict[str, int] = {}

    # -- recording -------------------------------------------------------
    def record_queue_depth(self, depth: int) -> None:
        if depth > self.peak_queue_depth:
            self._peak_queue_depth.set(depth)

    def _site(self, site_id: int) -> _SiteCounters:
        site = self._sites.get(site_id)
        if site is None:
            label = str(site_id)
            site = self._sites[site_id] = _SiteCounters(
                self._site_assignments.labels(site=label),
                self._site_overlap_hits.labels(site=label),
                self._site_hit_rate.labels(site=label))
        return site

    def record_assignment(self, site_id: int, latency_s: float,
                          overlap_hit: bool,
                          metric: Optional[str] = None) -> None:
        self._counters["assignments"].inc()
        self.decision_latency.record(latency_s)
        if metric is not None:
            self.scheduler_decision.labels(metric=metric).record(
                latency_s)
        site = self._site(site_id)
        site.assignment_counter.inc()
        if overlap_hit:
            site.hit_counter.inc()
        site.rate_gauge.set(site.hit_counter.value
                            / site.assignment_counter.value)

    def record_tenant_assignment(self, job_id: int) -> None:
        """One grant charged to ``job_id``'s fair-share account."""
        self._tenant_assignments.labels(job=str(job_id)).inc()
        self._tenants[job_id] = self._tenants.get(job_id, 0) + 1

    def record_steal_request(self, outcome: str) -> None:
        """One answered STEAL_REQUEST, by outcome."""
        self._steal_requests.labels(outcome=outcome).inc()
        self._steal_outcomes[outcome] = \
            self._steal_outcomes.get(outcome, 0) + 1

    def record_batch(self, granted: int) -> None:
        """One answered batched pull that granted ``granted`` tasks."""
        self._counters["batch_requests"].inc()
        self._counters["batched_assignments"].inc(granted)
        self._batch_size_counter.labels(size=str(granted)).inc()
        self._batch_sizes[granted] = self._batch_sizes.get(granted, 0) + 1

    def record_delta(self, added: int, removed: int, referenced: int,
                     duplicate_adds: int = 0,
                     duplicate_removes: int = 0) -> None:
        self._counters["files_added"].inc(added)
        self._counters["files_removed"].inc(removed)
        self._counters["files_referenced"].inc(referenced)
        self._counters["delta_duplicate_adds"].inc(duplicate_adds)
        self._counters["delta_duplicate_removes"].inc(duplicate_removes)

    def bind_live(self, **callbacks: Callable[[], float]) -> None:
        """Register live callback gauges (queue depth, leases, ...).

        Keys must come from the fixed name table; the service calls
        this once with lambdas over its own properties, after which a
        ``/metrics`` scrape reads the *current* values with no
        snapshot copying.
        """
        for key, callback in callbacks.items():
            if key not in _LIVE_GAUGES:
                raise ValueError(f"unknown live gauge {key!r}; choose "
                                 f"from {sorted(_LIVE_GAUGES)}")
            name, help_text = _LIVE_GAUGES[key]
            self.registry.gauge(name, help_text, callback=callback)

    # -- reporting -------------------------------------------------------
    @property
    def uptime(self) -> float:
        return self._clock() - self.started_at

    @property
    def peak_queue_depth(self) -> int:
        return int(self._peak_queue_depth.value)

    def snapshot(self, queue_depth: int = 0, outstanding: int = 0,
                 parked_workers: int = 0,
                 draining: Optional[bool] = None,
                 active_leases: int = 0,
                 jobs_active: int = 0) -> Dict:
        uptime = max(self.uptime, 1e-9)
        sites = {
            str(site_id): {
                "assignments": counters.assignments,
                "overlap_hits": counters.overlap_hits,
                "overlap_hit_rate": (counters.overlap_hits
                                     / counters.assignments
                                     if counters.assignments else 0.0),
            }
            for site_id, counters in sorted(self._sites.items())
        }
        snap = {
            "uptime_s": uptime,
            "jobs_submitted": self.jobs_submitted,
            "jobs_completed": self.jobs_completed,
            "jobs_active": jobs_active,
            "tasks_submitted": self.tasks_submitted,
            "assignments": self.assignments,
            "assignments_per_sec": self.assignments / uptime,
            "completions": self.completions,
            "duplicate_completions": self.duplicate_completions,
            "stale_completions": self.stale_completions,
            "requeues": self.requeues,
            "leases": {
                "active": active_leases,
                "granted": self.leases_granted,
                "renewals": self.lease_renewals,
                "expiries": self.lease_expiries,
            },
            "queue_depth": queue_depth,
            "peak_queue_depth": self.peak_queue_depth,
            "outstanding": outstanding,
            "parked_workers": parked_workers,
            "decision_latency": self.decision_latency.snapshot(),
            "scheduler_decision": {
                labels[0]: child.snapshot()
                for labels, child in self.scheduler_decision.children()},
            "file_deltas": {
                "added": self.files_added,
                "removed": self.files_removed,
                "referenced": self.files_referenced,
            },
            "delta_dedup": {
                "duplicate_adds": self.delta_duplicate_adds,
                "duplicate_removes": self.delta_duplicate_removes,
            },
            "batches": {
                "requests": self.batch_requests,
                "tasks": self.batched_assignments,
                "sizes": {str(size): count for size, count
                          in sorted(self._batch_sizes.items())},
            },
            "admission": {
                "rejections": self.admission_rejections,
            },
            "replication": {
                "granted": self.task_replications,
                "replica_wins": self.replica_wins,
            },
            "steal": {
                "tasks_stolen": self.tasks_stolen,
                "tasks_exported": self.tasks_exported,
                "requests": {outcome: count for outcome, count
                             in sorted(self._steal_outcomes.items())},
            },
            "tenants": {str(job_id): count for job_id, count
                        in sorted(self._tenants.items())},
            "sites": sites,
        }
        if draining is not None:
            snap["draining"] = draining
        return snap


for _attr in _COUNTERS:
    setattr(ServeStats, _attr, _counter_property(_attr))
del _attr


def format_stats(snapshot: Dict) -> str:
    """Human-readable multi-line rendering of a stats snapshot."""
    latency = snapshot["decision_latency"]
    lines: List[str] = [
        f"uptime            : {snapshot['uptime_s']:.1f} s",
        f"jobs / tasks      : {snapshot['jobs_submitted']} / "
        f"{snapshot['tasks_submitted']}",
        f"assignments       : {snapshot['assignments']} "
        f"({snapshot['assignments_per_sec']:.1f}/s)",
        f"completions       : {snapshot['completions']} "
        f"(+{snapshot['duplicate_completions']} duplicate, "
        f"{snapshot['stale_completions']} stale, "
        f"{snapshot['requeues']} requeued)",
        f"leases            : {snapshot['leases']['active']} active, "
        f"{snapshot['leases']['granted']} granted, "
        f"{snapshot['leases']['renewals']} renewed, "
        f"{snapshot['leases']['expiries']} expired",
        f"queue depth       : {snapshot['queue_depth']} now, "
        f"{snapshot['peak_queue_depth']} peak, "
        f"{snapshot['outstanding']} outstanding, "
        f"{snapshot['parked_workers']} parked",
        f"decision latency  : p50 {latency['p50_us']:.0f} us, "
        f"p99 {latency['p99_us']:.0f} us, "
        f"max {latency['max_us']:.0f} us over {latency['count']}",
    ]
    admission = snapshot.get("admission", {})
    if admission.get("rejections"):
        lines.append(f"admission         : "
                     f"{admission['rejections']} submit(s) rejected "
                     f"over watermark")
    replication = snapshot.get("replication", {})
    if replication.get("granted"):
        lines.append(f"replication       : "
                     f"{replication['granted']} replica(s) granted, "
                     f"{replication['replica_wins']} won the race")
    steal = snapshot.get("steal", {})
    if steal.get("tasks_stolen") or steal.get("tasks_exported"):
        requests = ", ".join(f"{count} {outcome}" for outcome, count
                             in steal.get("requests", {}).items())
        lines.append(f"work stealing     : "
                     f"{steal['tasks_stolen']} stolen, "
                     f"{steal['tasks_exported']} exported"
                     + (f" ({requests})" if requests else ""))
    tenants = snapshot.get("tenants", {})
    if len(tenants) > 1:
        shares = ", ".join(f"job {job}: {count}"
                           for job, count in tenants.items())
        lines.append(f"tenant shares     : {shares}")
    for site_id, site in snapshot["sites"].items():
        lines.append(
            f"site {site_id:>3} overlap : "
            f"{site['overlap_hit_rate']:6.1%} "
            f"({site['overlap_hits']}/{site['assignments']})")
    return "\n".join(lines)
