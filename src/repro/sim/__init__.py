"""Discrete-event simulation kernel (SimGrid substitute).

A compact, deterministic, generator-process DES engine:

* :class:`Environment` — clock, event queue, run loop.
* :class:`Event`, :class:`Timeout`, :class:`AllOf`, :class:`AnyOf` —
  waitable occurrences.
* :class:`Process` — a generator stepped through the events it yields.
* :class:`Resource`, :class:`Store`, :class:`PriorityStore` — contention
  primitives.
* :class:`RngRegistry` — named deterministic random streams.
"""

from .engine import Environment
from .errors import (
    EmptyScheduleError,
    EventAlreadyTriggeredError,
    Interrupt,
    SchedulingInPastError,
    SimulationError,
)
from .events import AllOf, AnyOf, Event, Timeout
from .monitor import StateMonitor, grid_probes
from .process import Process
from .resources import PriorityStore, Request, Resource, Store
from .rng import RngRegistry, derive_seed

__all__ = [
    "AllOf",
    "AnyOf",
    "EmptyScheduleError",
    "Environment",
    "Event",
    "EventAlreadyTriggeredError",
    "Interrupt",
    "PriorityStore",
    "Process",
    "Request",
    "Resource",
    "RngRegistry",
    "SchedulingInPastError",
    "SimulationError",
    "StateMonitor",
    "Store",
    "Timeout",
    "derive_seed",
    "grid_probes",
]
