"""The simulation environment: clock, event queue, and run loop.

:class:`Environment` is the kernel facade.  Model code creates one
environment per simulation, spawns processes with :meth:`Environment.process`
and advances time with :meth:`Environment.run`.

Determinism
-----------
Events are ordered by ``(time, priority, sequence)`` where ``sequence`` is a
monotonically increasing insertion counter, so two runs with the same seed
and the same model produce byte-identical event orders.  This property is
load-bearing: the reproduction's experiment harness averages over seeds and
its tests assert exact trace equality.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Optional, Tuple

from .errors import EmptyScheduleError, SchedulingInPastError
from .events import Event, Timeout, AllOf, AnyOf, NORMAL
from .process import Process, EventGenerator

#: Queue entry layout: (time, priority, sequence, event)
QueueEntry = Tuple[float, int, int, Event]


class Environment:
    """Execution environment for a single discrete-event simulation.

    Parameters
    ----------
    initial_time:
        Simulation clock value at creation (default ``0.0``).
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[QueueEntry] = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    # -- inspection ------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being stepped, if any."""
        return self._active_process

    @property
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def __len__(self) -> int:
        return len(self._queue)

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: EventGenerator,
                name: Optional[str] = None) -> Process:
        """Spawn ``generator`` as a new simulation process."""
        return Process(self, generator, name=name)

    def all_of(self, events) -> AllOf:
        """Event that succeeds when all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event that succeeds when any of ``events`` succeeds."""
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------
    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = NORMAL) -> None:
        """Insert a triggered event into the queue ``delay`` from now."""
        if delay < 0:
            raise SchedulingInPastError(f"delay {delay} < 0")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority,
                                     self._seq, event))

    # -- execution -------------------------------------------------------
    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._queue:
            raise EmptyScheduleError("no events scheduled")
        self._now, _priority, _seq, event = heapq.heappop(self._queue)
        callbacks = event.callbacks
        event.callbacks = None
        event._mark_processed()
        if callbacks:
            for callback in callbacks:
                callback(event)
        elif not event.ok:
            # A failed event nobody was waiting on: surface it rather
            # than letting a dead process vanish silently.
            raise event.value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or the clock passes ``until``.

        When ``until`` is given, the clock is left exactly at ``until``
        even if the next event lies beyond it.
        """
        if until is None:
            while self._queue:
                self.step()
            return
        limit = float(until)
        if limit < self._now:
            raise SchedulingInPastError(
                f"until={limit} is before now={self._now}")
        while self._queue and self._queue[0][0] <= limit:
            self.step()
        self._now = limit

    def run_until_event(self, event: Event) -> Any:
        """Run until ``event`` is processed; return its value.

        Raises the event's exception if it failed, and
        :class:`EmptyScheduleError` if the simulation drains first.
        """
        while not event.processed:
            if not self._queue:
                raise EmptyScheduleError(
                    f"simulation drained before {event!r} was processed")
            self.step()
        if not event.ok:
            raise event.value
        return event.value
