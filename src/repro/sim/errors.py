"""Exception types used by the discrete-event simulation kernel.

The kernel distinguishes three failure families:

* :class:`SimulationError` — programming errors against the kernel API
  (scheduling into the past, running a finished simulation, ...).
* :class:`Interrupt` — thrown *into* a process when another process calls
  :meth:`repro.sim.process.Process.interrupt`.  It is a control-flow
  signal, not an error, and processes are expected to catch it.
* Event failure — any exception passed to ``Event.fail`` is re-raised in
  every process waiting on that event.
"""

from __future__ import annotations


class SimulationError(RuntimeError):
    """A misuse of the simulation kernel API."""


class SchedulingInPastError(SimulationError):
    """An event was scheduled with a delay lower than zero."""


class EventAlreadyTriggeredError(SimulationError):
    """``succeed``/``fail`` was called on an already-triggered event."""


class EmptyScheduleError(SimulationError):
    """``run`` was asked to advance but no events remain.

    Raised by :meth:`repro.sim.engine.Environment.step` when the event
    queue is empty.  ``Environment.run`` catches it internally and returns
    normally, so user code only sees it when stepping manually.
    """


class Interrupt(Exception):
    """Thrown into a process that is interrupted by another process.

    The interrupting party may attach an arbitrary ``cause`` explaining
    why the interrupt happened; it is available as :attr:`cause`.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)

    @property
    def cause(self) -> object:
        """The value passed to ``Process.interrupt``, or ``None``."""
        return self.args[0]
