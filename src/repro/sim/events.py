"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` moves through three states:

``PENDING``
    Created but not yet triggered; it sits outside the event queue.
``TRIGGERED``
    ``succeed``/``fail`` was called (or a delay elapsed); the event is in
    the queue and will be *processed* when the clock reaches its time.
``PROCESSED``
    Its callbacks have run.  Waiting on a processed event resumes the
    waiter immediately (at the current simulation time).

Composite events (:class:`AllOf`, :class:`AnyOf`) wait on collections of
child events and are the kernel-level building blocks for scatter/gather
communication patterns used by the grid model (e.g. a batch file request
completing when every file transfer in the batch has finished).
"""

from __future__ import annotations

import typing
from typing import Any, Callable, List, Optional

from .errors import EventAlreadyTriggeredError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Environment

#: State constants.  Kept as plain ints (not an Enum) because event state
#: checks sit on the kernel hot path.
PENDING = 0
TRIGGERED = 1
PROCESSED = 2

#: Queue priorities.  URGENT is used for interrupts and resource
#: bookkeeping so they run before ordinary events at the same timestamp.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    env:
        The environment that will process this event.
    """

    __slots__ = ("env", "callbacks", "_value", "_state", "_ok")

    def __init__(self, env: "Environment"):
        self.env = env
        #: Callables invoked with this event once it is processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._state = PENDING
        self._ok = True

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once ``succeed``/``fail`` has been called."""
        return self._state >= TRIGGERED

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (the exception, for failed events)."""
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value``.

        ``delay`` postpones processing into the simulated future; the
        default processes the event at the current time (after already
        queued events with the same timestamp).
        """
        if self._state != PENDING:
            raise EventAlreadyTriggeredError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        self.env.schedule(self, delay=delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed; waiters will see ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._state != PENDING:
            raise EventAlreadyTriggeredError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self._state = TRIGGERED
        self.env.schedule(self, delay=delay)
        return self

    # -- kernel hooks --------------------------------------------------
    def _mark_processed(self) -> None:
        self._state = PROCESSED

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event has already been processed the callback fires via a
        zero-delay bridge event, preserving run-to-completion semantics.
        """
        if self._state == PROCESSED:
            bridge = Event(self.env)
            bridge.callbacks.append(lambda _e: callback(self))
            bridge.succeed()
        else:
            assert self.callbacks is not None
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {PENDING: "pending", TRIGGERED: "triggered", PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        env.schedule(self, delay=delay)


class _Condition(Event):
    """Shared machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_count")

    def __init__(self, env: "Environment", events: typing.Iterable[Event]):
        super().__init__(env)
        self.events: List[Event] = list(events)
        self._count = 0
        if not self.events:
            self.succeed(self._collect())
            return
        for event in self.events:
            if event.env is not env:
                raise ValueError("all events must share one environment")
            event.add_callback(self._check)

    def _collect(self) -> dict:
        return {e: e.value for e in self.events if e.processed and e.ok}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Succeeds when every child event has succeeded.

    Fails as soon as any child fails, with that child's exception.  The
    value of a successful ``AllOf`` is a dict mapping each child event to
    its value.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Succeeds when the first child event succeeds.

    Fails if a child fails before any succeeds.  The value is a dict of
    the child events processed successfully so far (usually one entry).
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self.succeed(self._collect())
