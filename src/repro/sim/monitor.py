"""Periodic state sampling during a simulation.

A :class:`StateMonitor` runs a sampling process that calls registered
probes every ``interval`` simulated seconds and stores the time series
— queue lengths, active flows, pending tasks, storage occupancy —
whatever the probes measure.  The postmortem tooling plots these to
explain *when* a bottleneck built up, not just that it existed.

Probes are plain callables returning a number; they run inside the
simulation loop, so they must be cheap and side-effect free.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .engine import Environment

Probe = Callable[[], float]


class StateMonitor:
    """Samples named probes on a fixed simulated-time cadence.

    Parameters
    ----------
    env:
        The simulation to sample.
    interval:
        Seconds of simulated time between samples.
    stop_when:
        Optional predicate; sampling ends once it returns True (so the
        event queue can drain).  Without it, sampling runs until the
        queue would otherwise empty — pass one for open-ended runs.
    """

    def __init__(self, env: Environment, interval: float,
                 stop_when: Optional[Callable[[], bool]] = None):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.env = env
        self.interval = interval
        self._stop_when = stop_when
        self._probes: Dict[str, Probe] = {}
        #: name -> [(time, value), ...]
        self.series: Dict[str, List[Tuple[float, float]]] = {}
        self._process = env.process(self._run(), name="state-monitor")

    def add_probe(self, name: str, probe: Probe) -> None:
        """Register ``probe`` under ``name`` (before or during the run)."""
        if name in self._probes:
            raise ValueError(f"duplicate probe {name!r}")
        self._probes[name] = probe
        self.series[name] = []

    def _run(self):
        while self._stop_when is None or not self._stop_when():
            for name, probe in self._probes.items():
                self.series[name].append((self.env.now, float(probe())))
            yield self.env.timeout(self.interval)
            if self._stop_when is not None and self._stop_when():
                return

    # -- convenience ------------------------------------------------------
    def peak(self, name: str) -> Tuple[float, float]:
        """(time, value) of the maximum sample of ``name``."""
        samples = self.series[name]
        if not samples:
            raise ValueError(f"no samples for {name!r}")
        return max(samples, key=lambda pair: pair[1])

    def mean(self, name: str) -> float:
        """Arithmetic mean of ``name``'s samples."""
        samples = self.series[name]
        if not samples:
            raise ValueError(f"no samples for {name!r}")
        return sum(value for _t, value in samples) / len(samples)


def grid_probes(monitor: StateMonitor, grid) -> None:
    """Register the standard grid probes on ``monitor``.

    * ``pending_tasks`` — scheduler backlog,
    * ``active_flows`` — concurrent network transfers,
    * ``storage_fill`` — mean site-storage occupancy fraction,
    * ``busy_workers`` — workers currently in the fetch/compute phase.
    """
    monitor.add_probe(
        "pending_tasks", lambda: grid.scheduler.tasks_remaining)
    monitor.add_probe(
        "active_flows", lambda: grid.network.active_flow_count)
    monitor.add_probe(
        "storage_fill",
        lambda: sum(len(site.storage) / site.storage.capacity_files
                    for site in grid.sites) / len(grid.sites))
    monitor.add_probe(
        "busy_workers",
        lambda: sum(1 for worker in grid.workers
                    if worker.current_task is not None))
