"""Periodic state sampling during a simulation.

A :class:`StateMonitor` runs a sampling process that calls registered
probes every ``interval`` simulated seconds and stores the time series
— queue lengths, active flows, pending tasks, storage occupancy —
whatever the probes measure.  The postmortem tooling plots these to
explain *when* a bottleneck built up, not just that it existed.

Probes are plain callables returning a number; they run inside the
simulation loop, so they must be cheap and side-effect free.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .engine import Environment

Probe = Callable[[], float]

#: Probe name -> the metric name the live scheduler publishes for the
#: same quantity, so a simulated run and a real one land on the same
#: dashboard series.  Probes outside this table get
#: ``repro_sim_<name>``.
PROBE_METRIC_NAMES = {
    "pending_tasks": "repro_queue_depth",
    "busy_workers": "repro_busy_workers",
    "active_flows": "repro_active_flows",
    "storage_fill": "repro_storage_fill",
}


class StateMonitor:
    """Samples named probes on a fixed simulated-time cadence.

    Parameters
    ----------
    env:
        The simulation to sample.
    interval:
        Seconds of simulated time between samples.
    stop_when:
        Optional predicate; sampling ends once it returns True (so the
        event queue can drain).  Without it, sampling runs until the
        queue would otherwise empty — pass one for open-ended runs.
    """

    def __init__(self, env: Environment, interval: float,
                 stop_when: Optional[Callable[[], bool]] = None):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.env = env
        self.interval = interval
        self._stop_when = stop_when
        self._probes: Dict[str, Probe] = {}
        #: name -> [(time, value), ...]
        self.series: Dict[str, List[Tuple[float, float]]] = {}
        self._registry = None
        self._process = env.process(self._run(), name="state-monitor")

    def add_probe(self, name: str, probe: Probe) -> None:
        """Register ``probe`` under ``name`` (before or during the run)."""
        if name in self._probes:
            raise ValueError(f"duplicate probe {name!r}")
        self._probes[name] = probe
        self.series[name] = []
        if self._registry is not None:
            self._export_probe(name)

    # -- registry bridge --------------------------------------------------
    def bind_registry(self, registry) -> None:
        """Publish every probe's latest sample as a callback gauge.

        Metric names follow :data:`PROBE_METRIC_NAMES` so the simulated
        quantities scrape under the same names the live scheduler uses
        (``repro_queue_depth`` etc.); unmapped probes become
        ``repro_sim_<name>``.  Works with any
        :class:`~repro.obs.metrics.MetricsRegistry`.
        """
        self._registry = registry
        for name in self._probes:
            self._export_probe(name)

    def _export_probe(self, name: str) -> None:
        metric_name = PROBE_METRIC_NAMES.get(name, f"repro_sim_{name}")
        if metric_name in self._registry:
            return
        self._registry.gauge(
            metric_name, f"latest '{name}' sample from StateMonitor",
            callback=lambda name=name: self.latest(name))

    def latest(self, name: str) -> float:
        """The most recent sample of ``name`` (0.0 before the first)."""
        samples = self.series[name]
        return samples[-1][1] if samples else 0.0

    def _run(self):
        while self._stop_when is None or not self._stop_when():
            for name, probe in self._probes.items():
                self.series[name].append((self.env.now, float(probe())))
            yield self.env.timeout(self.interval)
            if self._stop_when is not None and self._stop_when():
                return

    # -- convenience ------------------------------------------------------
    def peak(self, name: str) -> Tuple[float, float]:
        """(time, value) of the maximum sample of ``name``."""
        samples = self.series[name]
        if not samples:
            raise ValueError(f"no samples for {name!r}")
        return max(samples, key=lambda pair: pair[1])

    def mean(self, name: str) -> float:
        """Arithmetic mean of ``name``'s samples."""
        samples = self.series[name]
        if not samples:
            raise ValueError(f"no samples for {name!r}")
        return sum(value for _t, value in samples) / len(samples)


def grid_probes(monitor: StateMonitor, grid) -> None:
    """Register the standard grid probes on ``monitor``.

    * ``pending_tasks`` — scheduler backlog,
    * ``active_flows`` — concurrent network transfers,
    * ``storage_fill`` — mean site-storage occupancy fraction,
    * ``busy_workers`` — workers currently in the fetch/compute phase.
    """
    monitor.add_probe(
        "pending_tasks", lambda: grid.scheduler.tasks_remaining)
    monitor.add_probe(
        "active_flows", lambda: grid.network.active_flow_count)
    monitor.add_probe(
        "storage_fill",
        lambda: sum(len(site.storage) / site.storage.capacity_files
                    for site in grid.sites) / len(grid.sites))
    monitor.add_probe(
        "busy_workers",
        lambda: sum(1 for worker in grid.workers
                    if worker.current_task is not None))
