"""Generator-based simulation processes.

A *process* is a Python generator that yields :class:`~repro.sim.events.Event`
objects.  Yielding an event suspends the process until that event is
processed; the event's value becomes the value of the ``yield`` expression.
Failed events re-raise their exception inside the generator, so ordinary
``try``/``except`` handles distributed failures naturally::

    def worker(env, queue):
        while True:
            task = yield queue.get()
            yield env.timeout(task.duration)

A :class:`Process` is itself an event: it triggers when the generator
returns (value = the ``return`` value) or raises (failure).  That makes
``yield env.process(child())`` the natural fork/join idiom.
"""

from __future__ import annotations

import typing
from typing import Any, Generator, Optional

from .errors import Interrupt
from .events import Event, URGENT

if typing.TYPE_CHECKING:  # pragma: no cover
    from .engine import Environment

EventGenerator = Generator[Event, Any, Any]


class Process(Event):
    """Wraps a generator and steps it through the events it yields."""

    __slots__ = ("generator", "name", "_target", "_is_alive")

    def __init__(self, env: "Environment", generator: EventGenerator,
                 name: Optional[str] = None):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"expected a generator, got {generator!r}")
        super().__init__(env)
        self.generator = generator
        #: Human-readable name used in traces and reprs.
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on (None when not
        #: suspended, e.g. before its first step or after termination).
        self._target: Optional[Event] = None
        self._is_alive = True
        # Kick off the generator via an immediately-succeeding event so
        # that process creation is itself an event in causal order.
        start = Event(env)
        start.callbacks.append(self._resume)
        start.succeed()

    # -- public API ----------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True until the generator has returned or raised."""
        return self._is_alive

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently suspended on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        The process stops waiting on its current target and must decide
        itself how to proceed.  Interrupting a dead process is an error;
        interrupting a process that is about to be resumed is ignored in
        favor of the normal resumption (matching SimPy semantics closely
        enough for this codebase, which always guards with ``is_alive``).
        """
        if not self._is_alive:
            raise RuntimeError(f"cannot interrupt dead process {self.name}")
        interrupt_ev = Event(self.env)
        interrupt_ev.callbacks.append(self._resume_interrupt)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev._state = 1  # TRIGGERED
        self.env.schedule(interrupt_ev, priority=URGENT)

    # -- stepping --------------------------------------------------------
    def _resume_interrupt(self, event: Event) -> None:
        if not self._is_alive:
            return  # terminated before the interrupt was delivered
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._step(event)

    def _resume(self, event: Event) -> None:
        self._step(event)

    def _step(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        self._target = None
        self.env._active_process = self
        try:
            if event.ok:
                next_event = self.generator.send(event.value)
            else:
                next_event = self.generator.throw(event.value)
        except StopIteration as stop:
            self._is_alive = False
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self._is_alive = False
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self.fail(exc)
            return
        finally:
            self.env._active_process = None

        if not isinstance(next_event, Event):
            self.generator.throw(
                TypeError(f"process {self.name!r} yielded non-event "
                          f"{next_event!r}"))
            return
        self._target = next_event
        next_event.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "alive" if self._is_alive else "dead"
        return f"<Process {self.name} ({status})>"
